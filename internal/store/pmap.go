package store

import (
	"math/bits"
)

// pmap is a persistent (immutable, structurally shared) hash array mapped
// trie keyed by string. Every mutating operation — With, Without — returns
// a new map that shares all unchanged branches with its receiver, so the
// MVCC store can publish a fresh version per committed mutation while
// copying only the O(log n) path from the root to the touched leaf.
// A nil *pmap is the empty map; all methods are nil-safe.
//
// pmap is not safe for concurrent mutation, but any number of goroutines
// may read any number of versions concurrently without synchronization:
// published maps are never modified.
type pmap[V any] struct {
	root *pnode[V]
	size int
}

const (
	pmapBits  = 6             // branching factor 2^6 = 64
	pmapWidth = 1 << pmapBits // children per node
	pmapMask  = pmapWidth - 1 // chunk mask
	pmapDepth = 64 / pmapBits // levels before the hash is exhausted
)

// pnode is one trie node. The bitmap records which hash chunks are
// populated; entries holds one entry per set bit, in bit order (bitmap
// compression). Nodes at depth >= pmapDepth are collision buckets: the
// bitmap is unused and entries are scanned linearly by key.
type pnode[V any] struct {
	bitmap  uint64
	entries []pentry[V]
}

// pentry is either a leaf (child == nil; key/val meaningful) or an interior
// edge (child != nil).
type pentry[V any] struct {
	key   string
	val   V
	child *pnode[V]
}

// pmapHash is 64-bit FNV-1a, inlined to keep the read path allocation-free.
func pmapHash(key string) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// Len returns the number of entries. O(1).
func (m *pmap[V]) Len() int {
	if m == nil {
		return 0
	}
	return m.size
}

// Get returns the value stored under key.
func (m *pmap[V]) Get(key string) (V, bool) {
	var zero V
	if m == nil || m.root == nil {
		return zero, false
	}
	h := pmapHash(key)
	n := m.root
	for depth := 0; ; depth++ {
		if depth >= pmapDepth {
			for i := range n.entries {
				if n.entries[i].key == key {
					return n.entries[i].val, true
				}
			}
			return zero, false
		}
		bit := uint64(1) << ((h >> (uint(depth) * pmapBits)) & pmapMask)
		if n.bitmap&bit == 0 {
			return zero, false
		}
		e := &n.entries[bits.OnesCount64(n.bitmap&(bit-1))]
		if e.child == nil {
			if e.key == key {
				return e.val, true
			}
			return zero, false
		}
		n = e.child
	}
}

// Has reports whether key is present.
func (m *pmap[V]) Has(key string) bool {
	_, ok := m.Get(key)
	return ok
}

// With returns a map with key bound to val, leaving the receiver unchanged.
func (m *pmap[V]) With(key string, val V) *pmap[V] {
	var root *pnode[V]
	size := 0
	if m != nil {
		root, size = m.root, m.size
	}
	nroot, added := nodeWith(root, 0, pmapHash(key), key, val)
	return &pmap[V]{root: nroot, size: size + added}
}

// Without returns a map with key removed, leaving the receiver unchanged.
// Removing an absent key returns the receiver itself.
func (m *pmap[V]) Without(key string) *pmap[V] {
	if m == nil || m.root == nil {
		return m
	}
	nroot, removed := nodeWithout(m.root, 0, pmapHash(key), key)
	if !removed {
		return m
	}
	if nroot == nil {
		return nil
	}
	return &pmap[V]{root: nroot, size: m.size - 1}
}

// Range calls fn for every entry until fn returns false. Iteration order is
// the trie's hash order: arbitrary but deterministic for a given key set.
func (m *pmap[V]) Range(fn func(key string, val V) bool) {
	if m == nil || m.root == nil {
		return
	}
	nodeRange(m.root, fn)
}

func nodeRange[V any](n *pnode[V], fn func(string, V) bool) bool {
	for i := range n.entries {
		e := &n.entries[i]
		if e.child != nil {
			if !nodeRange(e.child, fn) {
				return false
			}
		} else if !fn(e.key, e.val) {
			return false
		}
	}
	return true
}

// nodeWith returns a copy of n with key bound to val, plus 1 if the key was
// new. n may be nil (empty subtree).
func nodeWith[V any](n *pnode[V], depth int, h uint64, key string, val V) (*pnode[V], int) {
	if depth >= pmapDepth {
		// Collision bucket: full 64-bit hash equality, distinguish by key.
		if n == nil {
			return &pnode[V]{entries: []pentry[V]{{key: key, val: val}}}, 1
		}
		for i := range n.entries {
			if n.entries[i].key == key {
				es := make([]pentry[V], len(n.entries))
				copy(es, n.entries)
				es[i].val = val
				return &pnode[V]{entries: es}, 0
			}
		}
		es := make([]pentry[V], len(n.entries), len(n.entries)+1)
		copy(es, n.entries)
		es = append(es, pentry[V]{key: key, val: val})
		return &pnode[V]{entries: es}, 1
	}
	bit := uint64(1) << ((h >> (uint(depth) * pmapBits)) & pmapMask)
	if n == nil {
		return &pnode[V]{bitmap: bit, entries: []pentry[V]{{key: key, val: val}}}, 1
	}
	idx := bits.OnesCount64(n.bitmap & (bit - 1))
	if n.bitmap&bit == 0 {
		es := make([]pentry[V], len(n.entries)+1)
		copy(es, n.entries[:idx])
		es[idx] = pentry[V]{key: key, val: val}
		copy(es[idx+1:], n.entries[idx:])
		return &pnode[V]{bitmap: n.bitmap | bit, entries: es}, 1
	}
	e := n.entries[idx]
	var ne pentry[V]
	added := 0
	switch {
	case e.child != nil:
		child, a := nodeWith(e.child, depth+1, h, key, val)
		ne, added = pentry[V]{child: child}, a
	case e.key == key:
		ne = pentry[V]{key: key, val: val}
	default:
		// Two distinct keys share this chunk: push the existing leaf one
		// level down alongside the new one.
		child, _ := nodeWith[V](nil, depth+1, pmapHash(e.key), e.key, e.val)
		child, _ = nodeWith(child, depth+1, h, key, val)
		ne, added = pentry[V]{child: child}, 1
	}
	es := make([]pentry[V], len(n.entries))
	copy(es, n.entries)
	es[idx] = ne
	return &pnode[V]{bitmap: n.bitmap, entries: es}, added
}

// nodeWithout returns a copy of n with key removed (nil if it empties), and
// whether the key was present.
func nodeWithout[V any](n *pnode[V], depth int, h uint64, key string) (*pnode[V], bool) {
	if depth >= pmapDepth {
		for i := range n.entries {
			if n.entries[i].key == key {
				if len(n.entries) == 1 {
					return nil, true
				}
				es := make([]pentry[V], 0, len(n.entries)-1)
				es = append(es, n.entries[:i]...)
				es = append(es, n.entries[i+1:]...)
				return &pnode[V]{entries: es}, true
			}
		}
		return n, false
	}
	bit := uint64(1) << ((h >> (uint(depth) * pmapBits)) & pmapMask)
	if n.bitmap&bit == 0 {
		return n, false
	}
	idx := bits.OnesCount64(n.bitmap & (bit - 1))
	e := n.entries[idx]
	if e.child == nil {
		if e.key != key {
			return n, false
		}
		if len(n.entries) == 1 {
			return nil, true
		}
		es := make([]pentry[V], 0, len(n.entries)-1)
		es = append(es, n.entries[:idx]...)
		es = append(es, n.entries[idx+1:]...)
		return &pnode[V]{bitmap: n.bitmap &^ bit, entries: es}, true
	}
	child, removed := nodeWithout(e.child, depth+1, h, key)
	if !removed {
		return n, false
	}
	if child == nil {
		if len(n.entries) == 1 {
			return nil, true
		}
		es := make([]pentry[V], 0, len(n.entries)-1)
		es = append(es, n.entries[:idx]...)
		es = append(es, n.entries[idx+1:]...)
		return &pnode[V]{bitmap: n.bitmap &^ bit, entries: es}, true
	}
	es := make([]pentry[V], len(n.entries))
	copy(es, n.entries)
	// Collapse a single-leaf child back into this node to keep lookups and
	// iteration from walking chains of unary interior nodes after churn.
	if len(child.entries) == 1 && child.entries[0].child == nil {
		es[idx] = child.entries[0]
	} else {
		es[idx] = pentry[V]{child: child}
	}
	return &pnode[V]{bitmap: n.bitmap, entries: es}, true
}
