package warehouse

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"gsv/internal/oem"
	"gsv/internal/workload"
)

// TestOverloadDrainSoak is the overload half of the chaos drill (run in
// CI under -race): a durable warehouse maintains a view while
//
//   - a flood of budget-stamped readers (4x the admission capacity)
//     hammers the co-located server, so admission control is shedding
//     throughout,
//   - source updates churn the view under the flood,
//
// and then the server drains mid-flood. The claims: maintenance is
// never starved by overload (the view stays Fresh through the churn),
// Drain completes despite the flood, and the checkpointed state reopens
// byte-identically — overload protection sheds work, never correctness.
func TestOverloadDrainSoak(t *testing.T) {
	dir := t.TempDir()
	src, w, v := durableFixture(t, dir, ViewConfig{}, DurabilityOptions{CheckpointEvery: 8})
	reports := mustReports(t)

	ac := NewAdmissionController(AdmissionConfig{
		MaxConns:    64,
		MaxInflight: 4,
		MaxQueue:    4,
		QueueWait:   5 * time.Millisecond,
	})
	server := NewServer(src)
	server.Admission = ac
	server.IdleTimeout = 2 * time.Second
	server.DrainGrace = 10 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = server.Serve(ln) }()
	defer server.Close()

	// Flood: closed-loop budgeted readers, far beyond MaxInflight.
	floodDone := make(chan workload.BudgetedReadResult, 1)
	go func() {
		floodDone <- workload.RunBudgetedReadLoad(workload.BudgetedReadConfig{
			Addrs:    []string{ln.Addr().String()},
			Clients:  16,
			Duration: 2 * time.Second,
			Queries:  []string{"SELECT ROOT.professor X WHERE X.age <= 45"},
			Budget:   20 * time.Millisecond,
			Seed:     5,
		})
	}()

	// Update churn under the flood: maintenance runs in this goroutine
	// (the co-located gsdbserve arrangement) and must never be starved
	// into staleness by the readers.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		age := int64(20 + rng.Intn(50))
		if err := w.ProcessAll(reports(src.Modify("A1", oem.Int(age)))); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if got := w.StaleViews(); len(got) != 0 {
			t.Fatalf("views went stale under overload: %v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	want := oracleMembers(t, src, v.MV.Query)

	// Drain mid-flood: it must complete (the flood's in-flight requests
	// finish or shed) and flip the server to refusing data reads.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Drain(ctx); err != nil {
		t.Fatalf("Drain under flood: %v", err)
	}
	if !server.Draining() {
		t.Fatal("Draining() = false after Drain")
	}

	res := <-floodDone
	if res.Good == 0 {
		t.Fatalf("flood recorded no goodput: %s", res.String())
	}
	if res.Sheds == 0 {
		t.Fatalf("admission control shed nothing under 4x overload: %s", res.String())
	}

	// Checkpoint and reopen: the drained warehouse's durable state must
	// reproduce the exact membership.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := reopenWarehouse(t, src, dir, DurabilityOptions{CheckpointEvery: 8})
	defer w2.Close()
	got, err := w2.FreshMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, want) {
		t.Fatalf("reopened members %v != pre-drain %v", got, want)
	}
}
