package warehouse

import (
	"fmt"
	"sort"
	"sync"

	"gsv/internal/oem"
	"gsv/internal/store"
)

// This file partitions a base GSDB across N federated source shards
// (docs/WAREHOUSE.md, "Multi-source federation & failure model"). The
// paper's Figure 6 integrates many autonomous sources; the Partitioner
// manufactures that topology from one base database: every OID is
// assigned an owner shard by hash, and PartitionStore splits a base
// store into per-shard stores whose local query answers union to the
// whole. Placement must be a pure function of the OID wherever possible
// so any node can route a cross-shard query back to the owner without a
// directory lookup; subtree affinity (atoms co-located with the leaf
// group that contains them) is the one exception, carried as explicit
// pins.

// Partitioner assigns base OIDs to shards: FNV-1a hash modulo the shard
// count, with optional per-OID pins recorded by subtree-affinity
// placement. It is safe for concurrent use after partitioning.
type Partitioner struct {
	n  int
	mu sync.RWMutex
	// pinned overrides the hash placement (subtree affinity: an atom
	// follows the leaf group that contains it).
	pinned map[oem.OID]int
}

// NewPartitioner returns a partitioner over n shards (n < 1 is clamped
// to 1).
func NewPartitioner(n int) *Partitioner {
	if n < 1 {
		n = 1
	}
	return &Partitioner{n: n, pinned: make(map[oem.OID]int)}
}

// Shards returns the shard count.
func (p *Partitioner) Shards() int { return p.n }

// Hash is the raw placement function: FNV-1a of the OID bytes modulo
// the shard count, ignoring pins.
func (p *Partitioner) Hash(oid oem.OID) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(oid); i++ {
		h ^= uint64(oid[i])
		h *= prime64
	}
	return int(h % uint64(p.n))
}

// Owner returns the shard that owns oid: its pin when one was recorded,
// the hash placement otherwise.
func (p *Partitioner) Owner(oid oem.OID) int {
	p.mu.RLock()
	s, ok := p.pinned[oid]
	p.mu.RUnlock()
	if ok {
		return s
	}
	return p.Hash(oid)
}

// Pin records an affinity placement override for oid.
func (p *Partitioner) Pin(oid oem.OID, shard int) {
	if shard < 0 || shard >= p.n {
		return
	}
	p.mu.Lock()
	p.pinned[oid] = shard
	p.mu.Unlock()
}

// Pinned returns how many affinity pins were recorded.
func (p *Partitioner) Pinned() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.pinned)
}

// PartitionConfig configures PartitionStore.
type PartitionConfig struct {
	// Affinity keeps leaf subtrees intact: every atom reachable through a
	// leaf group (a set whose children are all atomic — a tuple) is
	// placed on the group's shard and pinned in the Partitioner. Without
	// affinity every owned object hashes independently, so a group may
	// list atoms owned by other shards: the local copy keeps the edge
	// (dangling), and maintenance completes it with cross-shard query
	// backs routed by the Partitioner.
	Affinity bool
}

// PartitionStore splits base into one store per shard of p. Interior
// sets — sets with at least one set child, and grouping objects such as
// database objects — are replicated to every shard with their child
// lists filtered to the children present there, so each shard evaluates
// path queries locally over its own partition and the union of the
// shards' answers equals the unpartitioned answer. Owned objects (leaf
// groups and atoms) land on exactly one shard. The shard stores carry
// parent and label indexes and allow dangling references (cross-shard
// edges under non-affinity placement).
func PartitionStore(base *store.Store, p *Partitioner, cfg PartitionConfig) ([]*store.Store, error) {
	oids := base.OIDs()
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })

	// Classify: interior sets replicate; leaf groups and atoms are owned.
	interior := make(map[oem.OID]bool)
	var groups []*oem.Object
	for _, oid := range oids {
		o, err := base.Get(oid)
		if err != nil {
			return nil, fmt.Errorf("warehouse: partition: %w", err)
		}
		if !o.IsSet() {
			continue
		}
		if oem.IsGroupingLabel(o.Label) {
			interior[oid] = true
			continue
		}
		leaf := true
		for _, c := range o.Set {
			if co, err := base.Get(c); err == nil && co.IsSet() {
				leaf = false
				break
			}
		}
		if leaf {
			groups = append(groups, o)
		} else {
			interior[oid] = true
		}
	}
	if cfg.Affinity {
		// Deterministic: groups in sorted OID order, first pin wins.
		for _, g := range groups {
			owner := p.Owner(g.OID)
			for _, c := range g.Set {
				if !interior[c] {
					p.mu.Lock()
					if _, ok := p.pinned[c]; !ok {
						p.pinned[c] = owner
					}
					p.mu.Unlock()
				}
			}
		}
	}

	shards := make([]*store.Store, p.n)
	opts := base.Options()
	opts.ParentIndex, opts.LabelIndex, opts.AllowDangling = true, true, true
	for k := range shards {
		shards[k] = store.New(opts)
	}
	for _, oid := range oids {
		o, err := base.Get(oid)
		if err != nil {
			return nil, err
		}
		if interior[oid] {
			// Replicated: per shard, keep interior children everywhere and
			// owned children only on their owner's copy.
			for k, st := range shards {
				c := o.Clone()
				kept := c.Set[:0]
				for _, m := range c.Set {
					if interior[m] || p.Owner(m) == k {
						kept = append(kept, m)
					}
				}
				c.Set = kept
				if err := st.Put(c); err != nil {
					return nil, err
				}
			}
			continue
		}
		// Owned: one shard gets the full object. A leaf group under
		// non-affinity placement may list atoms owned elsewhere — the edge
		// stays (dangling locally) and is completed by cross-shard query
		// backs at maintenance time.
		if err := shards[p.Owner(oid)].Put(o.Clone()); err != nil {
			return nil, err
		}
	}
	return shards, nil
}
