package warehouse

import (
	"errors"
	"strings"
	"testing"

	"gsv/internal/feed"
	"gsv/internal/oem"
)

// TestProcessBatchCoalescesFeedEvents: a batch with several
// membership-changing reports yields ONE coalesced changefeed event for
// the view, whose replay lands on the view's final membership.
func TestProcessBatchCoalescesFeedEvents(t *testing.T) {
	src, w, v := fixture(t, Level2, ViewConfig{})
	sub, err := w.Feed.Subscribe("YP", feed.SubOptions{Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	before, err := v.MV.Members()
	if err != nil {
		t.Fatal(err)
	}

	// P1 ages out of the view; a new young professor P9 arrives. Two
	// contributing updates, net delta {insert P9, delete P1}.
	var rs []*UpdateReport
	add := func(batch []*UpdateReport, err error) {
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, batch...)
	}
	add(src.Modify("A1", oem.Int(50)))
	add(src.Put(oem.NewAtom("A9", "age", oem.Int(30))))
	add(src.Put(oem.NewSet("P9", "professor", "A9")))
	add(src.Insert("ROOT", "P9"))

	if err := w.ProcessBatch(rs); err != nil {
		t.Fatal(err)
	}
	wantMembers(t, v, "P9")

	evs := drainNow(sub)
	if len(evs) != 1 {
		t.Fatalf("batch published %d events, want 1: %+v", len(evs), evs)
	}
	ev := evs[0]
	if ev.Kind != feed.KindBatch || ev.Updates < 2 {
		t.Fatalf("event = %+v, want coalesced batch of >= 2 updates", ev)
	}
	if got := applyEvents(before, evs); !oem.SameMembers(got, []oem.OID{"P9"}) {
		t.Fatalf("replaying the coalesced event gives %v, want [P9]", got)
	}

	// A later single-report batch degrades to an ordinary per-update
	// event, so per-report consumers notice nothing new.
	rs2, err := src.Modify("A9", oem.Int(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ProcessBatch(rs2); err != nil {
		t.Fatal(err)
	}
	evs = drainNow(sub)
	if len(evs) != 1 || evs[0].Kind == feed.KindBatch {
		t.Fatalf("single-report batch events = %+v", evs)
	}
}

// TestProcessBatchQuarantineMidBatch: a view failing inside a batch is
// marked Stale, skips its remaining reports, and does not disturb the
// healthy view processing the same batch in parallel.
func TestProcessBatchQuarantineMidBatch(t *testing.T) {
	src, inj, w, frail, sturdy := faultFixture(t)
	inj.Partition(true)
	var rs []*UpdateReport
	r1, err := src.Modify("A1", oem.Int(50))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := src.Modify("A1", oem.Int(44))
	if err != nil {
		t.Fatal(err)
	}
	rs = append(rs, r1...)
	rs = append(rs, r2...)

	procErr := w.ProcessBatch(rs)
	if procErr == nil {
		t.Fatal("ProcessBatch succeeded despite partition")
	}
	if !strings.Contains(procErr.Error(), "view frail") || strings.Contains(procErr.Error(), "view sturdy") {
		t.Fatalf("joined error = %v", procErr)
	}
	if frail.State() != ViewStale {
		t.Fatalf("frail state = %v", frail.State())
	}
	if frail.Stats.SkippedStale.Value() == 0 {
		t.Fatal("remaining reports were not counted as skipped-stale")
	}
	if sturdy.State() != ViewFresh {
		t.Fatalf("sturdy state = %v", sturdy.State())
	}
	wantMembers(t, sturdy, "P1") // 50 then back to 44: P1 ends inside

	// FreshMembers refuses the quarantined view with the typed sentinel
	// and serves the healthy one.
	if _, err := w.FreshMembers("frail"); !errors.Is(err, ErrStaleView) {
		t.Fatalf("FreshMembers(frail) err = %v, want ErrStaleView", err)
	}
	if ms, err := w.FreshMembers("sturdy"); err != nil || !oem.SameMembers(ms, []oem.OID{"P1"}) {
		t.Fatalf("FreshMembers(sturdy) = %v, %v", ms, err)
	}
	if _, err := w.FreshMembers("nope"); !errors.Is(err, ErrViewNotFound) {
		t.Fatalf("FreshMembers(nope) err = %v, want ErrViewNotFound", err)
	}

	// Repair heals the quarantine; FreshMembers serves again.
	inj.Partition(false)
	if _, err := w.Repair("frail"); err != nil {
		t.Fatal(err)
	}
	if ms, err := w.FreshMembers("frail"); err != nil || !oem.SameMembers(ms, []oem.OID{"P1"}) {
		t.Fatalf("after repair FreshMembers(frail) = %v, %v", ms, err)
	}
}
