package warehouse

import (
	"errors"
	"io"
	"net"
	"testing"

	"gsv/internal/feed"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// drainNow empties everything a subscription has buffered right now.
// Publishes are synchronous, so after ProcessAll returns every event it
// caused is already in the channel.
func drainNow(sub *feed.Subscription) []feed.Event {
	var out []feed.Event
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

// drainAll reads a closed subscription to exhaustion.
func drainAll(sub *feed.Subscription) []feed.Event {
	var out []feed.Event
	for ev := range sub.Events() {
		out = append(out, ev)
	}
	return out
}

func sameEvent(a, b feed.Event) bool {
	return a.View == b.View && a.Cursor == b.Cursor && a.Seq == b.Seq &&
		a.Kind == b.Kind && a.N1 == b.N1 && a.N2 == b.N2 &&
		oem.SameMembers(a.Insert, b.Insert) && oem.SameMembers(a.Delete, b.Delete)
}

// applyEvents replays a delta sequence over a starting membership.
func applyEvents(members []oem.OID, evs []feed.Event) []oem.OID {
	set := make(map[oem.OID]bool)
	for _, m := range members {
		set[m] = true
	}
	for _, ev := range evs {
		for _, y := range ev.Insert {
			set[y] = true
		}
		for _, y := range ev.Delete {
			delete(set, y)
		}
	}
	out := make([]oem.OID, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	return oem.SortOIDs(out)
}

// TestFeedResumeMatchesContinuous is the changefeed acceptance test: a
// subscriber that connects, disconnects mid-stream, and resumes from its
// last cursor must observe exactly the same delta sequence as an
// always-connected subscriber — no gaps, no duplicates — across ≥100
// deterministic updates driven through a warehouse-maintained view, for
// every cache mode.
func TestFeedResumeMatchesContinuous(t *testing.T) {
	for _, cache := range []CacheMode{CacheNone, CachePartial, CacheFull} {
		t.Run(cache.String(), func(t *testing.T) {
			src, w, v := fixture(t, Level2, ViewConfig{Cache: cache})

			cont, err := w.Feed.Subscribe("YP", feed.SubOptions{Buffer: 4096})
			if err != nil {
				t.Fatal(err)
			}
			inter, err := w.Feed.Subscribe("YP", feed.SubOptions{Buffer: 4096})
			if err != nil {
				t.Fatal(err)
			}

			st := workload.NewStream(src.Store, workload.StreamConfig{Seed: 7, ValueRange: 90},
				[]oem.OID{"P1", "P2"}, []oem.OID{"A1", "A4"})
			driven := 0
			drive := func(n int) {
				t.Helper()
				for i := 0; i < n; i++ {
					if _, ok := st.Next(); !ok {
						t.Fatal("update stream dried up")
					}
					driven++
					if err := w.ProcessAll(src.DrainReports()); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Phase 1: both subscribers connected.
			drive(50)
			part1 := drainNow(inter)
			var last uint64
			if len(part1) > 0 {
				last = part1[len(part1)-1].Cursor
			}
			inter.Close()

			// Phase 2: the interrupted subscriber is away.
			drive(50)

			// Phase 3: resume from the last consumed cursor, keep driving.
			resumed, err := w.Feed.Subscribe("YP", feed.SubOptions{Resume: true, From: last, Buffer: 4096})
			if err != nil {
				t.Fatal(err)
			}
			drive(20)
			if driven < 100 {
				t.Fatalf("drove only %d updates", driven)
			}
			part2 := drainNow(resumed)
			resumed.Close()
			cont.Close()
			contEvs := drainAll(cont)

			if len(contEvs) == 0 {
				t.Fatal("stream produced no view deltas — fixture too static")
			}
			got := append(append([]feed.Event(nil), part1...), part2...)
			if len(got) != len(contEvs) {
				t.Fatalf("interrupted subscriber saw %d events, continuous saw %d", len(got), len(contEvs))
			}
			for i := range got {
				if !sameEvent(got[i], contEvs[i]) {
					t.Fatalf("event %d: interrupted %+v != continuous %+v", i, got[i], contEvs[i])
				}
			}
			// Cursors must be exactly 1..N: no gaps, no duplicates.
			for i, ev := range contEvs {
				if ev.Cursor != uint64(i+1) {
					t.Fatalf("cursor %d at position %d", ev.Cursor, i)
				}
			}
			// Replaying the deltas over the initial membership must land on
			// the view's current membership.
			members, err := v.MV.Members()
			if err != nil {
				t.Fatal(err)
			}
			if got := applyEvents([]oem.OID{"P1"}, contEvs); !oem.SameMembers(got, members) {
				t.Fatalf("replayed membership %v != view %v", got, members)
			}
		})
	}
}

// TestFeedClusterViewsPublish verifies cluster member views publish their
// deltas under each reporting level, including the Level-1 recheck path.
func TestFeedClusterViewsPublish(t *testing.T) {
	for _, level := range []ReportLevel{Level1, Level2, Level3} {
		t.Run(level.String(), func(t *testing.T) {
			src, w, wc := newWCluster(t, level)
			young, err := w.Feed.Subscribe("YOUNG", feed.SubOptions{Buffer: 64})
			if err != nil {
				t.Fatal(err)
			}
			named, err := w.Feed.Subscribe("NAMED", feed.SubOptions{Buffer: 64})
			if err != nil {
				t.Fatal(err)
			}
			process := func(rs []*UpdateReport, err error) {
				t.Helper()
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range rs {
					if err := wc.ProcessReport(r); err != nil {
						t.Fatal(err)
					}
				}
			}
			// P1 ages out of YOUNG, stays in NAMED.
			process(src.Modify("A1", oem.Int(60)))
			evs := drainNow(young)
			if len(evs) != 1 || len(evs[0].Delete) != 1 || evs[0].Delete[0] != "P1" {
				t.Fatalf("YOUNG events = %+v", evs)
			}
			if evs := drainNow(named); len(evs) != 0 {
				t.Fatalf("NAMED got spurious events %+v", evs)
			}
			// Back under the threshold: P1 re-enters YOUNG.
			process(src.Modify("A1", oem.Int(30)))
			evs = drainNow(young)
			if len(evs) != 1 || len(evs[0].Insert) != 1 || evs[0].Insert[0] != "P1" {
				t.Fatalf("YOUNG re-entry events = %+v", evs)
			}
			young.Close()
			named.Close()
		})
	}
}

// TestFeedLevel1ModifyPublishes pins the WView recheck path: Level-1
// modify reports bypass the maintainer, so the view must publish its own
// synthesized deltas — once per membership change, never for no-ops.
func TestFeedLevel1ModifyPublishes(t *testing.T) {
	src, w, _ := fixture(t, Level1, ViewConfig{})
	sub, err := w.Feed.Subscribe("YP", feed.SubOptions{Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	process := func(rs []*UpdateReport, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.ProcessAll(rs); err != nil {
			t.Fatal(err)
		}
	}
	process(src.Modify("A1", oem.Int(60))) // P1 leaves
	process(src.Modify("A1", oem.Int(55))) // still out: no event
	process(src.Modify("A1", oem.Int(40))) // P1 returns
	evs := drainNow(sub)
	if len(evs) != 2 {
		t.Fatalf("events = %+v", evs)
	}
	if len(evs[0].Delete) != 1 || evs[0].Delete[0] != "P1" {
		t.Fatalf("first event = %+v", evs[0])
	}
	if len(evs[1].Insert) != 1 || evs[1].Insert[0] != "P1" {
		t.Fatalf("second event = %+v", evs[1])
	}
}

// startFeedServer builds a source served over TCP whose server exposes the
// changefeed of a warehouse maintaining views co-located with the source
// (the gsdbserve arrangement).
func startFeedServer(t *testing.T, ring int) (*Source, *Warehouse, *Server, string) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("persons", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	w := New(src)
	w.Feed = feed.NewHub(feed.Options{RingSize: ring})
	if _, err := w.DefineView("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	server := NewServer(src)
	server.Feed = w.Feed
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = server.Serve(ln) }()
	t.Cleanup(server.Close)
	return src, w, server, ln.Addr().String()
}

// toggleA1 flips P1 in and out of the view n times, producing n feed
// events.
func toggleA1(t *testing.T, src *Source, w *Warehouse, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		val := int64(60) // leaves
		if i%2 == 1 {
			val = 30 // returns
		}
		rs, err := src.Modify("A1", oem.Int(val))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.ProcessAll(rs); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFeedOverTCP drives the subscribe connection mode end to end:
// handshake, live tailing, resume after disconnect, and the
// expired-cursor snapshot fallback.
func TestFeedOverTCP(t *testing.T) {
	src, w, _, addr := startFeedServer(t, 4)

	if _, err := DialFeed(addr, FeedRequest{View: "NOPE"}); err == nil {
		t.Fatal("subscribing to an unknown view succeeded")
	}

	fc, err := DialFeed(addr, FeedRequest{View: "YP"})
	if err != nil {
		t.Fatal(err)
	}
	if fc.View != "YP" || fc.Cursor != 0 || fc.Snapshot != nil {
		t.Fatalf("hello = %+v", fc)
	}
	toggleA1(t, src, w, 2)
	ev, err := fc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Cursor != 1 || len(ev.Delete) != 1 || ev.Delete[0] != "P1" {
		t.Fatalf("event 1 = %+v", ev)
	}
	ev, err = fc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Cursor != 2 || len(ev.Insert) != 1 || ev.Insert[0] != "P1" {
		t.Fatalf("event 2 = %+v", ev)
	}
	fc.Close()

	// Resume within the ring: no gaps, no duplicates.
	toggleA1(t, src, w, 2) // cursors 3, 4
	fc, err = DialFeed(addr, FeedRequest{View: "YP", Resume: true, From: 2})
	if err != nil {
		t.Fatal(err)
	}
	for want := uint64(3); want <= 4; want++ {
		ev, err := fc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Cursor != want {
			t.Fatalf("resumed cursor = %d, want %d", ev.Cursor, want)
		}
	}
	fc.Close()

	// Overflow the 4-slot ring while disconnected: plain resume must fail
	// with a cursor-expired error the client can distinguish.
	toggleA1(t, src, w, 8) // cursors 5..12; ring holds 9..12
	_, err = DialFeed(addr, FeedRequest{View: "YP", Resume: true, From: 4})
	if !errors.Is(err, feed.ErrCursorExpired) {
		t.Fatalf("expired resume error = %v", err)
	}

	// Snapshot fallback: full membership plus a tail from the snapshot
	// cursor.
	fc, err = DialFeed(addr, FeedRequest{View: "YP", Resume: true, From: 4, Snapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if fc.Snapshot == nil {
		t.Fatal("no snapshot in fallback hello")
	}
	if fc.Snapshot.Cursor != 12 {
		t.Fatalf("snapshot cursor = %d", fc.Snapshot.Cursor)
	}
	// After an even number of toggles P1 is back in the view.
	if !oem.SameMembers(fc.Snapshot.Members, []oem.OID{"P1"}) {
		t.Fatalf("snapshot members = %v", fc.Snapshot.Members)
	}
	toggleA1(t, src, w, 1)
	ev, err = fc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Cursor != 13 || len(ev.Delete) != 1 {
		t.Fatalf("post-snapshot event = %+v", ev)
	}
}

// TestFeedTCPFutureCursor pins the wire error for a cursor beyond the
// feed's head.
func TestFeedTCPFutureCursor(t *testing.T) {
	_, _, _, addr := startFeedServer(t, 16)
	_, err := DialFeed(addr, FeedRequest{View: "YP", Resume: true, From: 99})
	if err == nil || errors.Is(err, feed.ErrCursorExpired) {
		t.Fatalf("future resume error = %v", err)
	}
}

// TestFeedTCPServerClose verifies closing the server terminates live
// subscribe streams rather than leaving clients hanging.
func TestFeedTCPServerClose(t *testing.T) {
	_, _, server, addr := startFeedServer(t, 16)
	fc, err := DialFeed(addr, FeedRequest{View: "YP"})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	server.Close()
	if _, err := fc.Next(); err == nil {
		t.Fatal("Next succeeded after server close")
	} else if err != io.EOF {
		// A reset is also acceptable; just require termination.
		t.Logf("stream ended with %v", err)
	}
}
