package warehouse

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net"
	"testing"

	"gsv/internal/obs"
	"gsv/internal/oem"
)

func TestTraceRequestRoundTrip(t *testing.T) {
	src, w, _, _, remote := obsFixture(t)

	reports, err := src.Put(oem.NewAtom("A2", "age", oem.Int(40)))
	processOne(t, w, reports, err)
	reports, err = src.Insert("P2", "A2")
	processOne(t, w, reports, err)
	reports, err = src.Modify("A1", oem.Int(50))
	processOne(t, w, reports, err)

	payload, err := remote.FetchTrace("")
	if err != nil {
		t.Fatal(err)
	}
	if payload.Node != "primary" {
		t.Fatalf("node = %q", payload.Node)
	}
	if len(payload.Chains) == 0 || payload.Total == 0 {
		t.Fatalf("no chains over the wire: %+v", payload)
	}
	var sawView bool
	for _, c := range payload.Chains {
		if c.TraceID == "" || c.Origin <= 0 || c.Node != "primary" {
			t.Fatalf("chain missing trace context: %+v", c)
		}
		if c.View != "YP" {
			continue
		}
		sawView = true
		if len(c.Spans) == 0 {
			t.Fatalf("view chain has no spans: %+v", c)
		}
		if c.Spans[0].Stage != "screen" {
			t.Fatalf("first view span = %+v", c.Spans[0])
		}
		if c.EndNanos() <= 0 {
			t.Fatalf("chain end = %d", c.EndNanos())
		}
	}
	if !sawView {
		t.Fatalf("no YP chain in %+v", payload.Chains)
	}

	// The view filter keeps matching chains (plus view-less WAL chains);
	// a view nobody maintains yields an empty set, not an error.
	filtered, err := remote.FetchTrace("YP")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range filtered.Chains {
		if c.View != "" && c.View != "YP" {
			t.Fatalf("filter leaked chain %+v", c)
		}
	}
	none, err := remote.FetchTrace("NO-SUCH-VIEW")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range none.Chains {
		if c.View != "" {
			t.Fatalf("filter leaked chain %+v", c)
		}
	}
	if none.Total == 0 {
		t.Fatal("total lost by filtering")
	}
}

// TestTraceGoldenFrame pins the wire schema of a trace response: the
// exact frame a trace request produces for a hand-built chain ring.
// Field renames break this test on purpose.
func TestTraceGoldenFrame(t *testing.T) {
	ring := obs.NewChainRing(4)
	ring.Add(obs.SpanChain{
		TraceID: "persons-7", Seq: 7, Kind: "insert", View: "V1",
		Origin: 1000, Node: "primary",
		Spans: []obs.Span{
			{Node: "primary", View: "V1", Stage: "screen", Start: 10, Nanos: 5},
			{Node: "primary", View: "V1", Stage: "maintain", Start: 15, Nanos: 85},
		},
	})
	server := &Server{Chains: ring}

	resp := server.dispatch(netRequest{Op: "trace"})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	data, err := json.Marshal(resp.Trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Node   string           `json:"node"`
		Chains []map[string]any `json:"chains"`
		Total  float64          `json:"total"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace frame is not the documented shape: %v\n%s", err, data)
	}
	if doc.Node != "primary" || len(doc.Chains) != 1 || doc.Total != 1 {
		t.Fatalf("frame = %s", data)
	}
	c := doc.Chains[0]
	for _, key := range []string{"trace_id", "seq", "kind", "view", "origin_nanos", "node", "spans"} {
		if _, ok := c[key]; !ok {
			t.Fatalf("chain frame missing %q: %s", key, data)
		}
	}
	spans, ok := c["spans"].([]any)
	if !ok || len(spans) != 2 {
		t.Fatalf("spans = %v", c["spans"])
	}
	sp, ok := spans[0].(map[string]any)
	if !ok {
		t.Fatalf("span frame = %v", spans[0])
	}
	for _, key := range []string{"node", "view", "stage", "start_nanos", "nanos"} {
		if _, ok := sp[key]; !ok {
			t.Fatalf("span frame missing %q: %s", key, data)
		}
	}
}

// TestTraceViewFilterKeepsWALChains pins that chains with no view —
// the WAL ingestion span the warehouse records once per stamped
// report — pass every view filter, since they belong to every view's
// timeline.
func TestTraceViewFilterKeepsWALChains(t *testing.T) {
	ring := obs.NewChainRing(8)
	ring.Add(obs.SpanChain{TraceID: "t-1", Origin: 1, Node: "primary",
		Spans: []obs.Span{{Node: "primary", Stage: "wal", Nanos: 3}}})
	ring.Add(obs.SpanChain{TraceID: "t-1", View: "V1", Origin: 1, Node: "primary"})
	ring.Add(obs.SpanChain{TraceID: "t-1", View: "V2", Origin: 1, Node: "primary"})
	server := &Server{Chains: ring, Node: "p0"}

	p := server.tracePayload("V1")
	if p.Node != "p0" {
		t.Fatalf("node = %q", p.Node)
	}
	if len(p.Chains) != 2 {
		t.Fatalf("chains = %+v", p.Chains)
	}
	if p.Chains[0].Spans[0].Stage != "wal" || p.Chains[1].View != "V1" {
		t.Fatalf("filter kept the wrong chains: %+v", p.Chains)
	}
	if p.Total != 3 {
		t.Fatalf("total = %d", p.Total)
	}
}

// TestTraceRequestWithoutRing pins the compatibility contract: a server
// running without propagation tracing answers exactly like an old
// binary, so clients see ErrUnsupportedRequest either way.
func TestTraceRequestWithoutRing(t *testing.T) {
	_, _, remote := startNetSource(t, Level2)
	_, err := remote.FetchTrace("")
	if !errors.Is(err, ErrUnsupportedRequest) {
		t.Fatalf("err = %v, want ErrUnsupportedRequest", err)
	}
}

// TestTraceAgainstOldServer simulates a server binary that predates the
// trace request: it answers with the protocol's unknown-op error, which
// the client must surface as ErrUnsupportedRequest.
func TestTraceAgainstOldServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				mode, err := br.ReadString('\n')
				if err != nil {
					return
				}
				switch mode {
				case "reports\n":
					_, _ = io.WriteString(conn, "ready\n")
					_, _ = io.Copy(io.Discard, br)
				case "query\n":
					enc := json.NewEncoder(conn)
					sc := frameScanner(br)
					for sc.Scan() {
						var req netRequest
						if err := decodeFrame(sc.Bytes(), &req); err != nil {
							return
						}
						// An old server knows no "trace" op.
						if err := enc.Encode(netResponse{Err: `unknown op "trace"`}); err != nil {
							return
						}
					}
				}
			}(conn)
		}
	}()

	remote, err := Dial("old", ln.Addr().String(), NewTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(remote.Close)
	_, err = remote.FetchTrace("YP")
	if !errors.Is(err, ErrUnsupportedRequest) {
		t.Fatalf("err = %v, want ErrUnsupportedRequest", err)
	}
}
