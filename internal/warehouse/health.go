package warehouse

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gsv/internal/faults"
	"gsv/internal/obs"
)

// This file is the per-source robustness core of the federation
// (docs/WAREHOUSE.md, "Multi-source federation & failure model"): every
// federated source is watched by a SourceSupervisor — an Up/Degraded/
// Down health state machine driven by the failure signals the fault
// layer makes observable (injected faults, transport errors, report
// stream death) — with a circuit breaker that trips after consecutive
// failures and half-opens on probe success. A tripped breaker fails
// source calls fast with ErrSourceDown, so maintenance against a dead
// source quarantines only that partition's views instead of stalling
// the whole federation behind network timeouts.

// SourceState is a federated source's health.
type SourceState int32

const (
	// SourceUp: calls succeed; the source serves its partition normally.
	SourceUp SourceState = iota
	// SourceDegraded: recent failures below the trip threshold; calls
	// still flow but the source is suspect.
	SourceDegraded
	// SourceDown: the breaker is open; calls fail fast with
	// ErrSourceDown until a half-open probe succeeds.
	SourceDown
)

// String names the state for metrics and logs.
func (s SourceState) String() string {
	switch s {
	case SourceUp:
		return "up"
	case SourceDegraded:
		return "degraded"
	case SourceDown:
		return "down"
	default:
		return fmt.Sprintf("SourceState(%d)", int32(s))
	}
}

// ErrSourceDown fails a source call fast while its circuit breaker is
// open. Detect it with errors.Is.
var ErrSourceDown = errors.New("warehouse: source down (circuit breaker open)")

// SupervisorConfig tunes a SourceSupervisor.
type SupervisorConfig struct {
	// TripThreshold is how many consecutive failures open the breaker
	// (default 3).
	TripThreshold int
	// CoolDown is how long the breaker stays open before half-opening
	// for one probe (default 500ms).
	CoolDown time.Duration
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.TripThreshold <= 0 {
		c.TripThreshold = 3
	}
	if c.CoolDown <= 0 {
		c.CoolDown = 500 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// SourceSupervisor tracks one federated source's health. All methods
// are safe for concurrent use.
type SourceSupervisor struct {
	name string
	cfg  SupervisorConfig

	mu          sync.Mutex
	state       SourceState
	consecutive int
	openedAt    time.Time
	probing     bool

	// onTrip/onRecover fire outside the lock on Up→Down and Down→Up
	// transitions (the federation quarantines / repairs the partition's
	// views there).
	onTrip    func()
	onRecover func()

	// Instruments (RegisterObs exposes them; hot path is atomic).
	trips         obs.Counter
	probes        obs.Counter
	degradedReads obs.Counter
	watermark     atomic.Int64 // newest origin stamp drained from this source
}

// NewSourceSupervisor returns a supervisor for the named source,
// starting Up.
func NewSourceSupervisor(name string, cfg SupervisorConfig) *SourceSupervisor {
	return &SourceSupervisor{name: name, cfg: cfg.withDefaults()}
}

// Name returns the supervised source's name.
func (s *SourceSupervisor) Name() string { return s.name }

// State returns the current health state.
func (s *SourceSupervisor) State() SourceState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Trips returns how many times the breaker opened.
func (s *SourceSupervisor) Trips() uint64 { return s.trips.Value() }

// Probes returns how many half-open probes were admitted.
func (s *SourceSupervisor) Probes() uint64 { return s.probes.Value() }

// DegradedReads returns how many reads were served partially because
// this source was unavailable.
func (s *SourceSupervisor) DegradedReads() uint64 { return s.degradedReads.Value() }

// noteDegradedRead counts one partially-served read missing this
// source's partition.
func (s *SourceSupervisor) noteDegradedRead() { s.degradedReads.Inc() }

// Watermark returns the newest origin stamp (Unix nanos) drained from
// this source, 0 before any stamped report arrived.
func (s *SourceSupervisor) Watermark() int64 { return s.watermark.Load() }

// advanceWatermark lifts the per-source watermark to stamp (CAS-max).
func (s *SourceSupervisor) advanceWatermark(stamp int64) {
	obs.AdvanceWatermark(&s.watermark, stamp)
}

// Allow gates one source call: nil while the source is Up or Degraded,
// and while Down it admits exactly one half-open probe per cool-down
// window, failing everything else fast with ErrSourceDown.
func (s *SourceSupervisor) Allow() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != SourceDown {
		return nil
	}
	if !s.probing && s.cfg.Clock().Sub(s.openedAt) >= s.cfg.CoolDown {
		s.probing = true
		s.probes.Inc()
		return nil
	}
	return fmt.Errorf("%w: source %s", ErrSourceDown, s.name)
}

// Record feeds one call outcome into the state machine. A nil error (or
// an error that is not a source-failure signal — e.g. a semantic error
// the source answered) closes the loop on health: consecutive failures
// reset and a half-open probe success closes the breaker. A failure
// signal counts toward the trip threshold; a failed probe re-opens the
// breaker for another cool-down.
func (s *SourceSupervisor) Record(err error) {
	if errors.Is(err, ErrSourceDown) {
		return // our own fast-fail echo, not a new signal
	}
	s.signal(!sourceFailure(err))
}

// signal applies one health observation (true = healthy).
func (s *SourceSupervisor) signal(healthy bool) {
	s.mu.Lock()
	var fire func()
	if healthy {
		s.consecutive = 0
		s.probing = false
		if s.state != SourceUp {
			s.state = SourceUp
			fire = s.onRecover
		}
	} else {
		s.consecutive++
		switch {
		case s.probing:
			// Probe failed: stay Down, restart the cool-down.
			s.probing = false
			s.openedAt = s.cfg.Clock()
		case s.state == SourceDown:
			// Already open; nothing to do.
		case s.consecutive >= s.cfg.TripThreshold:
			s.state = SourceDown
			s.openedAt = s.cfg.Clock()
			s.trips.Inc()
			fire = s.onTrip
		default:
			s.state = SourceDegraded
		}
	}
	s.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// RegisterObs exposes the supervisor's instruments on reg under the
// source label (docs/OBSERVABILITY.md metric catalog).
func (s *SourceSupervisor) RegisterObs(reg *obs.Registry) {
	reg.Help("gsv_source_state", "federated source health: 0 up, 1 degraded, 2 down")
	reg.Help("gsv_source_trips_total", "circuit breaker trips (source marked down)")
	reg.Help("gsv_source_probes_total", "half-open probes admitted while down")
	reg.Help("gsv_source_degraded_reads_total", "reads served partially because this source was unavailable")
	reg.Help("gsv_source_watermark_seconds", "newest origin stamp drained from this source, as Unix seconds")
	ls := obs.L("source", s.name)
	reg.GaugeFunc("gsv_source_state", func() float64 { return float64(s.State()) }, ls)
	reg.RegisterCounter("gsv_source_trips_total", &s.trips, ls)
	reg.RegisterCounter("gsv_source_probes_total", &s.probes, ls)
	reg.RegisterCounter("gsv_source_degraded_reads_total", &s.degradedReads, ls)
	reg.GaugeFunc("gsv_source_watermark_seconds", func() float64 {
		return float64(s.watermark.Load()) / 1e9
	}, ls)
}

// sourceFailure classifies an error as a source-failure signal: the
// kinds of errors a dead, partitioned or fault-injected source produces
// (transport failures, injected faults, exhausted retries) — as opposed
// to semantic errors a live source answered (unknown object, bad
// query), which prove the source is serving and must not trip the
// breaker.
func sourceFailure(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, faults.ErrInjected) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		return true
	}
	msg := err.Error()
	if strings.Contains(msg, "warehouse: remote:") {
		return false // the server answered; semantic error
	}
	for _, sig := range []string{"connection", "broken pipe", "reset by peer", "retries exhausted", "closed"} {
		if strings.Contains(msg, sig) {
			return true
		}
	}
	return false
}
