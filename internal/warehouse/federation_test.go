package warehouse

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gsv/internal/faults"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// fedOracle is the all-healthy oracle: the union of evaluating q from
// scratch on every shard store.
func fedOracle(t testing.TB, stores []*store.Store, q *query.Query) []oem.OID {
	t.Helper()
	seen := map[oem.OID]bool{}
	var out []oem.OID
	for _, s := range stores {
		ms, err := query.NewEvaluator(s).Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	return oem.SortOIDs(out)
}

func relationBase(t testing.TB, relations, tuples int) (*store.Store, *workload.RelationDB) {
	t.Helper()
	s := store.NewDefault()
	db := workload.RelationLike(s, workload.RelationConfig{
		Relations: relations, TuplesPerRelation: tuples, FieldsPerTuple: 2, Seed: 7,
	})
	return s, db
}

func TestPartitionStoreAffinityUnion(t *testing.T) {
	base, db := relationBase(t, 2, 16)
	p := NewPartitioner(4)
	stores, err := PartitionStore(base, p, PartitionConfig{Affinity: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every tuple is co-located with all its fields.
	for _, rel := range db.Relations {
		for _, tid := range rel.Tuples {
			owner := p.Owner(tid)
			tup, err := stores[owner].Get(tid)
			if err != nil {
				t.Fatalf("tuple %s missing from owner %d: %v", tid, owner, err)
			}
			for _, f := range tup.Set {
				if got := p.Owner(f); got != owner {
					t.Fatalf("field %s of %s on shard %d, tuple on %d", f, tid, got, owner)
				}
				if !stores[owner].Has(f) {
					t.Fatalf("field %s not materialized on owner %d", f, owner)
				}
			}
			// Owned objects live on exactly one shard.
			for k := range stores {
				if k != owner && stores[k].Has(tid) {
					t.Fatalf("tuple %s duplicated on shard %d", tid, k)
				}
			}
		}
	}
	// Interior objects are replicated everywhere; per-shard answers
	// union to the unpartitioned answer.
	for k := range stores {
		if !stores[k].Has("REL") || !stores[k].Has("R0") || !stores[k].Has("R1") {
			t.Fatalf("shard %d missing interior objects", k)
		}
	}
	q := query.MustParse("SELECT REL.r0.tuple X WHERE X.age <= 50")
	want, err := query.NewEvaluator(base).Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := fedOracle(t, stores, q); !oem.SameMembers(got, want) {
		t.Fatalf("union of shard answers = %v, want %v", got, want)
	}
}

func TestPartitionerPinOverridesHash(t *testing.T) {
	p := NewPartitioner(4)
	if p.Owner("X") != p.Hash("X") {
		t.Fatal("unpinned owner must be the hash")
	}
	target := (p.Hash("X") + 1) % 4
	p.Pin("X", target)
	if p.Owner("X") != target {
		t.Fatalf("pin ignored: owner %d, want %d", p.Owner("X"), target)
	}
	p.Pin("X", -1) // out of range: ignored
	p.Pin("X", 4)
	if p.Owner("X") != target || p.Pinned() != 1 {
		t.Fatal("out-of-range pin must be ignored")
	}
}

func TestSupervisorStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	s := NewSourceSupervisor("s0", SupervisorConfig{
		TripThreshold: 3, CoolDown: time.Second,
		Clock: func() time.Time { return now },
	})
	boom := errors.New("dial tcp 127.0.0.1:9: connection refused")
	if s.State() != SourceUp {
		t.Fatalf("initial state %v", s.State())
	}
	s.Record(boom)
	if s.State() != SourceDegraded {
		t.Fatalf("after 1 failure: %v", s.State())
	}
	s.Record(nil) // success resets the streak
	if s.State() != SourceUp {
		t.Fatalf("after recovery: %v", s.State())
	}
	s.Record(boom)
	s.Record(boom)
	if s.State() != SourceDegraded {
		t.Fatalf("below threshold: %v", s.State())
	}
	s.Record(boom)
	if s.State() != SourceDown || s.Trips() != 1 {
		t.Fatalf("after 3 consecutive: state=%v trips=%d", s.State(), s.Trips())
	}
	if err := s.Allow(); !errors.Is(err, ErrSourceDown) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}
	// The fast-fail echo must not feed back into the state machine.
	s.Record(s.Allow())
	if s.Trips() != 1 {
		t.Fatal("ErrSourceDown echo counted as a failure")
	}
	// Cool-down elapses: exactly one half-open probe is admitted.
	now = now.Add(time.Second)
	if err := s.Allow(); err != nil {
		t.Fatalf("half-open probe denied: %v", err)
	}
	if err := s.Allow(); !errors.Is(err, ErrSourceDown) {
		t.Fatal("second call admitted while probe in flight")
	}
	if s.Probes() != 1 {
		t.Fatalf("probes = %d", s.Probes())
	}
	// Failed probe re-opens and restarts the cool-down.
	s.Record(boom)
	now = now.Add(500 * time.Millisecond)
	if err := s.Allow(); !errors.Is(err, ErrSourceDown) {
		t.Fatal("re-opened breaker admitted a call before cool-down")
	}
	now = now.Add(500 * time.Millisecond)
	if err := s.Allow(); err != nil {
		t.Fatalf("second probe denied: %v", err)
	}
	s.Record(nil) // probe success closes the breaker
	if s.State() != SourceUp {
		t.Fatalf("after probe success: %v", s.State())
	}
	// A semantic error answered by the source is proof of life, not a
	// failure signal.
	s.Record(errors.New("warehouse: remote: no object X77"))
	if s.State() != SourceUp {
		t.Fatalf("semantic error tripped health: %v", s.State())
	}
}

func TestFederationSpanningViewMaintenance(t *testing.T) {
	base, db := relationBase(t, 2, 12)
	fed, stores, err := NewLocalFederation(base, db.Root, 4, FederationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustParse("SELECT REL.r0.tuple X WHERE X.age <= 50")
	if err := fed.DefineView("V", q, ViewConfig{Cache: CacheFull, Screening: true}); err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		got, err := fed.Members("V")
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if want := fedOracle(t, stores, q); !oem.SameMembers(got, want) {
			t.Fatalf("%s: members = %v, want %v", stage, got, want)
		}
	}
	check("initial")

	// Flip every r0 tuple's age on its owning shard and pump.
	p := fed.Partitioner()
	for i := range db.Relations[0].Tuples {
		age := oem.OID(fmt.Sprintf("F0_%d_age", i))
		if err := stores[p.Owner(age)].Modify(age, oem.Int(int64(i*10))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fed.Pump(); err != nil {
		t.Fatal(err)
	}
	check("after modifies")

	// Grow r0 with a new tuple on its hashed owner shard.
	newTuple, newAge := oem.OID("T0_new"), oem.OID("F0_new_age")
	owner := p.Owner(newTuple)
	p.Pin(newAge, owner)
	st := stores[owner]
	if err := st.Put(oem.NewAtom(newAge, "age", oem.Int(5))); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(oem.NewSet(newTuple, "tuple", newAge)); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("R0", newTuple); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Pump(); err != nil {
		t.Fatal(err)
	}
	check("after insert")

	// Shrink: drop a tuple from its owner.
	victim := db.Relations[0].Tuples[3]
	if err := stores[p.Owner(victim)].Delete("R0", victim); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Pump(); err != nil {
		t.Fatal(err)
	}
	check("after delete")

	if fed.Shards() != 4 || len(fed.SourceNames()) != 4 {
		t.Fatal("shard accounting wrong")
	}
}

// buildFaultyFederation hand-assembles a 4-shard federation whose
// sources can be partitioned off deterministically.
func buildFaultyFederation(t testing.TB, sup SupervisorConfig) (*Federation, []*store.Store, []*faults.Injector) {
	t.Helper()
	base, db := relationBase(t, 1, 12)
	p := NewPartitioner(4)
	stores, err := PartitionStore(base, p, PartitionConfig{Affinity: true})
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]SourceAPI, len(stores))
	injs := make([]*faults.Injector, len(stores))
	for k, st := range stores {
		injs[k] = faults.New(faults.Config{Seed: int64(k)})
		srcs[k] = WrapSource(NewSource(fmt.Sprintf("source%d", k), st, db.Root, Level3, NewTransport(0)), injs[k])
	}
	fed, err := NewFederation(srcs, FederationConfig{Supervisor: sup, Partitioner: p})
	if err != nil {
		t.Fatal(err)
	}
	return fed, stores, injs
}

func TestFederationPartialResultAndRecovery(t *testing.T) {
	fed, stores, injs := buildFaultyFederation(t, SupervisorConfig{TripThreshold: 2, CoolDown: time.Millisecond})
	q := query.MustParse("SELECT REL.r0.tuple X WHERE X.age <= 50")
	if err := fed.DefineView("V", q, ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Members("V"); err != nil {
		t.Fatalf("healthy read: %v", err)
	}

	// Partition source1 off and trip its breaker.
	injs[1].Partition(true)
	for i := 0; i < 2; i++ {
		_, _ = fed.shards[1].src.FetchQuery(q)
	}
	sup, _ := fed.Supervisor("source1")
	if sup.State() != SourceDown {
		t.Fatalf("source1 state %v, want down", sup.State())
	}
	if got := fed.StaleViews(); len(got) != 1 || got[0] != MemberViewName("V", "source1") {
		t.Fatalf("quarantined views = %v", got)
	}

	// The spanning read degrades: healthy union + typed partial error.
	got, err := fed.Members("V")
	if !errors.Is(err, ErrPartialResult) {
		t.Fatalf("degraded read error = %v, want ErrPartialResult", err)
	}
	var pre *PartialResultError
	if !errors.As(err, &pre) || len(pre.Missing) != 1 || pre.Missing[0] != "source1" {
		t.Fatalf("partial error detail = %+v", err)
	}
	healthy := fedOracle(t, []*store.Store{stores[0], stores[2], stores[3]}, q)
	if !oem.SameMembers(got, healthy) {
		t.Fatalf("degraded members = %v, want healthy union %v", got, healthy)
	}
	if sup.DegradedReads() == 0 {
		t.Fatal("degraded read not accounted")
	}

	// Ad-hoc cross-shard queries degrade the same way.
	objs, err := fed.Query(q)
	if !errors.Is(err, ErrPartialResult) {
		t.Fatalf("query error = %v, want ErrPartialResult", err)
	}
	qOIDs := make([]oem.OID, len(objs))
	for i, o := range objs {
		qOIDs[i] = o.OID
	}
	if !oem.SameMembers(qOIDs, healthy) {
		t.Fatalf("degraded query = %v, want %v", qOIDs, healthy)
	}

	// One source down of four: still quorate. Two: not.
	if err := fed.Ready(); err != nil {
		t.Fatalf("quorum lost with 3/4 up: %v", err)
	}
	injs[2].Partition(true)
	for i := 0; i < 2; i++ {
		_, _ = fed.shards[2].src.FetchQuery(q)
	}
	if err := fed.Ready(); err == nil {
		t.Fatal("2/4 up must be below the default quorum")
	}

	// Heal both; the repair query-backs double as half-open probes.
	injs[1].Partition(false)
	injs[2].Partition(false)
	time.Sleep(2 * time.Millisecond) // past the cool-down
	if n, err := fed.RepairAll(); err != nil || n < 2 {
		t.Fatalf("repair after heal: n=%d err=%v", n, err)
	}
	if sup.State() != SourceUp {
		t.Fatalf("source1 after repair: %v", sup.State())
	}
	if err := fed.Ready(); err != nil {
		t.Fatalf("ready after heal: %v", err)
	}
	got, err = fed.Members("V")
	if err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if want := fedOracle(t, stores, q); !oem.SameMembers(got, want) {
		t.Fatalf("members after heal = %v, want %v", got, want)
	}
}

func TestFederationRootedViewOnDeadShard(t *testing.T) {
	fed, _, injs := buildFaultyFederation(t, SupervisorConfig{TripThreshold: 1, CoolDown: time.Minute})
	q := query.MustParse("SELECT REL.r0.tuple X WHERE X.age <= 50")
	if err := fed.DefineViewAt("rooted", "source1", q, ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Members("rooted"); err != nil {
		t.Fatalf("healthy rooted read: %v", err)
	}
	injs[1].Partition(true)
	_, _ = fed.shards[1].src.FetchQuery(q)
	// A rooted view with its only partition gone is unavailable, not
	// partial.
	_, err := fed.Members("rooted")
	if err == nil || errors.Is(err, ErrPartialResult) {
		t.Fatalf("rooted read on dead shard: %v", err)
	}
	if !errors.Is(err, ErrStaleView) {
		t.Fatalf("rooted read error = %v, want ErrStaleView", err)
	}
}

func TestFederationCrossShardFetchRouting(t *testing.T) {
	base := store.NewDefault()
	base.MustPut(oem.NewSet("ROOT", "top", "G"))
	base.MustPut(oem.NewSet("G", "tuple", "A", "B"))
	base.MustPut(oem.NewAtom("A", "age", oem.Int(1)))
	base.MustPut(oem.NewAtom("B", "age", oem.Int(2)))
	p := NewPartitioner(2)
	p.Pin("G", 0)
	p.Pin("B", 0)
	p.Pin("A", 1) // A is listed by G on shard 0 but owned by shard 1
	stores, err := PartitionStore(base, p, PartitionConfig{Affinity: false})
	if err != nil {
		t.Fatal(err)
	}
	if stores[0].Has("A") {
		t.Fatal("A must not be materialized on shard 0")
	}
	g, err := stores[0].Get("G")
	if err != nil || !oem.SameMembers(g.Set, []oem.OID{"A", "B"}) {
		t.Fatalf("G on shard 0 = %v, %v (the cross-shard edge must stay)", g, err)
	}
	srcs := []SourceAPI{
		NewSource("source0", stores[0], "ROOT", Level3, NewTransport(0)),
		NewSource("source1", stores[1], "ROOT", Level3, NewTransport(0)),
	}
	fed, err := NewFederation(srcs, FederationConfig{Partitioner: p})
	if err != nil {
		t.Fatal(err)
	}
	// A fetch on shard 0 for the foreign-owned A routes to shard 1.
	o, err := fed.shards[0].src.FetchObject("A")
	if err != nil || o.OID != "A" {
		t.Fatalf("cross-shard fetch: %v, %v", o, err)
	}
	if fed.CrossFetches() != 1 {
		t.Fatalf("cross fetches = %d, want 1", fed.CrossFetches())
	}
	// Within one maintenance round the memo batches repeats.
	if _, err := fed.shards[0].src.FetchObject("A"); err != nil {
		t.Fatal(err)
	}
	if fed.CrossFetches() != 1 || fed.CrossBatched() != 1 {
		t.Fatalf("memo miss: fetches=%d batched=%d", fed.CrossFetches(), fed.CrossBatched())
	}
	// A new round drops the memo.
	fed.beginRound()
	if _, err := fed.shards[0].src.FetchObject("A"); err != nil {
		t.Fatal(err)
	}
	if fed.CrossFetches() != 2 {
		t.Fatalf("post-round fetches = %d, want 2", fed.CrossFetches())
	}
	// Local objects never route.
	if _, err := fed.shards[0].src.FetchObject("B"); err != nil {
		t.Fatal(err)
	}
	if fed.CrossFetches() != 2 {
		t.Fatal("local fetch routed cross-shard")
	}
}
