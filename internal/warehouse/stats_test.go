package warehouse

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"

	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// obsFixture builds an in-process warehouse with observability enabled
// and a server exposing its registry over the wire.
func obsFixture(t *testing.T) (*Source, *Warehouse, *WView, *Server, *RemoteSource) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("persons", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	reg := obs.NewRegistry()
	w := New(src)
	w.EnableObs(reg)
	v, err := w.DefineView("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"),
		ViewConfig{Screening: true})
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(src)
	server.Obs = reg
	server.Traces = w.Traces
	server.Chains = w.Chains
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = server.Serve(ln) }()
	t.Cleanup(server.Close)
	remote, err := Dial("persons", ln.Addr().String(), NewTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(remote.Close)
	return src, w, v, server, remote
}

// processOne applies one source mutation's reports through the warehouse.
func processOne(t *testing.T, w *Warehouse, reports []*UpdateReport, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ProcessAll(reports); err != nil {
		t.Fatal(err)
	}
}

func TestStatsRequestRoundTrip(t *testing.T) {
	src, w, v, _, remote := obsFixture(t)

	reports, err := src.Put(oem.NewAtom("A2", "age", oem.Int(40)))
	processOne(t, w, reports, err)
	reports, err = src.Insert("P2", "A2")
	processOne(t, w, reports, err)
	reports, err = src.Modify("A1", oem.Int(50))
	processOne(t, w, reports, err)

	payload, err := remote.FetchStats()
	if err != nil {
		t.Fatal(err)
	}

	// The snapshot crossed the wire as JSON; values must agree with the
	// live counters exactly (nothing is mutating between process and
	// fetch).
	p, ok := payload.Registry.Get("gsv_view_reports_total", obs.L("view", "YP"))
	if !ok {
		t.Fatal("gsv_view_reports_total missing from wire snapshot")
	}
	if want := float64(v.Stats.Reports.Value()); p.Value != want {
		t.Fatalf("reports over the wire = %v, live = %v", p.Value, want)
	}
	if hp, ok := payload.Registry.Get("gsv_view_maintain_seconds", obs.L("view", "YP")); !ok || hp.Count == 0 {
		t.Fatalf("maintain latency histogram = %+v, %v", hp, ok)
	}

	// Traces made the trip too, carrying the per-update journey.
	if len(payload.Traces) == 0 {
		t.Fatal("no traces over the wire")
	}
	last := payload.Traces[len(payload.Traces)-1]
	if last.View != "YP" || last.Kind != "modify" {
		t.Fatalf("last trace = %+v", last)
	}
	switch last.Outcome {
	case obs.OutcomeLocal, obs.OutcomeQueryBack, obs.OutcomeScreened:
	default:
		t.Fatalf("unexpected outcome %q", last.Outcome)
	}
	var names []string
	for _, st := range last.Stages {
		names = append(names, st.Name)
	}
	if got := strings.Join(names, ","); got != "screen,cache,maintain" && got != "screen" {
		t.Fatalf("stages = %v", names)
	}
	if last.Helpers.Total() == 0 && last.Outcome != obs.OutcomeScreened {
		t.Fatalf("maintained trace counted no helper calls: %+v", last)
	}
	for _, tr := range payload.Traces {
		// A screened report applied nothing; its trace must not inherit
		// the previous report's delta sizes.
		if tr.Outcome == obs.OutcomeScreened && (tr.Inserts != 0 || tr.Deletes != 0) {
			t.Fatalf("screened trace carries deltas: %+v", tr)
		}
	}
}

// TestStatsGoldenFrame pins the wire schema of a stats response: the
// exact frame a stats request produces for a hand-built registry and
// trace ring. Field renames break this test on purpose.
func TestStatsGoldenFrame(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("gsv_view_reports_total", obs.L("view", "V1")).Add(3)
	ring := obs.NewTraceRing(4)
	ring.Add(obs.Trace{
		View: "V1", Seq: 7, Kind: "insert", Level: 2,
		Outcome: obs.OutcomeQueryBack, QueryBacks: 1,
		Helpers: obs.HelperCounts{Path: 1, Eval: 1}, Inserts: 1,
		Stages:     []obs.Stage{{Name: "screen", Nanos: 10}, {Name: "cache", Nanos: 5}, {Name: "maintain", Nanos: 85}},
		TotalNanos: 100,
	})
	server := &Server{Obs: reg, Traces: ring}

	resp := server.dispatch(netRequest{Op: "stats"})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	data, err := json.Marshal(resp.Stats)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Registry struct {
			Metrics []map[string]any `json:"metrics"`
		} `json:"registry"`
		Traces []map[string]any `json:"traces"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("stats frame is not the documented shape: %v\n%s", err, data)
	}
	if len(doc.Registry.Metrics) != 1 || len(doc.Traces) != 1 {
		t.Fatalf("frame = %s", data)
	}
	m := doc.Registry.Metrics[0]
	if m["name"] != "gsv_view_reports_total" || m["kind"] != "counter" || m["value"] != float64(3) {
		t.Fatalf("metric point = %v", m)
	}
	if labels, ok := m["labels"].(map[string]any); !ok || labels["view"] != "V1" {
		t.Fatalf("labels = %v", m["labels"])
	}
	tr := doc.Traces[0]
	for _, key := range []string{"view", "seq", "kind", "outcome", "query_backs", "helpers", "stages", "total_nanos"} {
		if _, ok := tr[key]; !ok {
			t.Fatalf("trace frame missing %q: %s", key, data)
		}
	}
}

// TestStatsWhileUpdatesInFlight fetches wire snapshots concurrently with
// maintenance and asserts counter monotonicity across snapshots — the
// read path must never tear or go backwards.
func TestStatsWhileUpdatesInFlight(t *testing.T) {
	src, w, _, _, remote := obsFixture(t)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 50; i++ {
			reports, err := src.Modify("A1", oem.Int(int64(30+i%40)))
			if err == nil {
				err = w.ProcessAll(reports)
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var last float64
	for {
		payload, err := remote.FetchStats()
		if err != nil {
			t.Fatal(err)
		}
		p, ok := payload.Registry.Get("gsv_view_reports_total", obs.L("view", "YP"))
		if !ok {
			t.Fatal("reports counter missing mid-flight")
		}
		if p.Value < last {
			t.Fatalf("reports went backwards over the wire: %v -> %v", last, p.Value)
		}
		last = p.Value
		select {
		case <-done:
			wg.Wait()
			return
		default:
		}
	}
}

func TestStatsRequestWithoutRegistry(t *testing.T) {
	// A live server with observability off answers stats with a clear
	// error, not a silent empty payload.
	_, _, remote := startNetSource(t, Level2)
	_, err := remote.FetchStats()
	if err == nil {
		t.Fatal("stats against a server with no registry succeeded")
	}
	if errors.Is(err, ErrUnsupportedRequest) {
		t.Fatalf("no-registry error misclassified as unsupported: %v", err)
	}
	if !strings.Contains(err.Error(), "no stats registry") {
		t.Fatalf("error = %v", err)
	}
}

// TestStatsAgainstOldServer simulates a server that predates the stats
// request: it answers with the protocol's unknown-op error, which the
// client must surface as ErrUnsupportedRequest.
func TestStatsAgainstOldServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				mode, err := br.ReadString('\n')
				if err != nil {
					return
				}
				switch mode {
				case "reports\n":
					_, _ = io.WriteString(conn, "ready\n")
					_, _ = io.Copy(io.Discard, br)
				case "query\n":
					enc := json.NewEncoder(conn)
					sc := frameScanner(br)
					for sc.Scan() {
						var req netRequest
						if err := decodeFrame(sc.Bytes(), &req); err != nil {
							return
						}
						// An old server knows no "stats" op.
						if err := enc.Encode(netResponse{Err: `unknown op "stats"`}); err != nil {
							return
						}
					}
				}
			}(conn)
		}
	}()

	remote, err := Dial("old", ln.Addr().String(), NewTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(remote.Close)
	_, err = remote.FetchStats()
	if !errors.Is(err, ErrUnsupportedRequest) {
		t.Fatalf("err = %v, want ErrUnsupportedRequest", err)
	}
}
