package warehouse

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"gsv/internal/feed"
)

// This file extends the "subscribe" connection mode with a multi-view
// subscription: a feedRequest whose Views field is non-empty asks for
// every named view's events (["*"] = every view the hub knows) on one
// connection, instead of one connection per view. The server's frames
// become FeedFrame envelopes — either one feed.Event or one FeedProgress
// heartbeat carrying the primary's base sequence number and per-view
// feed cursors. Progress frames are what let a replica measure its lag
// even when base updates are screened out of every view (no events flow,
// but Seq advances); see docs/REPLICA.md.
//
// Version mismatch: an old server ignores the Views field and subscribes
// to the empty single-view name, which fails with the hub's unknown-view
// error for ""; DialMultiFeed maps exactly that shape to
// ErrUnsupportedRequest so callers can degrade to per-view DialFeed.

// defaultFeedProgressInterval paces progress frames on multi-view
// subscriptions.
const defaultFeedProgressInterval = 500 * time.Millisecond

// FeedProgress is the multi-view heartbeat frame: where the primary is.
type FeedProgress struct {
	// Seq is the primary's base-store sequence number at send time.
	Seq uint64 `json:"seq"`
	// Cursors maps each subscribed view to its current feed cursor. A
	// consumer that has applied every cursor here has fully caught up
	// with Seq, even if some base updates published no events.
	Cursors map[string]uint64 `json:"cursors,omitempty"`
}

// FeedFrame is one multi-view stream frame: exactly one field is set.
type FeedFrame struct {
	Event    *feed.Event   `json:"event,omitempty"`
	Progress *FeedProgress `json:"progress,omitempty"`
}

// FeedViewHello is one view's slice of a multi-view handshake.
type FeedViewHello struct {
	View string `json:"view"`
	// Cursor is the view's feed position at subscribe time.
	Cursor uint64 `json:"cursor"`
	// Oldest is the oldest cursor still in the replay ring.
	Oldest uint64 `json:"oldest"`
	// Snapshot is present when the client requested snapshot bootstrap
	// (no resume cursor for this view) or its resume cursor had expired.
	Snapshot *FeedSnapshot `json:"snapshot,omitempty"`
}

// handleMultiSubscribe serves one multi-view subscription: subscribe to
// every requested view, answer one hello carrying per-view state, then
// interleave events from all views with periodic progress frames on a
// single writer.
func (s *Server) handleMultiSubscribe(conn net.Conn, br *bufio.Reader, enc *json.Encoder, hub *feed.Hub, req feedRequest) {
	fail := func(err error) {
		s.armWrite(conn)
		_ = enc.Encode(feedHello{Err: err.Error(), Expired: errors.Is(err, feed.ErrCursorExpired)})
	}
	policy, err := feed.ParsePolicy(req.Policy)
	if err != nil {
		fail(err)
		return
	}
	views := req.Views
	if len(views) == 1 && views[0] == "*" {
		views = hub.Views()
		sort.Strings(views)
	}
	var subs []*feed.Subscription
	closeAll := func() {
		for _, sub := range subs {
			sub.Close()
		}
	}
	hello := feedHello{Seq: s.Src.Store.Seq()}
	seen := make(map[string]bool, len(views))
	for _, view := range views {
		if seen[view] {
			continue
		}
		seen[view] = true
		o := feed.SubOptions{Buffer: req.Buffer, Policy: policy, HasPolicy: req.Policy != ""}
		from, resuming := req.Froms[view]
		if resuming {
			o.Resume, o.From, o.SnapshotOnExpire = true, from, req.Snapshot
		}
		sub, err := hub.Subscribe(view, o)
		if err != nil {
			closeAll()
			fail(err)
			return
		}
		subs = append(subs, sub)
		vh := FeedViewHello{View: view}
		vh.Cursor, _ = hub.Cursor(view)
		vh.Oldest = hub.OldestRetained(view)
		if snap := sub.Snapshot(); snap != nil {
			vh.Snapshot = &FeedSnapshot{Cursor: snap.Cursor, Members: snap.Members}
		} else if !resuming && req.Snapshot {
			// Snapshot bootstrap. The tail subscription is already
			// attached, so an event racing this snapshot re-announces
			// membership the snapshot reflects — an idempotent duplicate,
			// never a loss.
			snap, err := hub.Snapshot(view)
			if err != nil {
				closeAll()
				fail(err)
				return
			}
			vh.Snapshot = &FeedSnapshot{Cursor: snap.Cursor, Members: snap.Members}
		}
		hello.Views = append(hello.Views, vh)
	}
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		closeAll()
		return
	default:
	}
	s.feedSubs = append(s.feedSubs, subs...)
	s.mu.Unlock()

	s.armWrite(conn)
	if err := enc.Encode(hello); err != nil {
		closeAll()
		return
	}

	// Tear every subscription down when the peer disconnects, even while
	// the writer is idle.
	go func() {
		_, _ = io.Copy(io.Discard, br)
		closeAll()
	}()

	frames := make(chan FeedFrame, 64)
	writerDone := make(chan struct{})
	var fwdWG sync.WaitGroup
	for _, sub := range subs {
		fwdWG.Add(1)
		go func(sub *feed.Subscription) {
			defer fwdWG.Done()
			for ev := range sub.Events() {
				ev := ev
				select {
				case frames <- FeedFrame{Event: &ev}:
				case <-writerDone:
					return
				}
			}
		}(sub)
	}
	// subsDone fires once every subscription's event channel has closed
	// (peer disconnect or server shutdown): the stream is over.
	subsDone := make(chan struct{})
	go func() {
		fwdWG.Wait()
		close(subsDone)
	}()
	interval := s.FeedProgressInterval
	if interval <= 0 {
		interval = defaultFeedProgressInterval
	}
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-writerDone:
				return
			case <-t.C:
				p := &FeedProgress{Seq: s.Src.Store.Seq(), Cursors: make(map[string]uint64, len(hello.Views))}
				for _, vh := range hello.Views {
					c, _ := hub.Cursor(vh.View)
					p.Cursors[vh.View] = c
				}
				select {
				case frames <- FeedFrame{Progress: p}:
				case <-writerDone:
					return
				}
			}
		}
	}()
	defer func() {
		close(writerDone)
		closeAll()
		fwdWG.Wait()
		tickWG.Wait()
	}()
	for {
		select {
		case <-subsDone:
			// Every forwarder has exited; flush what they queued, then
			// end the stream.
			for {
				select {
				case fr := <-frames:
					s.armWrite(conn)
					if err := enc.Encode(fr); err != nil {
						return
					}
				default:
					return
				}
			}
		case fr := <-frames:
			s.armWrite(conn)
			if err := enc.Encode(fr); err != nil {
				return
			}
		}
	}
}

// MultiFeedRequest configures DialMultiFeed.
type MultiFeedRequest struct {
	// Views names the feeds to follow; ["*"] follows every view the
	// server's hub knows. Names must be non-empty.
	Views []string
	// Froms maps view name to the last cursor consumed; a view without
	// an entry tails from the current cursor.
	Froms map[string]uint64
	// Snapshot requests a full membership snapshot for every view
	// without a resume cursor, and snapshot fallback (instead of an
	// expired-cursor error) for every view whose cursor was evicted.
	Snapshot bool
	// Policy selects the server-side slow-consumer policy; empty means
	// the server default.
	Policy string
	// Buffer sizes the server-side subscriber channels; 0 means default.
	Buffer int
	// IOTimeout bounds the dial and handshake; 0 means no bound. It is
	// client-side state, never sent on the wire.
	IOTimeout time.Duration
	// ReadTimeout bounds each wait for the next frame. The server's
	// progress heartbeats (FeedProgressInterval, 500ms by default) make a
	// silent stream distinguishable from an idle one, so any value
	// comfortably above the heartbeat interval detects a dead peer. 0
	// means block forever.
	ReadTimeout time.Duration
}

// MultiFeedClient follows several views' changefeeds over one TCP
// connection.
type MultiFeedClient struct {
	// Seq was the primary's base sequence number at subscribe time.
	Seq uint64
	// Views holds the per-view handshake state, in server order.
	Views []FeedViewHello

	conn        net.Conn
	sc          *bufio.Scanner
	readTimeout time.Duration
}

// DialMultiFeed opens a multi-view subscribe-mode connection. Error
// mapping: an expired resume cursor (without Snapshot) wraps
// feed.ErrCursorExpired; a server that predates the multi-view protocol
// is surfaced as ErrUnsupportedRequest.
func DialMultiFeed(addr string, req MultiFeedRequest) (*MultiFeedClient, error) {
	d := net.Dialer{Timeout: req.IOTimeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if conn.LocalAddr().String() == conn.RemoteAddr().String() {
		// TCP simultaneous-open self-connection: dialing a loopback port
		// with no listener can land on an ephemeral source port equal to
		// the destination, yielding a socket connected to itself. It
		// echoes our own handshake back and squats on the server's port,
		// blocking a restart from rebinding — so close abortively:
		// a graceful close would park the port in TIME_WAIT, and a dialed
		// socket carries no SO_REUSEADDR, which blocks the rebind just as
		// effectively for a minute.
		abortConn(conn)
		return nil, fmt.Errorf("warehouse: feed dial %s: self-connection", addr)
	}
	if req.IOTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(req.IOTimeout))
	}
	if _, err := io.WriteString(conn, "subscribe\n"); err != nil {
		conn.Close()
		return nil, err
	}
	frame, err := json.Marshal(feedRequest{
		Views:    req.Views,
		Froms:    req.Froms,
		Snapshot: req.Snapshot,
		Policy:   req.Policy,
		Buffer:   req.Buffer,
	})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := conn.Write(append(frame, '\n')); err != nil {
		conn.Close()
		return nil, err
	}
	sc := frameScanner(conn)
	if !sc.Scan() {
		conn.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("warehouse: feed handshake: %w", err)
		}
		return nil, errors.New("warehouse: feed handshake: connection closed")
	}
	var hello feedHello
	if err := decodeFrame(sc.Bytes(), &hello); err != nil {
		conn.Close()
		return nil, err
	}
	if hello.Err != "" {
		conn.Close()
		// An old server ignored the Views field entirely and tried the
		// empty single-view name: its unknown-view error names no view.
		if strings.TrimSpace(hello.Err) == strings.TrimSpace(feed.ErrUnknownView.Error()+":") {
			return nil, fmt.Errorf("%w: server predates multi-view subscriptions", ErrUnsupportedRequest)
		}
		if hello.Expired {
			return nil, &feedExpiredError{msg: "warehouse: " + hello.Err}
		}
		return nil, fmt.Errorf("warehouse: %s", hello.Err)
	}
	if len(hello.Views) == 0 {
		// An old server can also answer a live single-view hello for a
		// view literally named "" if one exists; either way the absence
		// of per-view state marks the protocol gap.
		conn.Close()
		return nil, fmt.Errorf("%w: server predates multi-view subscriptions", ErrUnsupportedRequest)
	}
	_ = conn.SetDeadline(time.Time{})
	return &MultiFeedClient{Seq: hello.Seq, Views: hello.Views, conn: conn, sc: sc, readTimeout: req.ReadTimeout}, nil
}

// Next blocks for the next frame: exactly one of the event and progress
// pointers is non-nil. It returns io.EOF when the server closes the
// stream.
func (mc *MultiFeedClient) Next() (FeedFrame, error) {
	if mc.readTimeout > 0 {
		_ = mc.conn.SetReadDeadline(time.Now().Add(mc.readTimeout))
	}
	for mc.sc.Scan() {
		line := mc.sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var fr FeedFrame
		if err := decodeFrame(line, &fr); err != nil {
			return FeedFrame{}, err
		}
		if fr.Event == nil && fr.Progress == nil {
			continue // unknown future frame kind; skip
		}
		return fr, nil
	}
	if err := mc.sc.Err(); err != nil {
		return FeedFrame{}, err
	}
	return FeedFrame{}, io.EOF
}

// Close disconnects the feed.
func (mc *MultiFeedClient) Close() { _ = mc.conn.Close() }
