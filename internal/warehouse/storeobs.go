package warehouse

import (
	"gsv/internal/obs"
	"gsv/internal/store"
)

// RegisterStoreObs exposes a store's MVCC version machinery as
// gsv_store_* gauges (docs/MVCC.md, docs/OBSERVABILITY.md), labeled so
// one registry can carry several stores (warehouse, source wrapper,
// replica). The store package itself stays observability-free; the
// gauges read store.MVCC() at snapshot time.
func RegisterStoreObs(reg *obs.Registry, s *store.Store, ls obs.Label) {
	reg.Help("gsv_store_seq", "current committed store sequence number")
	reg.Help("gsv_store_versions_retained", "versions addressable in the MVCC history ring")
	reg.Help("gsv_store_oldest_retained_seq", "oldest sequence still pinnable by SnapshotAt")
	reg.Help("gsv_store_snapshots_pinned", "snapshots taken and not yet closed")
	reg.Help("gsv_store_snapshots_taken_total", "snapshots ever taken")
	reg.Help("gsv_store_versions_reclaimed_total", "versions evicted from the history ring")
	reg.GaugeFunc("gsv_store_seq", func() float64 { return float64(s.MVCC().Seq) }, ls)
	reg.GaugeFunc("gsv_store_versions_retained", func() float64 { return float64(s.MVCC().RetainedVersions) }, ls)
	reg.GaugeFunc("gsv_store_oldest_retained_seq", func() float64 { return float64(s.MVCC().OldestRetained) }, ls)
	reg.GaugeFunc("gsv_store_snapshots_pinned", func() float64 { return float64(s.MVCC().PinnedSnapshots) }, ls)
	reg.GaugeFunc("gsv_store_snapshots_taken_total", func() float64 { return float64(s.MVCC().SnapshotsTaken) }, ls)
	reg.GaugeFunc("gsv_store_versions_reclaimed_total", func() float64 { return float64(s.MVCC().ReclaimedVersions) }, ls)
}
