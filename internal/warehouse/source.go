package warehouse

import (
	"fmt"
	"sync"
	"time"

	"gsv/internal/core"
	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
)

// ReportLevel is the amount of detail a source monitor attaches to each
// update report — the three scenarios of Section 5.1.
type ReportLevel int

const (
	// Level1 reports only the update type and the OIDs of the directly
	// affected objects. Even the old/new values of a modify are withheld.
	Level1 ReportLevel = 1
	// Level2 additionally reports the label, type and value of every
	// directly affected object, enabling local screening.
	Level2 ReportLevel = 2
	// Level3 additionally reports path(ROOT, N1) with the OIDs and labels
	// of the objects along it — plausible because the source traversed
	// that path to perform the update.
	Level3 ReportLevel = 3
)

// String names the level.
func (l ReportLevel) String() string { return fmt.Sprintf("level%d", int(l)) }

// PathInfo is the Level3 enrichment: the path from the source root down to
// an object, as parallel OID and label sequences. OIDs[i] is the object
// whose label is Labels[i]; the root itself is not included.
type PathInfo struct {
	OIDs   []oem.OID
	Labels pathexpr.Path
}

// UpdateReport is one monitored update plus its level-dependent
// enrichment.
type UpdateReport struct {
	Source string
	Level  ReportLevel
	Update store.Update
	// Objects holds copies of the directly affected objects (Level >= 2),
	// keyed by OID.
	Objects map[oem.OID]*oem.Object
	// Path holds path(ROOT, N1) (Level 3). For inserts and deletes this is
	// the path to the parent; label(N2) is available from Objects.
	Path *PathInfo
}

// EncodedSize estimates the report's wire size.
func (r *UpdateReport) EncodedSize() int {
	n := 24 // kind, seq, OIDs
	for _, o := range r.Objects {
		n += o.EncodedSize()
	}
	if r.Path != nil {
		for i := range r.Path.OIDs {
			n += len(r.Path.OIDs[i]) + len(r.Path.Labels[i]) + 2
		}
	}
	return n
}

// Source is one autonomous data source: a GSDB store, the root object that
// queries and paths are anchored at, a wrapper answering warehouse queries
// and a monitor producing update reports. All query traffic is charged to
// the transport.
type Source struct {
	Name  string
	Store *store.Store
	// Root anchors path(ROOT, N) computations and source-side query
	// evaluation.
	Root      oem.OID
	Level     ReportLevel
	Transport *Transport

	access *core.CentralAccess
	// accessMu serializes the access.Stats install/clear in FetchAncestor
	// and FetchEval: concurrent server query goroutines would otherwise
	// stomp each other's AccessStats pointer.
	accessMu sync.Mutex
	// pendingMu guards pending: the store.Subscribe callback appends from
	// whatever goroutine mutates the store, while DrainReports swaps the
	// slice out from the server's broadcast loop.
	pendingMu sync.Mutex
	pending   []store.Update
	// Stats counts wrapper work performed on behalf of the warehouse.
	Stats WrapperStats
}

// WrapperStats counts the source-side work done answering queries. The
// fields are atomic counters: the server's query goroutines increment
// them while metrics scrapes and tests read them concurrently.
type WrapperStats struct {
	Queries        obs.Counter
	ObjectsTouched obs.Counter
}

// RegisterObs exposes the wrapper counters on reg, labeled by source.
func (s *Source) RegisterObs(reg *obs.Registry) {
	reg.Help("gsv_source_queries_total", "wrapper queries answered for the warehouse")
	reg.Help("gsv_source_objects_touched_total", "objects touched answering wrapper queries")
	ls := obs.L("source", s.Name)
	reg.RegisterCounter("gsv_source_queries_total", &s.Stats.Queries, ls)
	reg.RegisterCounter("gsv_source_objects_touched_total", &s.Stats.ObjectsTouched, ls)
	RegisterStoreObs(reg, s.Store, obs.L("store", "source:"+s.Name))
}

// NewSource wraps an existing store as a source. The store should already
// contain the base data; subsequent mutations must go through the source's
// mutation methods (or ApplyExternal) so the monitor sees them.
func NewSource(name string, s *store.Store, root oem.OID, level ReportLevel, tr *Transport) *Source {
	src := &Source{Name: name, Store: s, Root: root, Level: level, Transport: tr,
		access: core.NewCentralAccess(s)}
	s.Subscribe(func(u store.Update) {
		src.pendingMu.Lock()
		src.pending = append(src.pending, u)
		src.pendingMu.Unlock()
	})
	return src
}

// Insert applies insert(N1,N2) at the source and returns the resulting
// update reports.
func (s *Source) Insert(n1, n2 oem.OID) ([]*UpdateReport, error) {
	if err := s.Store.Insert(n1, n2); err != nil {
		return nil, err
	}
	return s.DrainReports(), nil
}

// Delete applies delete(N1,N2) at the source.
func (s *Source) Delete(n1, n2 oem.OID) ([]*UpdateReport, error) {
	if err := s.Store.Delete(n1, n2); err != nil {
		return nil, err
	}
	return s.DrainReports(), nil
}

// Modify applies modify(N, newv) at the source.
func (s *Source) Modify(n oem.OID, v oem.Atom) ([]*UpdateReport, error) {
	if err := s.Store.Modify(n, v); err != nil {
		return nil, err
	}
	return s.DrainReports(), nil
}

// Put creates a new object at the source. Creation alone affects no view;
// the report stream still carries it so warehouse caches can pre-learn the
// object at Level >= 2.
func (s *Source) Put(o *oem.Object) ([]*UpdateReport, error) {
	if err := s.Store.Put(o); err != nil {
		return nil, err
	}
	return s.DrainReports(), nil
}

// DrainReports enriches and returns the reports for all updates applied to
// the underlying store since the last drain. External code that mutates
// the store directly (e.g. a workload stream) calls this after each
// mutation; enrichment reflects the store state at drain time, so drain
// once per update for faithful Level3 paths.
func (s *Source) DrainReports() []*UpdateReport {
	s.pendingMu.Lock()
	us := s.pending
	s.pending = nil
	s.pendingMu.Unlock()
	reports := make([]*UpdateReport, 0, len(us))
	for _, u := range us {
		reports = append(reports, s.enrich(u))
	}
	return reports
}

// enrich builds the level-appropriate report for one update, stamping
// the propagation trace context (origin wall-clock instant + trace ID)
// at ingestion. The stamp lives on the report's copy of the update —
// the source store's own log is untouched — and rides it through the
// WAL, maintenance, the changefeed and replica apply. The trace ID is
// deterministic (source name + sequence) so a replayed update rejoins
// its original chain.
func (s *Source) enrich(u store.Update) *UpdateReport {
	if u.Seq != 0 && u.TraceID == "" {
		u.Origin = time.Now().UnixNano()
		u.TraceID = fmt.Sprintf("%s-%d", s.Name, u.Seq)
	}
	r := &UpdateReport{Source: s.Name, Level: s.Level, Update: u}
	if s.Level < Level2 {
		// Level 1 strips everything but the update type and OIDs,
		// including modify values and create payloads.
		r.Update.Old = oem.Atom{}
		r.Update.New = oem.Atom{}
		r.Update.Object = nil
		s.Transport.OneWay(r.EncodedSize(), 0)
		return r
	}
	r.Objects = make(map[oem.OID]*oem.Object)
	addObj := func(oid oem.OID) {
		if oid == oem.NoOID {
			return
		}
		if o, err := s.Store.Get(oid); err == nil {
			r.Objects[oid] = o
		}
	}
	addObj(u.N1)
	addObj(u.N2)
	if s.Level >= Level3 {
		if p, ok, err := s.pathWithOIDs(u.N1); err == nil && ok {
			r.Path = p
		}
	}
	s.Transport.OneWay(r.EncodedSize(), len(r.Objects))
	return r
}

// pathWithOIDs computes path(ROOT, n) together with the OIDs along it.
func (s *Source) pathWithOIDs(n oem.OID) (*PathInfo, bool, error) {
	if n == s.Root {
		return &PathInfo{}, true, nil
	}
	p, ok, err := s.access.Path(s.Root, n)
	if err != nil || !ok {
		return nil, false, err
	}
	// Collect the OIDs by walking up from n: walking down from the root
	// label-by-label would be ambiguous with repeated labels.
	info := &PathInfo{Labels: p}
	info.OIDs = make([]oem.OID, len(p))
	cur := n
	for i := len(p) - 1; i >= 0; i-- {
		info.OIDs[i] = cur
		parents, err := s.Store.Parents(cur)
		if err != nil {
			return nil, false, err
		}
		next := oem.NoOID
		for _, par := range parents {
			lbl, err := s.Store.Label(par)
			if err != nil || oem.IsGroupingLabel(lbl) {
				continue
			}
			if _, _, isDel := splitDelegate(par); isDel {
				continue
			}
			if i == 0 {
				if par == s.Root {
					next = par
					break
				}
				continue
			}
			if lbl == p[i-1] {
				next = par
				break
			}
		}
		if next == oem.NoOID {
			return nil, false, nil
		}
		cur = next
	}
	return info, true, nil
}

func splitDelegate(oid oem.OID) (oem.OID, oem.OID, bool) { return core.SplitDelegateOID(oid) }

// --- Wrapper: the source query interface of Example 9 ---------------------

// FetchObject answers a warehouse query for one object.
func (s *Source) FetchObject(oid oem.OID) (*oem.Object, error) {
	s.Stats.Queries.Inc()
	o, err := s.Store.Get(oid)
	respObjects := 0
	respBytes := 8
	if err == nil {
		respObjects = 1
		respBytes = o.EncodedSize()
		s.Stats.ObjectsTouched.Inc()
	}
	s.Transport.RoundTrip(len(oid)+16, respBytes, respObjects)
	return o, err
}

// FetchPath answers "fetch the path from ROOT to n" (with OIDs).
func (s *Source) FetchPath(n oem.OID) (*PathInfo, bool, error) {
	s.Stats.Queries.Inc()
	p, ok, err := s.pathWithOIDs(n)
	bytes := 8
	if ok {
		bytes = len(p.OIDs) * 16
		s.Stats.ObjectsTouched.Add(uint64(len(p.OIDs)))
	}
	s.Transport.RoundTrip(len(n)+16, bytes, 0)
	return p, ok, err
}

// FetchAncestor answers "fetch X where path(X, n) = p".
func (s *Source) FetchAncestor(n oem.OID, p pathexpr.Path) (oem.OID, bool, error) {
	s.Stats.Queries.Inc()
	st := core.AccessStats{}
	s.accessMu.Lock()
	s.access.Stats = &st
	y, ok, err := s.access.Ancestor(n, p)
	s.access.Stats = nil
	s.accessMu.Unlock()
	s.Stats.ObjectsTouched.Add(uint64(st.ObjectsTouched))
	s.Transport.RoundTrip(len(n)+len(p.String())+16, 24, 0)
	return y, ok, err
}

// FetchEval answers "fetch all objects X in n.p" with their values; the
// warehouse tests the condition locally, as in Example 9.
func (s *Source) FetchEval(n oem.OID, p pathexpr.Path) ([]*oem.Object, error) {
	s.Stats.Queries.Inc()
	st := core.AccessStats{}
	s.accessMu.Lock()
	s.access.Stats = &st
	oids, err := s.access.EvalCond(n, p, core.CondTest{Always: true})
	s.access.Stats = nil
	s.accessMu.Unlock()
	s.Stats.ObjectsTouched.Add(uint64(st.ObjectsTouched))
	if err != nil {
		s.Transport.RoundTrip(len(n)+16, 8, 0)
		return nil, err
	}
	out := make([]*oem.Object, 0, len(oids))
	bytes := 0
	for _, oid := range oids {
		if o, err := s.Store.Get(oid); err == nil {
			out = append(out, o)
			bytes += o.EncodedSize()
		}
	}
	s.Transport.RoundTrip(len(n)+len(p.String())+16, bytes+8, len(out))
	return out, nil
}

// FetchSubtree ships the objects reachable from n within depth hops —
// used by the auxiliary cache to learn newly attached structure with one
// query instead of many.
func (s *Source) FetchSubtree(n oem.OID, depth int) ([]*oem.Object, error) {
	s.Stats.Queries.Inc()
	var out []*oem.Object
	bytes := 0
	seen := map[oem.OID]bool{}
	type frame struct {
		oid oem.OID
		d   int
	}
	stack := []frame{{n, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[f.oid] {
			continue
		}
		seen[f.oid] = true
		o, err := s.Store.Get(f.oid)
		if err != nil {
			continue
		}
		s.Stats.ObjectsTouched.Inc()
		out = append(out, o)
		bytes += o.EncodedSize()
		if f.d < depth && o.IsSet() {
			for _, c := range o.Set {
				stack = append(stack, frame{c, f.d + 1})
			}
		}
	}
	s.Transport.RoundTrip(len(n)+20, bytes+8, len(out))
	return out, nil
}

// FetchQuery evaluates a full view query at the source — used for the
// initial materialization of a warehouse view.
func (s *Source) FetchQuery(q *query.Query) ([]*oem.Object, error) {
	s.Stats.Queries.Inc()
	members, err := query.NewEvaluator(s.Store).Eval(q)
	if err != nil {
		s.Transport.RoundTrip(64, 8, 0)
		return nil, err
	}
	out := make([]*oem.Object, 0, len(members))
	bytes := 0
	for _, m := range members {
		if o, err := s.Store.Get(m); err == nil {
			out = append(out, o)
			bytes += o.EncodedSize()
			s.Stats.ObjectsTouched.Inc()
		}
	}
	s.Transport.RoundTrip(len(q.String()), bytes+8, len(out))
	return out, nil
}

// FetchQueryAt implements SeqQuerier: it evaluates q against the store
// snapshot pinned at sequence number at, so the answer reflects exactly
// the updates with Seq <= at — no interference from updates racing the
// fetch. A resync uses it to make its replay bound exact (staleness.go).
// at == 0, a sequence the version ring has already reclaimed, or one the
// store has not reached yet all degrade to the current state, which is
// a superset of `at` and therefore still a correct (conservative) bound.
func (s *Source) FetchQueryAt(q *query.Query, at uint64) ([]*oem.Object, error) {
	if at == 0 || at >= s.Store.Seq() {
		return s.FetchQuery(q)
	}
	snap, err := s.Store.SnapshotAt(at)
	if err != nil {
		return s.FetchQuery(q)
	}
	defer snap.Close()
	s.Stats.Queries.Inc()
	members, err := query.NewEvaluator(snap).Eval(q)
	if err != nil {
		s.Transport.RoundTrip(64, 8, 0)
		return nil, err
	}
	out := make([]*oem.Object, 0, len(members))
	bytes := 0
	for _, m := range members {
		if o, err := snap.Get(m); err == nil {
			out = append(out, o)
			bytes += o.EncodedSize()
			s.Stats.ObjectsTouched.Inc()
		}
	}
	s.Transport.RoundTrip(len(q.String())+8, bytes+8, len(out))
	return out, nil
}

var _ SeqQuerier = (*Source)(nil)
