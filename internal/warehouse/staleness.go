package warehouse

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/store"
)

// This file is the warehouse's staleness state machine. The paper's
// Section 5 protocol silently assumes every update report arrives and
// every query back succeeds; over a real network neither holds. When
// maintenance of a view fails, or when the report stream loses updates
// (a gap), the view's membership can no longer be trusted to track the
// source — but it is still the most recent consistent answer available.
// So instead of failing reads or wedging maintenance:
//
//	Fresh ──failure/gap──▶ Stale ──repair──▶ Repairing ──▶ Fresh
//	                         ▲                   │
//	                         └──repair failed────┘
//
//   - Stale: membership reads are still served (flagged via State), but
//     the view is quarantined — incremental maintenance skips it, since
//     Algorithm 1 applied to an inconsistent base can diverge further.
//   - Repairing: a resync is re-running the view's query at the source
//     (the one operation that is always correct regardless of how much
//     was missed) and diffing the result against the stale membership.
//   - Fresh: deltas from the resync were applied and published to the
//     changefeed as one aggregate "resync" event; incremental
//     maintenance resumes.
//
// Repair is driven by Repair/RepairAll (on demand, e.g. from tests or a
// CLI) or by StartRepairLoop (a background ticker, how gsdbserve and
// gsdbwatch run it). See docs/WAREHOUSE.md "Failure model".

// ViewState is one warehouse view's staleness state.
type ViewState int32

const (
	// ViewFresh means incremental maintenance is tracking the source.
	ViewFresh ViewState = iota
	// ViewStale means maintenance failed or reports were lost; reads are
	// served from the last applied membership, maintenance is paused.
	ViewStale
	// ViewRepairing means a resync against the source is in flight.
	ViewRepairing
)

// String names the state.
func (s ViewState) String() string {
	switch s {
	case ViewFresh:
		return "fresh"
	case ViewStale:
		return "stale"
	case ViewRepairing:
		return "repairing"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// State returns the view's current staleness state. Safe from any
// goroutine.
func (v *WView) State() ViewState { return ViewState(v.state.Load()) }

// StaleReason returns why the view left Fresh (empty when Fresh) and
// when.
func (v *WView) StaleReason() (string, time.Time) {
	v.staleMu.Lock()
	defer v.staleMu.Unlock()
	return v.staleReason, v.staleSince
}

// markStale moves the view to Stale, recording the reason. Idempotent:
// an already-stale view keeps its original reason (the first failure is
// the interesting one).
func (v *WView) markStale(reason string) {
	if !v.state.CompareAndSwap(int32(ViewFresh), int32(ViewStale)) {
		return
	}
	v.Stats.StaleTransitions.Inc()
	v.staleMu.Lock()
	v.staleReason = reason
	v.staleSince = time.Now()
	v.staleMu.Unlock()
}

// markFresh returns the view to Fresh and clears the reason.
func (v *WView) markFresh() {
	v.state.Store(int32(ViewFresh))
	v.staleMu.Lock()
	v.staleReason = ""
	v.staleSince = time.Time{}
	v.staleMu.Unlock()
}

// gapSource is implemented by sources that can lose update reports and
// know it (RemoteSource). TakeGap returns-and-clears the pending gap.
type gapSource interface {
	TakeGap() (lastSeq uint64, gapped bool)
}

// absorbSourceGap checks the source for a report-stream gap and, when
// one fired, marks every view stale: the lost reports are unrecoverable
// (the server does not replay), so only a resync restores correctness.
func (w *Warehouse) absorbSourceGap() {
	gs, ok := w.Src.(gapSource)
	if !ok {
		return
	}
	seq, gapped := gs.TakeGap()
	if !gapped {
		return
	}
	reason := fmt.Sprintf("report stream gap after seq %d", seq)
	for _, v := range w.viewsSorted() {
		v.markStale(reason)
	}
}

// ViewNames returns the names of all registered views, sorted.
func (w *Warehouse) ViewNames() []string {
	vs := w.viewsSorted()
	out := make([]string, 0, len(vs))
	for _, v := range vs {
		out = append(out, v.Name)
	}
	return out
}

// StaleViews returns the names of views currently not Fresh, sorted.
func (w *Warehouse) StaleViews() []string {
	var out []string
	for _, v := range w.viewsSorted() {
		if v.State() != ViewFresh {
			out = append(out, v.Name)
		}
	}
	return out
}

// Ready answers the warehouse's readiness probe (the /readyz handler,
// docs/OBSERVABILITY.md "Health endpoints"): nil when every view is
// Fresh, otherwise an error naming the quarantined views.
func (w *Warehouse) Ready() error {
	if stale := w.StaleViews(); len(stale) > 0 {
		return fmt.Errorf("warehouse: %d view(s) not fresh: %s", len(stale), strings.Join(stale, ", "))
	}
	return nil
}

// Quarantine forces a view Stale with the given reason — the operator's
// "stop trusting this, resync it" lever. The repair loop (or RepairAll)
// returns it to Fresh. No-op if the view is already quarantined.
func (w *Warehouse) Quarantine(name, reason string) error {
	v, ok := w.View(name)
	if !ok {
		return fmt.Errorf("%w: warehouse view %s", ErrViewNotFound, name)
	}
	if reason == "" {
		reason = "quarantined by operator"
	}
	v.markStale(reason)
	return nil
}

// Repair resyncs one view if it is Stale. It reports whether the view is
// Fresh on return.
func (w *Warehouse) Repair(name string) (bool, error) {
	v, ok := w.View(name)
	if !ok {
		return false, fmt.Errorf("%w: warehouse view %s", ErrViewNotFound, name)
	}
	if v.State() == ViewFresh {
		return true, nil
	}
	if err := w.resyncView(v); err != nil {
		return false, err
	}
	return true, nil
}

// RepairAll resyncs every non-Fresh view, in name order. It returns the
// first error (continuing past failed views) and the number of views it
// returned to Fresh.
func (w *Warehouse) RepairAll() (int, error) {
	var firstErr error
	repaired := 0
	w.absorbSourceGap()
	for _, v := range w.viewsSorted() {
		if v.State() == ViewFresh {
			continue
		}
		if err := w.resyncView(v); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		repaired++
	}
	return repaired, firstErr
}

// StartRepairLoop runs RepairAll every interval on a background
// goroutine until the returned stop function is called. Failed repairs
// stay Stale and are retried on the next tick.
func (w *Warehouse) StartRepairLoop(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_, _ = w.RepairAll()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// resyncView re-runs the view's defining query at the source and applies
// the difference to the materialization — the repair path. It runs under
// the view's processing lock, so incremental maintenance and repair
// never interleave on one view.
func (w *Warehouse) resyncView(v *WView) error {
	v.procMu.Lock()
	defer v.procMu.Unlock()
	if v.State() == ViewFresh {
		return nil
	}
	v.state.Store(int32(ViewRepairing))
	if err := w.resyncLocked(v); err != nil {
		v.Stats.RepairFailures.Inc()
		v.state.Store(int32(ViewStale))
		v.staleMu.Lock()
		v.staleReason = fmt.Sprintf("repair failed: %v", err)
		v.staleMu.Unlock()
		return err
	}
	v.Stats.Repairs.Inc()
	v.markFresh()
	return nil
}

// resyncLocked does the actual resync with procMu held.
func (w *Warehouse) resyncLocked(v *WView) error {
	// Capture the source's sequence number before fetching, then fetch
	// pinned at exactly that sequence (SeqQuerier): the result reflects
	// every update at or below preSeq and nothing newer, so queued
	// reports up to preSeq are skipped and everything after replays —
	// an exact replay bound. Against a source without pinned reads the
	// fetch degrades to the current state, where updates racing the
	// fetch may or may not be included; their reports replay after
	// repair and converge, exactly like the interference case of
	// Section 5.1.
	preSeq := w.Src.LastKnownSeq()
	objs, err := fetchQueryAt(w.Src, v.MV.Query, preSeq)
	if err != nil {
		return fmt.Errorf("refetching %s: %w", v.Name, err)
	}
	// The auxiliary cache mirrors source structure that may also have
	// drifted during the outage; rebuild it from scratch.
	if v.Config.Cache != CacheNone {
		cache, err := NewAuxCache(v.Def, w.Src, v.Config.Cache)
		if err != nil {
			return fmt.Errorf("rebuilding cache for %s: %w", v.Name, err)
		}
		v.Cache = cache
		v.Access.Cache = cache
	}
	after := make([]oem.OID, 0, len(objs))
	byOID := make(map[oem.OID]*oem.Object, len(objs))
	for _, o := range objs {
		after = append(after, o.OID)
		byOID[o.OID] = o
	}
	after = oem.SortOIDs(after)
	before, err := v.MV.Members()
	if err != nil {
		return fmt.Errorf("reading %s membership: %w", v.Name, err)
	}
	d := core.DiffMembers(before, after)

	// Seed a synthetic report carrying the fetched objects so VInsert's
	// access.Fetch is answered locally instead of re-querying per member.
	synth := &UpdateReport{
		Source:  w.Src.ID(),
		Level:   Level3,
		Update:  store.Update{Seq: preSeq, Kind: store.UpdateNone},
		Objects: byOID,
	}
	v.Access.SetReport(synth)
	defer v.Access.SetReport(nil)
	for _, y := range d.Delete {
		if err := v.Maint.VDelete(y); err != nil {
			return fmt.Errorf("resync delete %s: %w", y, err)
		}
	}
	// Re-insert every current member, not just the new ones: viewInsert
	// overwrites the delegate from the fetched object, which refreshes
	// values that changed while the view was quarantined without
	// changing membership.
	for _, y := range after {
		if err := v.Maint.VInsert(y); err != nil {
			return fmt.Errorf("resync insert %s: %w", y, err)
		}
	}
	v.resyncSkipSeq = preSeq
	v.recordDeltas(len(d.Insert), len(d.Delete))
	// One aggregate changefeed event describes the whole repair; Publish
	// skips it when the membership did not actually change.
	v.feed.Publish(v.Name, synth.Update, d)
	return nil
}
