package warehouse

import (
	"errors"
	"fmt"
	"strings"
)

// This file adds the "shard" request to the query-mode wire protocol:
// the per-source federation handshake. A federated client (or an
// operator tool like gsdbwatch) asks a source server which partition of
// the federation it carries and how healthy it is, and receives one
// JSON frame. Servers without a ShardInfo hook answer with the
// unknown-op error, so old binaries stay protocol-compatible and
// clients map the answer to ErrUnsupportedRequest.

// ShardPayload is the body of a shard response: which partition of how
// many this server serves, and the progress and health of that source.
type ShardPayload struct {
	// Node names the serving node (gsdbserve -node, default "primary").
	Node string `json:"node,omitempty"`
	// Source is the federated source name ("source2").
	Source string `json:"source"`
	// Shard and Shards place this server in the partition scheme:
	// partition Shard of Shards.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Seq is the source's current sequence head.
	Seq uint64 `json:"seq"`
	// State is the supervisor's view of the source ("up", "degraded",
	// "down") as seen at the serving side; empty when unsupervised.
	State string `json:"state,omitempty"`
	// Watermark is the newest origin stamp (Unix nanos) drained from
	// this source, 0 before any stamped report.
	Watermark int64 `json:"watermark,omitempty"`
}

// FetchShardInfo asks the connected server for its federation shard
// descriptor. A server that predates the federation protocol (or is not
// part of one) answers with its unknown-op error; that is surfaced as
// ErrUnsupportedRequest so callers can degrade gracefully.
func (rs *RemoteSource) FetchShardInfo() (*ShardPayload, error) {
	resp, err := rs.roundTrip(netRequest{Op: "shard"})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		if strings.Contains(resp.Err, "unknown op") {
			return nil, fmt.Errorf("%w: %s", ErrUnsupportedRequest, resp.Err)
		}
		return nil, fmt.Errorf("warehouse: remote: %s", resp.Err)
	}
	if resp.Shard == nil {
		return nil, errors.New("warehouse: shard response carried no payload")
	}
	return resp.Shard, nil
}
