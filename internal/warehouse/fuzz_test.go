package warehouse

import (
	"bytes"
	"errors"
	"testing"

	"gsv/internal/store"
	"gsv/internal/workload"
)

// FuzzNetFrame throws arbitrary byte lines at the wire protocol's frame
// decoder and request dispatcher. The invariant under test: malformed
// frames, oversized lines and unknown ops must all error cleanly — a
// hostile peer can never panic the server.
func FuzzNetFrame(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"op":"object","oid":"P1"}`),
		[]byte(`{"op":"path","oid":"A1"}`),
		[]byte(`{"op":"ancestor","oid":"A1","path":"age"}`),
		[]byte(`{"op":"query","query":"SELECT ROOT.professor X WHERE X.age <= 45"}`),
		[]byte(`{"op":"subtree","oid":"P1","depth":2}`),
		[]byte(`{"op":"nonsense"}`),
		[]byte(`{"op":"trace","view":"YP"}`),
		[]byte(`{"op":"shard"}`),
		[]byte(`{"op":"members","view":"YP"}`),
		[]byte(`{"view":"YP","resume":true,"from":3,"policy":"drop"}`),
		[]byte(`{"views":["HOT","COLD"],"froms":{"HOT":41},"snapshot":true}`),
		[]byte(`{"views":["*"],"snapshot":true,"policy":"drop-oldest","buffer":8}`),
		[]byte(`{"views":[],"froms":{"":0}}`),
		[]byte(`{"op":"object","oid":"P1"} trailing garbage`),
		[]byte(`{"op":`),
		[]byte(`[1,2,3]`),
		[]byte(`"just a string"`),
		[]byte(``),
		[]byte("\x00\xff\xfe"),
		[]byte(`{"op":"object","oid":{"nested":"wrong type"}}`),
	}
	for _, s := range seeds {
		f.Add(s)
	}

	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("fuzz", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	server := NewServer(src)

	f.Fuzz(func(t *testing.T, line []byte) {
		var req netRequest
		if err := decodeFrame(line, &req); err == nil {
			resp := server.dispatch(req)
			// Unknown ops must be answered with an error frame, never
			// silently swallowed or crashed on.
			switch req.Op {
			case "object", "path", "ancestor", "eval", "subtree", "query":
			default:
				if resp.Err == "" {
					t.Fatalf("unknown op %q produced no error", req.Op)
				}
			}
		}
		// The subscribe-mode request frame shares the decoder; it must be
		// equally panic-free on the same input.
		var fr feedRequest
		_ = decodeFrame(line, &fr)
	})
}

func TestDecodeFrameOversize(t *testing.T) {
	line := bytes.Repeat([]byte("a"), maxFrame+1)
	var req netRequest
	if err := decodeFrame(line, &req); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("oversized frame error = %v", err)
	}
}

func TestDecodeFrameTrailingData(t *testing.T) {
	var req netRequest
	if err := decodeFrame([]byte(`{"op":"object"} {"op":"path"}`), &req); err == nil {
		t.Fatal("trailing data accepted")
	}
}

// TestQueryModeSurvivesBadFrames pins the handleQueries behaviour the
// fuzz target assumes: a malformed line yields an error response and the
// connection keeps serving.
func TestQueryModeSurvivesBadFrames(t *testing.T) {
	_, _, remote := startNetSource(t, Level2)
	// A valid request works.
	if _, err := remote.FetchObject("P1"); err == nil {
		// Now push garbage through the same connection path by issuing a
		// request the server rejects, then a valid one again.
		if _, err := remote.FetchObject("no-such-oid"); err == nil {
			t.Fatal("missing object fetch succeeded")
		}
		if _, err := remote.FetchObject("P1"); err != nil {
			t.Fatalf("connection did not survive an error response: %v", err)
		}
		return
	}
	t.Fatal("initial fetch failed")
}
