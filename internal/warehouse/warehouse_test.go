package warehouse

import (
	"fmt"
	"testing"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// fixture builds a PERSON source at the given level and a warehouse with
// the YP view (professors aged <= 45) under the given config.
func fixture(t testing.TB, level ReportLevel, cfg ViewConfig) (*Source, *Warehouse, *WView) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	tr := NewTransport(0)
	src := NewSource("persons", s, "ROOT", level, tr)
	src.DrainReports() // discard construction-time updates
	w := New(src)
	v, err := w.DefineView("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return src, w, v
}

func wantMembers(t testing.TB, v *WView, want ...oem.OID) {
	t.Helper()
	got, err := v.MV.Members()
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, want) {
		t.Fatalf("members = %v, want %v", got, want)
	}
}

func TestWarehouseInitialMaterialization(t *testing.T) {
	src, w, v := fixture(t, Level2, ViewConfig{})
	wantMembers(t, v, "P1")
	// Delegates live at the warehouse, not the source.
	if !w.Store.Has("YP.P1") || src.Store.Has("YP.P1") {
		t.Fatal("delegate placement wrong")
	}
	d, _ := w.Store.Get("YP.P1")
	if !oem.SameMembers(d.Set, []oem.OID{"N1", "A1", "S1", "P3"}) {
		t.Fatalf("delegate value = %v", d.Set)
	}
	if src.Transport.QueryBacks == 0 {
		t.Fatal("initial materialization cost not accounted")
	}
}

func TestWarehouseExample5AtEveryLevel(t *testing.T) {
	for _, level := range []ReportLevel{Level1, Level2, Level3} {
		for _, cache := range []CacheMode{CacheNone, CachePartial, CacheFull} {
			name := fmt.Sprintf("%s/%s", level, cache)
			t.Run(name, func(t *testing.T) {
				src, w, v := fixture(t, level, ViewConfig{Cache: cache})
				// insert(P2, A2): P2 joins the view.
				if _, err := src.Put(oem.NewAtom("A2", "age", oem.Int(40))); err != nil {
					t.Fatal(err)
				}
				rs, err := src.Insert("P2", "A2")
				if err != nil {
					t.Fatal(err)
				}
				// Feed the creation report too (cache pre-learning).
				all := append(src.DrainReports(), rs...)
				if err := w.ProcessAll(all); err != nil {
					t.Fatal(err)
				}
				wantMembers(t, v, "P1", "P2")

				// modify(A1, 45, 50): P1 leaves.
				rs, err = src.Modify("A1", oem.Int(50))
				if err != nil {
					t.Fatal(err)
				}
				if err := w.ProcessAll(rs); err != nil {
					t.Fatal(err)
				}
				wantMembers(t, v, "P2")

				// delete(ROOT, P2)? P2 still has age 40 — delete the edge
				// and the member must go.
				rs, err = src.Delete("ROOT", "P2")
				if err != nil {
					t.Fatal(err)
				}
				if err := w.ProcessAll(rs); err != nil {
					t.Fatal(err)
				}
				wantMembers(t, v)
			})
		}
	}
}

func TestWarehouseLevel1StripsValues(t *testing.T) {
	src, _, _ := fixture(t, Level1, ViewConfig{})
	rs, err := src.Modify("A1", oem.Int(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("reports = %d", len(rs))
	}
	r := rs[0]
	if !r.Update.Old.IsZero() || !r.Update.New.IsZero() || r.Objects != nil || r.Path != nil {
		t.Fatalf("level 1 report leaks data: %+v", r)
	}
}

func TestWarehouseLevel2CarriesObjects(t *testing.T) {
	src, _, _ := fixture(t, Level2, ViewConfig{})
	rs, err := src.Modify("A1", oem.Int(50))
	if err != nil {
		t.Fatal(err)
	}
	r := rs[0]
	if r.Objects["A1"] == nil || !r.Objects["A1"].Atom.Equal(oem.Int(50)) {
		t.Fatalf("level 2 report objects = %v", r.Objects)
	}
	if r.Path != nil {
		t.Fatal("level 2 report carries a path")
	}
}

func TestWarehouseLevel3CarriesPath(t *testing.T) {
	src, _, _ := fixture(t, Level3, ViewConfig{})
	rs, err := src.Modify("A1", oem.Int(50))
	if err != nil {
		t.Fatal(err)
	}
	r := rs[0]
	if r.Path == nil {
		t.Fatal("level 3 report has no path")
	}
	if r.Path.Labels.String() != "professor.age" {
		t.Fatalf("path labels = %v", r.Path.Labels)
	}
	if len(r.Path.OIDs) != 2 || r.Path.OIDs[0] != "P1" || r.Path.OIDs[1] != "A1" {
		t.Fatalf("path OIDs = %v", r.Path.OIDs)
	}
}

func TestWarehouseQueryBacksDecreaseWithLevel(t *testing.T) {
	// The §5.1 shape: higher report levels need fewer query backs for the
	// same update sequence.
	cost := func(level ReportLevel) uint64 {
		src, w, v := fixture(t, level, ViewConfig{})
		base := v.Stats.QueryBacks.Value()
		if _, err := src.Put(oem.NewAtom("A2", "age", oem.Int(40))); err != nil {
			t.Fatal(err)
		}
		reports, err := src.Insert("P2", "A2")
		if err != nil {
			t.Fatal(err)
		}
		if err := w.ProcessAll(reports); err != nil {
			t.Fatal(err)
		}
		if rs, err := src.Modify("A1", oem.Int(50)); err != nil {
			t.Fatal(err)
		} else if err := w.ProcessAll(rs); err != nil {
			t.Fatal(err)
		}
		return v.Stats.QueryBacks.Value() - base
	}
	c1, c2, c3 := cost(Level1), cost(Level2), cost(Level3)
	if !(c1 >= c2 && c2 >= c3) {
		t.Fatalf("query backs not monotone: level1=%d level2=%d level3=%d", c1, c2, c3)
	}
	if c1 == c3 {
		t.Fatalf("level 3 saves nothing over level 1 (%d vs %d)", c3, c1)
	}
}

func TestWarehouseFullCacheMaintainsLocally(t *testing.T) {
	// Example 10: with the full auxiliary structure cached, maintenance
	// needs no source queries for reported updates.
	src, w, v := fixture(t, Level2, ViewConfig{Cache: CacheFull})
	queriesBefore := src.Transport.QueryBacks
	if _, err := src.Put(oem.NewAtom("A2", "age", oem.Int(40))); err != nil {
		t.Fatal(err)
	}
	all := src.DrainReports()
	rs, err := src.Insert("P2", "A2")
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, rs...)
	rs, err = src.Modify("A1", oem.Int(50))
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, rs...)
	rs, err = src.Delete("P2", "A2")
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, rs...)
	if err := w.ProcessAll(all); err != nil {
		t.Fatal(err)
	}
	wantMembers(t, v) // P1 out (age 50), P2 in then out again
	if got := src.Transport.QueryBacks - queriesBefore; got != 0 {
		t.Fatalf("full cache still issued %d query backs", got)
	}
	if v.Stats.LocalOnly.Value() != v.Stats.Reports.Value()-v.Stats.Screened.Value() {
		t.Fatalf("stats: reports=%d screened=%d local=%d",
			v.Stats.Reports.Value(), v.Stats.Screened.Value(), v.Stats.LocalOnly.Value())
	}
}

func TestWarehousePartialCacheQueriesOnlyForValues(t *testing.T) {
	src, w, v := fixture(t, Level2, ViewConfig{Cache: CachePartial})
	queriesBefore := src.Transport.QueryBacks
	// A modify that affects membership needs one value query under the
	// partial cache (structure is local, values are not).
	rs, err := src.Modify("A1", oem.Int(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ProcessAll(rs); err != nil {
		t.Fatal(err)
	}
	wantMembers(t, v)
	used := src.Transport.QueryBacks - queriesBefore
	if used == 0 {
		t.Fatal("partial cache answered a value test locally")
	}
	if used > 2 {
		t.Fatalf("partial cache used %d query backs, want <= 2", used)
	}
}

func TestWarehouseScreeningSkipsIrrelevant(t *testing.T) {
	src, w, v := fixture(t, Level2, ViewConfig{Screening: true})
	queriesBefore := src.Transport.QueryBacks
	// Insert an object whose label is not on professor.age.
	if _, err := src.Put(oem.NewAtom("H4", "hobby", oem.String_("golf"))); err != nil {
		t.Fatal(err)
	}
	rs, err := src.Insert("P4", "H4")
	if err != nil {
		t.Fatal(err)
	}
	all := append(src.DrainReports(), rs...)
	if err := w.ProcessAll(all); err != nil {
		t.Fatal(err)
	}
	if v.Stats.Screened.Value() == 0 {
		t.Fatal("irrelevant update not screened")
	}
	if got := src.Transport.QueryBacks - queriesBefore; got != 0 {
		t.Fatalf("screened update cost %d query backs", got)
	}
	wantMembers(t, v, "P1")
}

func TestWarehouseScreeningKeepsMemberRefresh(t *testing.T) {
	// An irrelevant-label insert under a current member must NOT be
	// screened: the delegate value needs the new child.
	src, w, v := fixture(t, Level2, ViewConfig{Screening: true})
	if _, err := src.Put(oem.NewAtom("H1", "hobby", oem.String_("chess"))); err != nil {
		t.Fatal(err)
	}
	rs, err := src.Insert("P1", "H1")
	if err != nil {
		t.Fatal(err)
	}
	all := append(src.DrainReports(), rs...)
	if err := w.ProcessAll(all); err != nil {
		t.Fatal(err)
	}
	d, err := v.MV.Delegate("P1")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Contains("H1") {
		t.Fatalf("delegate value stale after screened-adjacent insert: %v", d.Set)
	}
}

func TestWarehousePathKnowledgeScreening(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	tr := NewTransport(0)
	src := NewSource("persons", s, "ROOT", Level2, tr)
	src.DrainReports()
	pk := LearnFromSource(s, "ROOT")
	w := New(src)
	v, err := w.DefineView("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"),
		ViewConfig{Screening: true, Knowledge: pk})
	if err != nil {
		t.Fatal(err)
	}
	// An age object under a *student* cannot lie on professor.age: pair
	// knowledge screens it even though the label "age" is on the path.
	if _, err := src.Put(oem.NewAtom("A3b", "age", oem.Int(22))); err != nil {
		t.Fatal(err)
	}
	queriesBefore := src.Transport.QueryBacks
	rs, err := src.Insert("P3", "A3b")
	if err != nil {
		t.Fatal(err)
	}
	all := append(src.DrainReports(), rs...)
	if err := w.ProcessAll(all); err != nil {
		t.Fatal(err)
	}
	if v.Stats.Screened.Value() == 0 {
		t.Fatal("pair knowledge did not screen the student.age insert")
	}
	if got := src.Transport.QueryBacks - queriesBefore; got != 0 {
		t.Fatalf("screened insert cost %d query backs", got)
	}
	wantMembers(t, v, "P1")
}

func TestPathKnowledge(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	pk := LearnFromSource(s, "ROOT")
	if !pk.Occurs("", "professor") || !pk.Occurs("professor", "age") || !pk.Occurs("student", "major") {
		t.Fatal("expected pairs missing")
	}
	if pk.Occurs("student", "salary") {
		t.Fatal("impossible pair present")
	}
	pk.Observe("student", "salary")
	if !pk.Occurs("student", "salary") {
		t.Fatal("Observe did not record")
	}
	if pk.PairCount() == 0 {
		t.Fatal("PairCount zero")
	}
}

func TestWarehouseRejectsNonSimpleAndWithin(t *testing.T) {
	src, w, _ := fixture(t, Level2, ViewConfig{})
	_ = src
	if _, err := w.DefineView("W", query.MustParse("SELECT ROOT.* X"), ViewConfig{}); err == nil {
		t.Fatal("wildcard view accepted")
	}
	if _, err := w.DefineView("W2", query.MustParse("SELECT ROOT.professor X WITHIN PERSON"), ViewConfig{}); err == nil {
		t.Fatal("WITHIN view accepted")
	}
	if _, err := w.DefineView("YP", query.MustParse("SELECT ROOT.professor X"), ViewConfig{}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestTransportAccounting(t *testing.T) {
	tr := NewTransport(10)
	tr.RoundTrip(100, 200, 3)
	tr.OneWay(50, 1)
	if tr.Messages != 3 || tr.QueryBacks != 1 || tr.ObjectsShipped != 4 || tr.Bytes != 350 {
		t.Fatalf("transport = %+v", tr)
	}
	if tr.VirtualTime != 15 {
		t.Fatalf("virtual time = %v", tr.VirtualTime)
	}
	snap := tr.Snapshot()
	tr.RoundTrip(1, 1, 0)
	d := tr.Sub(snap)
	if d.QueryBacks != 1 || d.Bytes != 2 {
		t.Fatalf("diff = %+v", d)
	}
	if tr.String() == "" {
		t.Fatal("empty String")
	}
}

// TestPropertyWarehouseMatchesCentral replays a random stream through the
// warehouse at every (level, cache) combination and cross-checks the view
// against a centrally maintained twin after every update.
func TestPropertyWarehouseMatchesCentral(t *testing.T) {
	for _, level := range []ReportLevel{Level1, Level2, Level3} {
		for _, cache := range []CacheMode{CacheNone, CachePartial, CacheFull} {
			for seed := int64(0); seed < 2; seed++ {
				name := fmt.Sprintf("%s/%s/seed%d", level, cache, seed)
				t.Run(name, func(t *testing.T) {
					s := store.NewDefault()
					db := workload.RelationLike(s, workload.RelationConfig{
						Relations: 2, TuplesPerRelation: 5, FieldsPerTuple: 2, Seed: seed,
					})
					tr := NewTransport(0)
					src := NewSource("rel", s, "REL", level, tr)
					src.DrainReports()
					w := New(src)
					v, err := w.DefineView("SEL",
						query.MustParse("SELECT REL.r0.tuple X WHERE X.age > 40"),
						ViewConfig{Cache: cache, Screening: level >= Level2})
					if err != nil {
						t.Fatal(err)
					}
					var sets, atoms []oem.OID
					for _, r := range db.Relations {
						sets = append(sets, r.OID)
						sets = append(sets, r.Tuples...)
						for _, tu := range r.Tuples {
							kids, _ := s.Children(tu)
							atoms = append(atoms, kids...)
						}
					}
					stream := workload.NewStream(s, workload.StreamConfig{
						Seed: seed + 7, Mix: workload.Mix{Insert: 3, Delete: 2, Modify: 5}, ValueRange: 90,
					}, sets, atoms)
					for step := 0; step < 80; step++ {
						if _, ok := stream.Next(); !ok {
							break
						}
						if err := w.ProcessAll(src.DrainReports()); err != nil {
							t.Fatalf("step %d: %v", step, err)
						}
						if step%8 == 0 {
							fresh, err := query.NewEvaluator(s).Eval(v.MV.Query)
							if err != nil {
								t.Fatal(err)
							}
							got, err := v.MV.Members()
							if err != nil {
								t.Fatal(err)
							}
							if !oem.SameMembers(got, fresh) {
								t.Fatalf("step %d: warehouse %v != fresh %v", step, got, fresh)
							}
						}
					}
					fresh, _ := query.NewEvaluator(s).Eval(v.MV.Query)
					got, _ := v.MV.Members()
					if !oem.SameMembers(got, fresh) {
						t.Fatalf("final: warehouse %v != fresh %v", got, fresh)
					}
					// Delegate values must match base values too.
					for _, b := range fresh {
						d, err := v.MV.Delegate(b)
						if err != nil {
							t.Fatalf("missing delegate %s: %v", b, err)
						}
						o, _ := s.Get(b)
						if o.IsSet() && !oem.SameMembers(d.Set, o.Set) {
							t.Fatalf("delegate %s value %v != base %v", b, d.Set, o.Set)
						}
					}
				})
			}
		}
	}
}
