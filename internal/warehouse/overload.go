package warehouse

import (
	"container/list"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"gsv/internal/obs"
)

// This file is the overload-protection layer of the serving tier
// (docs/WAREHOUSE.md "Overload & graceful drain"). PR 8's circuit
// breakers protect the warehouse from its *sources*; this is the
// symmetric half, protecting every server — primary, shard or replica —
// from its *clients*. Three mechanisms compose:
//
//   - Admission control: a connection cap plus a weighted concurrency
//     semaphore with a bounded FIFO wait queue. Health ops (stats,
//     trace, shard) are always exempt so operators can inspect an
//     overloaded node; data reads are sheddable with the typed
//     retryable ErrOverloaded; report/feed streams count against their
//     own cap so readers cannot starve replication.
//   - Deadline propagation: clients stamp their remaining budget into
//     each request frame (netRequest.BudgetMS); the server bounds queue
//     waits by it and sheds work whose budget already expired instead
//     of computing an answer nobody is waiting for.
//   - Graceful drain: Server.Drain stops accepting, sheds new data
//     reads with ErrDraining, lets in-flight ops finish, then closes.
//
// Everything here is old-client compatible: sheds travel as ordinary
// error strings carrying a recognizable marker, which new clients
// (RemoteSource, DialFeed) map back to the typed sentinel.

// ErrOverloaded is the typed retryable shed error: the server refused
// the request because it is at capacity (admission queue full or wait
// timed out). The condition is transient — back off and retry. Its
// message is the wire marker new clients detect, so it must stay
// stable across versions.
var ErrOverloaded = errors.New("warehouse: overloaded (retryable)")

// ErrDraining sheds data reads on a server that is gracefully draining
// (SIGTERM): retry against another node. It wraps ErrOverloaded so one
// errors.Is covers both shed kinds.
var ErrDraining = fmt.Errorf("%w: draining", ErrOverloaded)

// ErrBudgetExpired sheds work whose client-stamped deadline budget
// already elapsed (in the queue, or before arrival): the client has
// given up, so computing the answer would be pure waste. It wraps
// ErrOverloaded — the caller's recovery (back off, retry) is the same.
var ErrBudgetExpired = fmt.Errorf("%w: request budget expired", ErrOverloaded)

// overloadMarker is the substring that identifies a shed error on the
// wire (ErrOverloaded's message; ErrDraining and ErrBudgetExpired
// contain it by construction). Old clients just see an error string;
// new clients map it back to the typed sentinel.
const overloadMarker = "overloaded (retryable)"

// overloadedError carries a server-rendered shed message while keeping
// errors.Is(err, ErrOverloaded) true across the wire, the same pattern
// feedExpiredError uses for feed.ErrCursorExpired.
type overloadedError struct{ msg string }

func (e *overloadedError) Error() string { return e.msg }
func (e *overloadedError) Unwrap() error { return ErrOverloaded }

// remoteError turns a server-side error string into the client-side
// error for a query-mode response, restoring the ErrOverloaded
// sentinel when the string carries the shed marker.
func remoteError(errStr string) error {
	if strings.Contains(errStr, overloadMarker) {
		return &overloadedError{msg: "warehouse: remote: " + errStr}
	}
	return fmt.Errorf("warehouse: remote: %s", errStr)
}

// OpClass buckets query-mode ops for admission control.
type OpClass int

const (
	// ClassRead is a sheddable data read (object, members, query, ...).
	ClassRead OpClass = iota
	// ClassExempt ops (stats, trace, shard) bypass admission entirely:
	// they are how operators and federations inspect an overloaded or
	// draining node, so they must answer precisely when everything else
	// is being shed.
	ClassExempt
)

// ClassifyOp returns the admission class of a query-mode op. Unknown
// ops classify as reads: they cost a dispatch that answers unknown-op,
// which is as cheap as a shed, but classifying them exempt would hand
// hostile clients a free bypass.
func ClassifyOp(op string) OpClass {
	switch op {
	case "stats", "trace", "shard":
		return ClassExempt
	default:
		return ClassRead
	}
}

// OpWeight is an op's admission cost: point lookups weigh 1, scans
// (path evaluation, subtrees, full queries, view memberships) weigh 4,
// so one semaphore bounds a mixed workload by approximate work rather
// than request count.
func OpWeight(op string) int64 {
	switch op {
	case "eval", "subtree", "query", "queryat", "members":
		return 4
	default:
		return 1
	}
}

// AdmissionConfig sizes an AdmissionController. Zero-valued limits are
// unlimited, so the zero config admits everything (but still counts).
type AdmissionConfig struct {
	// MaxConns caps concurrently open connections (all modes). Accepts
	// beyond it are closed immediately — cheaper for both sides than a
	// handshake that would only be shed per-request later.
	MaxConns int
	// MaxStreams caps concurrently attached report streams and feed
	// subscriptions, which are long-lived and per-consumer; replication
	// fan-in gets its own budget instead of competing with reads.
	MaxStreams int
	// MaxInflight caps the total weighted concurrency of admitted data
	// reads (see OpWeight).
	MaxInflight int64
	// MaxQueue bounds how many reads may wait for admission; arrivals
	// beyond it are shed immediately with ErrOverloaded.
	MaxQueue int
	// QueueWait bounds how long one read may wait in the admission
	// queue before being shed (default 100ms). A request's own deadline
	// budget shortens the wait further.
	QueueWait time.Duration
	// MinSlack, when positive, sheds a deadline-carrying read unless at
	// least this much budget remains at dispatch time. A request that
	// would start evaluation with (say) a millisecond left almost
	// certainly produces a dead answer; requiring slack spends the
	// server's capacity only on answers that can still arrive alive.
	// Zero serves every not-yet-expired request.
	MinSlack time.Duration
}

// DefaultQueueWait bounds admission-queue waits when
// AdmissionConfig.QueueWait is zero.
const DefaultQueueWait = 100 * time.Millisecond

// admitWaiter is one queued read waiting for semaphore capacity.
type admitWaiter struct {
	weight  int64
	ready   chan struct{}
	granted bool
}

// AdmissionController implements the connection cap, the stream cap
// and the weighted read semaphore for one Server. All counters are
// exported for observability (RegisterObs) and for tests.
type AdmissionController struct {
	cfg AdmissionConfig

	mu       sync.Mutex
	inflight int64
	conns    int
	streams  int
	waiters  *list.List // of *admitWaiter, FIFO

	// ShedConns counts connections closed at accept (MaxConns).
	ShedConns obs.Counter
	// ShedStreams counts report/feed attachments refused (MaxStreams).
	ShedStreams obs.Counter
	// ShedReads counts data reads shed with ErrOverloaded/ErrDraining.
	ShedReads obs.Counter
	// Queued counts reads that had to wait for admission.
	Queued obs.Counter
	// Expired counts reads shed because their deadline budget elapsed.
	Expired obs.Counter
	// Drains counts graceful drains started on the owning server.
	Drains obs.Counter
	// AcceptRetries counts transient Accept errors survived via backoff.
	AcceptRetries obs.Counter
}

// NewAdmissionController returns a controller for cfg.
func NewAdmissionController(cfg AdmissionConfig) *AdmissionController {
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = DefaultQueueWait
	}
	return &AdmissionController{cfg: cfg, waiters: list.New()}
}

// Config returns the controller's (defaulted) configuration.
func (a *AdmissionController) Config() AdmissionConfig { return a.cfg }

// AdmitConn claims one connection slot; false means the cap is hit and
// the connection must be closed.
func (a *AdmissionController) AdmitConn() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.MaxConns > 0 && a.conns >= a.cfg.MaxConns {
		a.ShedConns.Inc()
		return false
	}
	a.conns++
	return true
}

// ReleaseConn returns a connection slot.
func (a *AdmissionController) ReleaseConn() {
	a.mu.Lock()
	a.conns--
	a.mu.Unlock()
}

// AdmitStream claims one report/feed stream slot; false means refuse
// the attachment.
func (a *AdmissionController) AdmitStream() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.MaxStreams > 0 && a.streams >= a.cfg.MaxStreams {
		a.ShedStreams.Inc()
		return false
	}
	a.streams++
	return true
}

// ReleaseStream returns a stream slot.
func (a *AdmissionController) ReleaseStream() {
	a.mu.Lock()
	a.streams--
	a.mu.Unlock()
}

// Acquire admits one read of the given weight, waiting in FIFO order
// up to QueueWait (shortened by deadline when non-zero). It returns
// ErrOverloaded when the queue is full or the wait times out. Every
// nil return must be paired with Release(weight).
func (a *AdmissionController) Acquire(weight int64, deadline time.Time) error {
	a.mu.Lock()
	if a.cfg.MaxInflight <= 0 {
		a.inflight += weight
		a.mu.Unlock()
		return nil
	}
	if a.waiters.Len() == 0 && a.fitsLocked(weight) {
		a.inflight += weight
		a.mu.Unlock()
		return nil
	}
	if a.cfg.MaxQueue <= 0 || a.waiters.Len() >= a.cfg.MaxQueue {
		a.ShedReads.Inc()
		a.mu.Unlock()
		return ErrOverloaded
	}
	w := &admitWaiter{weight: weight, ready: make(chan struct{})}
	el := a.waiters.PushBack(w)
	a.Queued.Inc()
	a.mu.Unlock()

	wait := a.cfg.QueueWait
	if !deadline.IsZero() {
		if d := time.Until(deadline); d < wait {
			wait = d
		}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-w.ready:
		return nil
	case <-timer.C:
	}
	a.mu.Lock()
	if w.granted {
		// Granted between the timer firing and us re-locking: we hold
		// the permit, so serve rather than shed.
		a.mu.Unlock()
		return nil
	}
	a.waiters.Remove(el)
	a.ShedReads.Inc()
	a.mu.Unlock()
	return ErrOverloaded
}

// fitsLocked reports whether weight fits under MaxInflight. A weight
// larger than the whole cap is admitted when the server is idle, so an
// undersized cap degrades to serial execution instead of deadlock.
func (a *AdmissionController) fitsLocked(weight int64) bool {
	if a.inflight == 0 {
		return true
	}
	return a.inflight+weight <= a.cfg.MaxInflight
}

// Release returns weight to the semaphore and grants as many queued
// waiters (in FIFO order) as now fit.
func (a *AdmissionController) Release(weight int64) {
	a.mu.Lock()
	a.inflight -= weight
	for a.waiters.Len() > 0 {
		el := a.waiters.Front()
		w := el.Value.(*admitWaiter)
		if !a.fitsLocked(w.weight) {
			break
		}
		a.waiters.Remove(el)
		w.granted = true
		a.inflight += w.weight
		close(w.ready)
	}
	a.mu.Unlock()
}

// Inflight returns the currently admitted weight.
func (a *AdmissionController) Inflight() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// QueueLen returns the number of reads waiting for admission.
func (a *AdmissionController) QueueLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiters.Len()
}

// Conns returns the number of admitted connections.
func (a *AdmissionController) Conns() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.conns
}

// Streams returns the number of attached report/feed streams.
func (a *AdmissionController) Streams() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.streams
}

// RegisterObs exposes the overload counters and gauges on reg, with
// extra labels (e.g. per-shard) applied to every series.
func (a *AdmissionController) RegisterObs(reg *obs.Registry, labels ...obs.Label) {
	reg.Help("gsv_overload_shed_total", "requests shed by admission control, by class")
	reg.Help("gsv_overload_queued_total", "reads that waited in the admission queue")
	reg.Help("gsv_overload_expired_total", "reads shed because their deadline budget expired")
	reg.Help("gsv_overload_drains_total", "graceful drains started")
	reg.Help("gsv_overload_accept_retries_total", "transient accept errors survived via backoff")
	reg.Help("gsv_overload_inflight", "currently admitted read weight")
	reg.Help("gsv_overload_queue", "reads currently waiting for admission")
	reg.Help("gsv_overload_conns", "currently open connections")
	reg.Help("gsv_overload_streams", "currently attached report/feed streams")
	with := func(extra ...obs.Label) []obs.Label {
		return append(append([]obs.Label{}, labels...), extra...)
	}
	reg.RegisterCounter("gsv_overload_shed_total", &a.ShedConns, with(obs.L("class", "conn"))...)
	reg.RegisterCounter("gsv_overload_shed_total", &a.ShedStreams, with(obs.L("class", "stream"))...)
	reg.RegisterCounter("gsv_overload_shed_total", &a.ShedReads, with(obs.L("class", "read"))...)
	reg.RegisterCounter("gsv_overload_queued_total", &a.Queued, labels...)
	reg.RegisterCounter("gsv_overload_expired_total", &a.Expired, labels...)
	reg.RegisterCounter("gsv_overload_drains_total", &a.Drains, labels...)
	reg.RegisterCounter("gsv_overload_accept_retries_total", &a.AcceptRetries, labels...)
	reg.GaugeFunc("gsv_overload_inflight", func() float64 { return float64(a.Inflight()) }, labels...)
	reg.GaugeFunc("gsv_overload_queue", func() float64 { return float64(a.QueueLen()) }, labels...)
	reg.GaugeFunc("gsv_overload_conns", func() float64 { return float64(a.Conns()) }, labels...)
	reg.GaugeFunc("gsv_overload_streams", func() float64 { return float64(a.Streams()) }, labels...)
}
