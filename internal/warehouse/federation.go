package warehouse

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
)

// Federation is the §5 / Figure 6 warehouse over *many* autonomous
// sources: the base GSDB is partitioned across N source shards (see
// partition.go), each shard's report stream is drained concurrently
// into its own per-shard Warehouse, and federated views are the union
// of per-shard member views (named <view>@<source>, the Integrator's
// convention). Algorithm 1 maintenance at one shard that needs an
// object owned by another shard issues a cross-shard query back routed
// by the Partitioner and memoized per maintenance round, so a round's
// repeated foreign fetches are batched into one wire call each.
//
// Robustness (docs/WAREHOUSE.md, "Multi-source federation & failure
// model"): every source call is guarded by that source's
// SourceSupervisor (health.go) — a circuit breaker that fails calls
// fast once the source is Down. Tripping quarantines only the member
// views on that partition via the Fresh/Stale/Repairing machinery;
// reads over the healthy partitions keep serving, and a spanning read
// missing partitions returns the healthy union plus a typed
// *PartialResultError naming what is missing. Repair query-backs
// double as the breaker's half-open probes, so a restarted source is
// re-admitted and its partition resynced by the same Pump loop.
type Federation struct {
	part   *Partitioner
	quorum int
	shards []*fedShard
	byName map[string]*fedShard

	// mu guards views (DefineView vs concurrent reads).
	mu    sync.RWMutex
	views map[string]*fedView

	// crossMu guards the per-round cross-shard fetch memo (reset by
	// beginRound): within one maintenance round every foreign OID is
	// fetched from its owner at most once.
	crossMu sync.Mutex
	cross   map[oem.OID]*oem.Object

	crossFetches obs.Counter // cross-shard query backs issued
	crossBatched obs.Counter // cross-shard fetches answered by the round memo
	partialReads obs.Counter // federated reads served partially
}

// fedShard is one partition: its source, supervisor and warehouse.
type fedShard struct {
	id   int
	name string
	raw  SourceAPI
	src  *shardSource
	sup  *SourceSupervisor
	w    *Warehouse
}

// fedView is one federated view's bookkeeping: which shards host a
// member view. A spanning view is hosted on every shard; a rooted view
// on exactly one.
type fedView struct {
	name     string
	spanning bool
	hosts    []*fedShard
}

// FederationConfig tunes a Federation.
type FederationConfig struct {
	// Supervisor configures every per-source supervisor.
	Supervisor SupervisorConfig
	// Quorum is the minimum number of non-Down sources for Ready
	// (default: a majority, n/2+1).
	Quorum int
	// Partitioner, when set, routes cross-shard query backs: an object
	// a shard's maintenance needs but does not hold locally is fetched
	// from its owner shard. Without it every shard is assumed
	// self-contained (subtree-affinity partitioning).
	Partitioner *Partitioner
}

// MemberViewName names the per-shard member view of a federated view —
// the Integrator's <view>@<source> convention.
func MemberViewName(view, source string) string { return view + "@" + source }

// NewFederation builds a federation over the given sources, one shard
// per source in the given order (shard k serves partition k of the
// configured Partitioner).
func NewFederation(sources []SourceAPI, cfg FederationConfig) (*Federation, error) {
	if len(sources) == 0 {
		return nil, errors.New("warehouse: federation needs at least one source")
	}
	quorum := cfg.Quorum
	if quorum <= 0 {
		quorum = len(sources)/2 + 1
	}
	if quorum > len(sources) {
		return nil, fmt.Errorf("warehouse: quorum %d exceeds %d sources", quorum, len(sources))
	}
	f := &Federation{
		part:   cfg.Partitioner,
		quorum: quorum,
		byName: make(map[string]*fedShard, len(sources)),
		views:  make(map[string]*fedView),
		cross:  make(map[oem.OID]*oem.Object),
	}
	for k, raw := range sources {
		if _, dup := f.byName[raw.ID()]; dup {
			return nil, fmt.Errorf("warehouse: duplicate federated source %s", raw.ID())
		}
		sh := &fedShard{id: k, name: raw.ID(), raw: raw}
		sh.sup = NewSourceSupervisor(sh.name, cfg.Supervisor)
		sh.src = &shardSource{fed: f, shard: k, raw: raw, sup: sh.sup}
		sh.w = New(sh.src)
		sh.w.Node = sh.name
		sh.sup.onTrip = func() { f.quarantineShard(sh) }
		f.shards = append(f.shards, sh)
		f.byName[sh.name] = sh
	}
	return f, nil
}

// Shards returns the number of federated sources.
func (f *Federation) Shards() int { return len(f.shards) }

// Partitioner returns the OID placement function, nil when the
// federation was built without one.
func (f *Federation) Partitioner() *Partitioner { return f.part }

// SourceNames returns the federated source names in shard order.
func (f *Federation) SourceNames() []string {
	out := make([]string, len(f.shards))
	for i, sh := range f.shards {
		out[i] = sh.name
	}
	return out
}

// Warehouse returns the per-shard warehouse for a source — the escape
// hatch for inspecting one partition directly.
func (f *Federation) Warehouse(source string) (*Warehouse, bool) {
	sh, ok := f.byName[source]
	if !ok {
		return nil, false
	}
	return sh.w, true
}

// Supervisor returns the health supervisor for a source.
func (f *Federation) Supervisor(source string) (*SourceSupervisor, bool) {
	sh, ok := f.byName[source]
	if !ok {
		return nil, false
	}
	return sh.sup, true
}

// DefineView registers a federated view spanning every shard: the same
// simple query is defined as a member view on each per-shard warehouse,
// and Members unions the per-shard memberships.
func (f *Federation) DefineView(name string, q *query.Query, cfg ViewConfig) error {
	return f.define(name, q, cfg, f.shards, true)
}

// DefineViewAt registers a federated view rooted in one source's
// partition: only that shard hosts a member view, and a dead shard
// makes the view unavailable rather than partial.
func (f *Federation) DefineViewAt(name, source string, q *query.Query, cfg ViewConfig) error {
	sh, ok := f.byName[source]
	if !ok {
		return fmt.Errorf("warehouse: unknown federated source %s", source)
	}
	return f.define(name, q, cfg, []*fedShard{sh}, false)
}

func (f *Federation) define(name string, q *query.Query, cfg ViewConfig, hosts []*fedShard, spanning bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.views[name]; dup {
		return fmt.Errorf("%w: federated view %s", ErrViewExists, name)
	}
	for _, sh := range hosts {
		if _, err := sh.w.DefineView(MemberViewName(name, sh.name), q, cfg); err != nil {
			return err
		}
	}
	f.views[name] = &fedView{name: name, spanning: spanning, hosts: hosts}
	return nil
}

// ViewNames returns the federated view names, sorted.
func (f *Federation) ViewNames() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.views))
	for n := range f.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Members returns a federated view's membership: the union of the
// fresh per-shard member views, sorted and deduplicated. When some
// partitions cannot answer — source Down, member view quarantined —
// the healthy union is returned together with a *PartialResultError
// naming the missing sources (graceful degradation); when no partition
// answers, the first failure is returned alone.
func (f *Federation) Members(name string) ([]oem.OID, error) {
	f.mu.RLock()
	fv, ok := f.views[name]
	f.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: federated view %s", ErrViewNotFound, name)
	}
	seen := make(map[oem.OID]bool)
	var out []oem.OID
	var missing []string
	var cause error
	for _, sh := range fv.hosts {
		ms, err := sh.w.FreshMembers(MemberViewName(name, sh.name))
		if err != nil {
			missing = append(missing, sh.name)
			if cause == nil {
				cause = err
			}
			sh.sup.noteDegradedRead()
			continue
		}
		for _, m := range ms {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	if len(missing) == len(fv.hosts) {
		return nil, cause
	}
	out = oem.SortOIDs(out)
	if len(missing) > 0 {
		sort.Strings(missing)
		f.partialReads.Inc()
		return out, &PartialResultError{View: name, Missing: missing, Cause: cause}
	}
	return out, nil
}

// Query evaluates an ad-hoc query on every shard concurrently and
// unions the answers (each shard evaluates over its own partition; the
// Partitioner guarantees the per-shard answers union to the whole).
// Unreachable shards degrade the answer to a *PartialResultError; if
// no shard answers, the first failure is returned alone.
func (f *Federation) Query(q *query.Query) ([]*oem.Object, error) {
	type result struct {
		sh   *fedShard
		objs []*oem.Object
		err  error
	}
	ch := make(chan result, len(f.shards))
	for _, sh := range f.shards {
		go func(sh *fedShard) {
			objs, err := sh.src.FetchQuery(q)
			ch <- result{sh, objs, err}
		}(sh)
	}
	byOID := make(map[oem.OID]*oem.Object)
	var missing []string
	var cause error
	for range f.shards {
		r := <-ch
		if r.err != nil {
			missing = append(missing, r.sh.name)
			if cause == nil {
				cause = r.err
			}
			r.sh.sup.noteDegradedRead()
			continue
		}
		for _, o := range r.objs {
			byOID[o.OID] = o
		}
	}
	if len(missing) == len(f.shards) {
		return nil, cause
	}
	oids := make([]oem.OID, 0, len(byOID))
	for oid := range byOID {
		oids = append(oids, oid)
	}
	oids = oem.SortOIDs(oids)
	out := make([]*oem.Object, len(oids))
	for i, oid := range oids {
		out[i] = byOID[oid]
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		f.partialReads.Inc()
		return out, &PartialResultError{View: q.String(), Missing: missing, Cause: cause}
	}
	return out, nil
}

// QueryAt is Query's sequence-pinned variant: a spanning union read with
// each shard answering at its own pinned sequence number. at holds one
// seq per shard, in shard order (shards count independently — there is
// no federation-wide sequence); a zero entry, or len(at) shorter than
// the shard list, reads that shard's current state. Shards without
// pinned reads degrade to current state per fetchQueryAt.
func (f *Federation) QueryAt(q *query.Query, at []uint64) ([]*oem.Object, error) {
	type result struct {
		sh   *fedShard
		objs []*oem.Object
		err  error
	}
	ch := make(chan result, len(f.shards))
	for i, sh := range f.shards {
		var seq uint64
		if i < len(at) {
			seq = at[i]
		}
		go func(sh *fedShard, seq uint64) {
			objs, err := sh.src.FetchQueryAt(q, seq)
			ch <- result{sh, objs, err}
		}(sh, seq)
	}
	byOID := make(map[oem.OID]*oem.Object)
	var missing []string
	var cause error
	for range f.shards {
		r := <-ch
		if r.err != nil {
			missing = append(missing, r.sh.name)
			if cause == nil {
				cause = r.err
			}
			r.sh.sup.noteDegradedRead()
			continue
		}
		for _, o := range r.objs {
			byOID[o.OID] = o
		}
	}
	if len(missing) == len(f.shards) {
		return nil, cause
	}
	oids := make([]oem.OID, 0, len(byOID))
	for oid := range byOID {
		oids = append(oids, oid)
	}
	oids = oem.SortOIDs(oids)
	out := make([]*oem.Object, len(oids))
	for i, oid := range oids {
		out[i] = byOID[oid]
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		f.partialReads.Inc()
		return out, &PartialResultError{View: q.String(), Missing: missing, Cause: cause}
	}
	return out, nil
}

// Pump runs one maintenance round: every shard's pending reports are
// drained and batch-processed concurrently (per-source watermarks
// advance from the report origin stamps), then quarantined views are
// repaired per shard — against a Down source the repair's guarded
// FetchQuery doubles as the circuit breaker's half-open probe, so
// recovery and resync are one step. It returns the number of reports
// processed; per-shard failures are joined and never stop the other
// shards.
func (f *Federation) Pump() (int, error) {
	f.beginRound()
	var (
		mu    sync.Mutex
		total int
		errs  []error
		wg    sync.WaitGroup
	)
	for _, sh := range f.shards {
		wg.Add(1)
		go func(sh *fedShard) {
			defer wg.Done()
			// A dead report stream is a failure signal even when no query
			// traffic is flowing.
			if hs, ok := sh.raw.(interface{ StreamHealthy() bool }); ok && !hs.StreamHealthy() {
				sh.sup.signal(false)
			}
			if sh.sup.State() == SourceDown {
				// One cheap liveness call per cool-down window (Allow
				// admits it as the half-open probe); on success fall
				// through so the backlog drains this same round.
				f.probe(sh)
				if sh.sup.State() == SourceDown {
					return
				}
			}
			rs := sh.raw.DrainReports()
			if len(rs) == 0 {
				// A silent source is indistinguishable from a dead one
				// whose redial loop is still hoping: probe it so an outage
				// is detected even with no query traffic in flight.
				f.probe(sh)
				// The probe's answer carries the source's true sequence;
				// if the report stream has silently fallen behind it, the
				// tail of the stream was lost (an in-stream discontinuity
				// check can never see a dropped *final* report) and the
				// views must be quarantined for resync.
				if ts, ok := sh.raw.(interface{ CheckTail() }); ok {
					ts.CheckTail()
				}
			}
			for _, r := range rs {
				if r.Update.Origin > 0 {
					sh.sup.advanceWatermark(r.Update.Origin)
				}
			}
			err := sh.w.ProcessBatch(rs)
			mu.Lock()
			total += len(rs)
			if err != nil {
				errs = append(errs, fmt.Errorf("source %s: %w", sh.name, err))
			}
			mu.Unlock()
		}(sh)
	}
	wg.Wait()
	for _, sh := range f.shards {
		if len(sh.w.StaleViews()) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *fedShard) {
			defer wg.Done()
			if _, err := sh.w.RepairAll(); err != nil && !errors.Is(err, ErrSourceDown) {
				mu.Lock()
				errs = append(errs, fmt.Errorf("repairing source %s: %w", sh.name, err))
				mu.Unlock()
			}
		}(sh)
	}
	wg.Wait()
	return total, errors.Join(errs...)
}

// RepairAll resyncs every quarantined member view across all shards,
// returning how many came back Fresh and the first error.
func (f *Federation) RepairAll() (int, error) {
	var firstErr error
	repaired := 0
	f.beginRound()
	for _, sh := range f.shards {
		n, err := sh.w.RepairAll()
		repaired += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return repaired, firstErr
}

// StaleViews returns the quarantined member view names across all
// shards, sorted.
func (f *Federation) StaleViews() []string {
	var out []string
	for _, sh := range f.shards {
		out = append(out, sh.w.StaleViews()...)
	}
	sort.Strings(out)
	return out
}

// Ready answers the federation's readiness probe: nil while a quorum
// of sources is not Down, otherwise an error naming the down sources
// (the /readyz handler on a federated gsdbserve gates on this, not on
// every view being Fresh — losing a minority of partitions degrades,
// it does not unready the service).
func (f *Federation) Ready() error {
	var down []string
	for _, sh := range f.shards {
		if sh.sup.State() == SourceDown {
			down = append(down, sh.name)
		}
	}
	if up := len(f.shards) - len(down); up < f.quorum {
		sort.Strings(down)
		return fmt.Errorf("warehouse: federation below quorum: %d/%d sources up, need %d (down: %s)",
			up, len(f.shards), f.quorum, strings.Join(down, ", "))
	}
	return nil
}

// EnableObs registers every shard's warehouse and supervisor
// instruments plus the federation's own counters on reg. Per-shard
// series are distinguished by node/source/view labels (member view
// names embed the source).
func (f *Federation) EnableObs(reg *obs.Registry) {
	for _, sh := range f.shards {
		sh.w.EnableObs(reg)
		sh.sup.RegisterObs(reg)
		if ro, ok := sh.raw.(interface{ RegisterObs(*obs.Registry) }); ok {
			ro.RegisterObs(reg)
		}
	}
	reg.Help("gsv_federation_sources", "federated source count")
	reg.Help("gsv_federation_cross_fetches_total", "cross-shard query backs issued to owner shards")
	reg.Help("gsv_federation_cross_batched_total", "cross-shard fetches answered by the per-round memo")
	reg.Help("gsv_federation_partial_reads_total", "federated reads served with partitions missing")
	reg.GaugeFunc("gsv_federation_sources", func() float64 { return float64(len(f.shards)) })
	reg.RegisterCounter("gsv_federation_cross_fetches_total", &f.crossFetches)
	reg.RegisterCounter("gsv_federation_cross_batched_total", &f.crossBatched)
	reg.RegisterCounter("gsv_federation_partial_reads_total", &f.partialReads)
}

// CrossFetches returns how many cross-shard query backs were issued.
func (f *Federation) CrossFetches() uint64 { return f.crossFetches.Value() }

// CrossBatched returns how many cross-shard fetches the per-round memo
// absorbed.
func (f *Federation) CrossBatched() uint64 { return f.crossBatched.Value() }

// quarantineShard marks every member view hosted on the shard Stale —
// the breaker tripped, so the partition's membership can no longer be
// trusted to track its source.
func (f *Federation) quarantineShard(sh *fedShard) {
	reason := fmt.Sprintf("source %s down (circuit breaker open)", sh.name)
	for _, name := range sh.w.ViewNames() {
		_ = sh.w.Quarantine(name, reason)
	}
}

// beginRound resets the cross-shard fetch memo: batching is per
// maintenance round, not forever (the owner's object may change
// between rounds).
func (f *Federation) beginRound() {
	f.crossMu.Lock()
	f.cross = make(map[oem.OID]*oem.Object)
	f.crossMu.Unlock()
}

// crossFetch fetches a foreign-owned object from its owner shard,
// memoized for the current maintenance round.
func (f *Federation) crossFetch(oid oem.OID, owner int) (*oem.Object, error) {
	f.crossMu.Lock()
	if o, ok := f.cross[oid]; ok {
		f.crossMu.Unlock()
		f.crossBatched.Inc()
		return o, nil
	}
	f.crossMu.Unlock()
	sh := f.shards[owner]
	var o *oem.Object
	err := sh.src.guard(func() error {
		var e error
		o, e = sh.raw.FetchObject(oid)
		return e
	})
	if err != nil {
		return nil, err
	}
	f.crossFetches.Inc()
	f.crossMu.Lock()
	f.cross[oid] = o
	f.crossMu.Unlock()
	return o, nil
}

// livenessProber is the optional cheap health check a source can offer;
// RemoteSource implements it with the "shard" handshake.
type livenessProber interface {
	FetchShardInfo() (*ShardPayload, error)
}

// probe issues one guarded liveness call against the shard. Remote
// sources answer the shard handshake (an old server answering
// "unknown op" still proves liveness); in-process sources cannot die
// independently and are skipped. The supervisor's Allow gate makes this
// the half-open probe while the breaker is open, and a cheap heartbeat
// when the source has simply gone quiet.
func (f *Federation) probe(sh *fedShard) {
	lp, ok := sh.raw.(livenessProber)
	if !ok {
		return
	}
	_ = sh.src.guard(func() error {
		_, err := lp.FetchShardInfo()
		if errors.Is(err, ErrUnsupportedRequest) {
			return nil
		}
		return err
	})
}

// shardSource guards one shard's SourceAPI with its supervisor: every
// query op asks Allow first (failing fast with ErrSourceDown while the
// breaker is open) and feeds its outcome back through Record. A
// FetchObject miss for an OID the Partitioner places on another shard
// is routed to the owner (the cross-shard query back).
type shardSource struct {
	fed   *Federation
	shard int
	raw   SourceAPI
	sup   *SourceSupervisor
}

var _ SourceAPI = (*shardSource)(nil)

func (s *shardSource) guard(op func() error) error {
	if err := s.sup.Allow(); err != nil {
		return err
	}
	err := op()
	s.sup.Record(err)
	return err
}

// ID implements SourceAPI.
func (s *shardSource) ID() string { return s.raw.ID() }

// DrainReports implements SourceAPI; draining is a local buffer
// operation and is never gated.
func (s *shardSource) DrainReports() []*UpdateReport { return s.raw.DrainReports() }

// TransportRef implements SourceAPI.
func (s *shardSource) TransportRef() *Transport { return s.raw.TransportRef() }

// LastKnownSeq implements SourceAPI.
func (s *shardSource) LastKnownSeq() uint64 { return s.raw.LastKnownSeq() }

// TakeGap forwards report-stream gap detection so per-shard warehouses
// quarantine on lost reports (staleness.go absorbSourceGap).
func (s *shardSource) TakeGap() (uint64, bool) {
	if gs, ok := s.raw.(gapSource); ok {
		return gs.TakeGap()
	}
	return 0, false
}

// FetchObject implements SourceAPI with cross-shard routing: a local
// failure for an OID owned elsewhere falls through to the owner shard,
// memoized per maintenance round.
func (s *shardSource) FetchObject(oid oem.OID) (*oem.Object, error) {
	var o *oem.Object
	err := s.guard(func() error {
		var e error
		o, e = s.raw.FetchObject(oid)
		return e
	})
	if err == nil {
		return o, nil
	}
	if s.fed != nil && s.fed.part != nil {
		if owner := s.fed.part.Owner(oid); owner != s.shard && owner < len(s.fed.shards) {
			if co, cerr := s.fed.crossFetch(oid, owner); cerr == nil {
				return co, nil
			}
		}
	}
	return nil, err
}

// FetchPath implements SourceAPI.
func (s *shardSource) FetchPath(n oem.OID) (pi *PathInfo, ok bool, err error) {
	err = s.guard(func() error {
		var e error
		pi, ok, e = s.raw.FetchPath(n)
		return e
	})
	return pi, ok, err
}

// FetchAncestor implements SourceAPI.
func (s *shardSource) FetchAncestor(n oem.OID, p pathexpr.Path) (a oem.OID, ok bool, err error) {
	err = s.guard(func() error {
		var e error
		a, ok, e = s.raw.FetchAncestor(n, p)
		return e
	})
	return a, ok, err
}

// FetchEval implements SourceAPI.
func (s *shardSource) FetchEval(n oem.OID, p pathexpr.Path) (objs []*oem.Object, err error) {
	err = s.guard(func() error {
		var e error
		objs, e = s.raw.FetchEval(n, p)
		return e
	})
	return objs, err
}

// FetchSubtree implements SourceAPI.
func (s *shardSource) FetchSubtree(n oem.OID, depth int) (objs []*oem.Object, err error) {
	err = s.guard(func() error {
		var e error
		objs, e = s.raw.FetchSubtree(n, depth)
		return e
	})
	return objs, err
}

// FetchQuery implements SourceAPI.
func (s *shardSource) FetchQuery(q *query.Query) (objs []*oem.Object, err error) {
	err = s.guard(func() error {
		var e error
		objs, e = s.raw.FetchQuery(q)
		return e
	})
	return objs, err
}

// FetchQueryAt implements SeqQuerier against this shard's own sequence
// numbers (each shard store counts independently; a federation-wide
// pinned read passes one seq per shard — Federation.QueryAt).
func (s *shardSource) FetchQueryAt(q *query.Query, at uint64) (objs []*oem.Object, err error) {
	err = s.guard(func() error {
		var e error
		objs, e = fetchQueryAt(s.raw, q, at)
		return e
	})
	return objs, err
}

// NewLocalFederation partitions base across n in-process sources named
// source0..source<n-1> (subtree-affinity placement, root anchoring each
// shard's path computations) and federates them — the single-process
// topology E15 and the federation tests run, and what gsdbserve
// -sources builds behind its listeners. It returns the federation and
// the per-shard stores (mutate those to drive updates).
func NewLocalFederation(base *store.Store, root oem.OID, n int, cfg FederationConfig) (*Federation, []*store.Store, error) {
	p := cfg.Partitioner
	if p == nil {
		p = NewPartitioner(n)
		cfg.Partitioner = p
	}
	stores, err := PartitionStore(base, p, PartitionConfig{Affinity: true})
	if err != nil {
		return nil, nil, err
	}
	srcs := make([]SourceAPI, len(stores))
	for k, st := range stores {
		srcs[k] = NewSource(fmt.Sprintf("source%d", k), st, root, Level3, NewTransport(0))
	}
	fed, err := NewFederation(srcs, cfg)
	if err != nil {
		return nil, nil, err
	}
	return fed, stores, nil
}
