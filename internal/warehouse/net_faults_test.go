package warehouse

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"testing"
	"time"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
)

// fastOptions are DialOptions tuned for tests: real retries and redial
// but with millisecond backoffs so failures resolve quickly.
func fastOptions() DialOptions {
	return DialOptions{
		IOTimeout: 2 * time.Second,
		Retry: RetryPolicy{
			MaxAttempts: 10, BaseDelay: time.Millisecond,
			MaxDelay: 20 * time.Millisecond, Multiplier: 2, Jitter: 0.2,
		},
		Redial: RetryPolicy{
			MaxAttempts: 500, BaseDelay: time.Millisecond,
			MaxDelay: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.2,
		},
		Seed: 7,
	}
}

// restartServer rebinds addr (retrying through TIME_WAIT) and serves src
// on a fresh Server.
func restartServer(t *testing.T, src *Source, addr string) *Server {
	t.Helper()
	var ln net.Listener
	var err error
	for try := 0; ; try++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if try > 100 {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	server := NewServer(src)
	go func() { _ = server.Serve(ln) }()
	t.Cleanup(server.Close)
	return server
}

// TestNetQuerySurvivesServerRestart is the "one failure must not poison
// the connection" regression test: a fetch that dies mid-exchange (the
// server went away) is retried on a fresh connection, and after the
// server returns, the same RemoteSource keeps answering — no desynced
// encoder/decoder, no manual re-dial.
func TestNetQuerySurvivesServerRestart(t *testing.T) {
	s := store.NewDefault()
	s.MustPut(oem.NewAtom("A1", "age", oem.Int(45)))
	src := NewSource("persons", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	server := NewServer(src)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go func() { _ = server.Serve(ln) }()

	remote, err := DialWithOptions("persons", addr, NewTransport(0), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if _, err := remote.FetchObject("A1"); err != nil {
		t.Fatalf("fetch before restart: %v", err)
	}

	server.Close()
	restartServer(t, src, addr)

	// The query connection is dead; the retry loop must redial and
	// answer this from the restarted server.
	o, err := remote.FetchObject("A1")
	if err != nil {
		t.Fatalf("fetch after restart: %v", err)
	}
	if o.Label != "age" {
		t.Fatalf("fetched %v", o)
	}
	ws := remote.WireStats()
	if ws.QueryReconnects == 0 {
		t.Fatalf("no query reconnect recorded: %+v", ws)
	}
}

// TestNetReportStreamReconnectRecordsGap: a server restart while the
// report stream is up must (a) redial the stream automatically and (b)
// flag the outage as a gap — broadcasts during the outage are
// unrecoverable.
func TestNetReportStreamReconnectRecordsGap(t *testing.T) {
	s := store.NewDefault()
	s.MustPut(oem.NewSet("ROOT", "root"))
	src := NewSource("persons", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	server := NewServer(src)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go func() { _ = server.Serve(ln) }()

	remote, err := DialWithOptions("persons", addr, NewTransport(0), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// One report through the first server incarnation.
	s.MustPut(oem.NewAtom("X1", "x", oem.Int(1)))
	if err := server.Broadcast(src.DrainReports()); err != nil {
		t.Fatal(err)
	}
	if got, ok := remote.WaitReportsTimeout(1, 5*time.Second); !ok {
		t.Fatalf("first report missing: %v", got)
	}

	server.Close()
	// Updates while down: their reports are lost.
	s.MustPut(oem.NewAtom("X2", "x", oem.Int(2)))
	src.DrainReports()
	server2 := restartServer(t, src, addr)

	// Wait for the client to re-register, then broadcast through the new
	// incarnation.
	deadline := time.Now().Add(10 * time.Second)
	for remote.WireStats().ReportReconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("report stream never reconnected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.MustPut(oem.NewAtom("X3", "x", oem.Int(3)))
	if err := server2.Broadcast(src.DrainReports()); err != nil {
		t.Fatal(err)
	}
	if _, ok := remote.WaitReportsTimeout(1, 5*time.Second); !ok {
		t.Fatal("report after reconnect missing")
	}
	if seq, gapped := remote.TakeGap(); !gapped {
		t.Fatal("no gap recorded across restart")
	} else if seq == 0 {
		t.Fatal("gap recorded with zero last-seq")
	}
	// The gap is consumed exactly once.
	if _, gapped := remote.TakeGap(); gapped {
		t.Fatal("gap not cleared by TakeGap")
	}
}

// TestWaitReportsTimeoutExpires: the timeout variant returns (empty,
// false) instead of blocking forever when no reports arrive.
func TestWaitReportsTimeoutExpires(t *testing.T) {
	_, _, remote := startNetSource(t, Level2)
	start := time.Now()
	got, ok := remote.WaitReportsTimeout(1, 50*time.Millisecond)
	if ok || len(got) != 0 {
		t.Fatalf("WaitReportsTimeout = %v, %v", got, ok)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// fakeReportServer speaks just enough of the protocol to feed the client
// hand-crafted report frames: it accepts the query connection silently
// and serves the given raw lines on the reports connection.
func fakeReportServer(t *testing.T, lines [][]byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				br := bufio.NewReader(conn)
				mode, err := br.ReadString('\n')
				if err != nil {
					conn.Close()
					return
				}
				if mode != "reports\n" {
					// Hold the query connection open, answering nothing.
					_, _ = io.Copy(io.Discard, br)
					conn.Close()
					return
				}
				_, _ = io.WriteString(conn, "ready\n")
				for _, l := range lines {
					_, _ = conn.Write(append(l, '\n'))
				}
				// Keep the stream open so the client does not redial.
				buf := make([]byte, 1)
				_, _ = conn.Read(buf)
				conn.Close()
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestNetBadReportFramesCounted: malformed report frames are skipped but
// counted, with the last decode error retained — they are no longer
// silently dropped.
func TestNetBadReportFramesCounted(t *testing.T) {
	good, err := json.Marshal(&UpdateReport{
		Source: "persons", Level: Level2,
		Update: store.Update{Seq: 1, Kind: store.UpdateModify, N1: "A1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := fakeReportServer(t, [][]byte{
		[]byte("this is not json"),
		[]byte(`{"truncated":`),
		good,
	})
	remote, err := DialWithOptions("persons", addr, NewTransport(0), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	reports, ok := remote.WaitReportsTimeout(1, 5*time.Second)
	if !ok || len(reports) != 1 || reports[0].Update.Seq != 1 {
		t.Fatalf("reports = %v, ok=%v", reports, ok)
	}
	ws := remote.WireStats()
	if ws.BadFrames != 2 {
		t.Fatalf("bad frames = %d, want 2", ws.BadFrames)
	}
	if ws.LastDecodeErr == "" {
		t.Fatal("last decode error not retained")
	}
}

// TestCheckTailFlagsLostTrailingReport: the in-stream discontinuity
// check can never see a dropped *final* report — no later report
// arrives to reveal the jump. CheckTail closes that hole by comparing
// the stream position against the sequence query responses prove the
// source reached, with one check of grace for frames still in flight.
func TestCheckTailFlagsLostTrailingReport(t *testing.T) {
	src, server, remote := startNetSource(t, Level2)

	// Establish a stream position.
	reports, err := src.Modify("A1", oem.Int(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Broadcast(reports); err != nil {
		t.Fatal(err)
	}
	if _, ok := remote.WaitReportsTimeout(1, 5*time.Second); !ok {
		t.Fatal("first report missing")
	}

	// A delayed (not lost) frame must not flag: raise suspicion, then
	// let the report arrive before the confirming check.
	if reports, err = src.Modify("A1", oem.Int(40)); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.FetchObject("P1"); err != nil { // lastSeq runs ahead
		t.Fatal(err)
	}
	remote.CheckTail()
	if err := server.Broadcast(reports); err != nil {
		t.Fatal(err)
	}
	if _, ok := remote.WaitReportsTimeout(1, 5*time.Second); !ok {
		t.Fatal("delayed report missing")
	}
	remote.CheckTail()
	if _, gapped := remote.TakeGap(); gapped {
		t.Fatal("gap flagged for a frame that was merely delayed")
	}

	// Now actually lose the trailing report.
	if _, err := src.Modify("A1", oem.Int(45)); err != nil {
		t.Fatal(err)
	}
	src.DrainReports() // never broadcast: the frame is dropped
	if _, err := remote.FetchObject("P1"); err != nil {
		t.Fatal(err)
	}
	remote.CheckTail() // suspicion
	if _, gapped := remote.TakeGap(); gapped {
		t.Fatal("gap flagged without the grace check")
	}
	remote.CheckTail() // confirmation
	seq, gapped := remote.TakeGap()
	if !gapped {
		t.Fatal("lost trailing report not flagged as a gap")
	}
	if seq == 0 {
		t.Fatal("tail gap recorded with zero last-seq")
	}
	if remote.wire.Gaps.Value() == 0 {
		t.Fatal("tail gap not counted in gsv_remote_gaps_total")
	}
	// The report cursor jumped forward, so the same lost tail is not
	// re-flagged forever.
	remote.CheckTail()
	remote.CheckTail()
	if _, gapped := remote.TakeGap(); gapped {
		t.Fatal("same lost tail flagged twice")
	}
}

// TestWarehouseQuarantinesLostTrailingReport drills the full repair
// path the shard soak depends on: a view silently missing the last
// update (its report was dropped in flight) must go Stale once the
// tail check fires — even on an empty maintenance round — and a resync
// must restore the true membership.
func TestWarehouseQuarantinesLostTrailingReport(t *testing.T) {
	src, server, remote := startNetSource(t, Level2)
	w := New(remote)
	v, err := w.DefineView("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"),
		ViewConfig{Screening: true})
	if err != nil {
		t.Fatal(err)
	}

	// One maintained round so the stream has a position: P1 leaves.
	reports, err := src.Modify("A1", oem.Int(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Broadcast(reports); err != nil {
		t.Fatal(err)
	}
	got, ok := remote.WaitReportsTimeout(len(reports), 5*time.Second)
	if !ok {
		t.Fatal("report missing")
	}
	if err := w.ProcessBatch(got); err != nil {
		t.Fatal(err)
	}
	if members, _ := v.MV.Members(); len(members) != 0 {
		t.Fatalf("after modify = %v", members)
	}

	// P1 rejoins, but the report is lost in flight: the view is wrong
	// and Fresh — the silent miss.
	if _, err := src.Modify("A1", oem.Int(45)); err != nil {
		t.Fatal(err)
	}
	src.DrainReports()
	if members, _ := v.MV.Members(); len(members) != 0 {
		t.Fatalf("view saw the dropped report? %v", members)
	}

	// Quiet maintenance rounds: a probe teaches the client the true
	// sequence, the tail check confirms the loss, and even an empty
	// batch must absorb the gap into staleness.
	for i := 0; i < 2 && len(w.StaleViews()) == 0; i++ {
		if _, err := remote.FetchObject("P1"); err != nil {
			t.Fatal(err)
		}
		remote.CheckTail()
		if err := w.ProcessBatch(remote.DrainReports()); err != nil {
			t.Fatal(err)
		}
	}
	if stale := w.StaleViews(); len(stale) != 1 || stale[0] != "YP" {
		t.Fatalf("StaleViews = %v, want [YP]", stale)
	}
	if n, err := w.RepairAll(); err != nil || n != 1 {
		t.Fatalf("RepairAll = %d, %v", n, err)
	}
	if members, _ := v.MV.Members(); !oem.SameMembers(members, []oem.OID{"P1"}) {
		t.Fatalf("after repair = %v, want [P1]", members)
	}
}
