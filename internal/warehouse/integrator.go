package warehouse

import (
	"errors"
	"fmt"

	"gsv/internal/oem"
	"gsv/internal/query"
)

// Integrator is the component of Figure 6 that sits between the sources
// and the warehouse views: it owns one Warehouse per source, routes each
// update report to the right one by source name, and exposes cross-source
// *union views* — the same view shape defined over several sources, whose
// combined membership is the union of the per-source memberships (the
// paper's union(S1,S2) applied across sites).
type Integrator struct {
	sources    map[string]SourceAPI
	warehouses map[string]*Warehouse
	// unions maps a union view name to its per-source member view names.
	unions map[string][]unionPart
}

type unionPart struct {
	source string
	view   string
}

// NewIntegrator returns an empty integrator.
func NewIntegrator() *Integrator {
	return &Integrator{
		sources:    map[string]SourceAPI{},
		warehouses: map[string]*Warehouse{},
		unions:     map[string][]unionPart{},
	}
}

// AddSource registers a source and creates its warehouse.
func (i *Integrator) AddSource(src SourceAPI) (*Warehouse, error) {
	if _, ok := i.sources[src.ID()]; ok {
		return nil, fmt.Errorf("warehouse: source %s already added", src.ID())
	}
	w := New(src)
	i.sources[src.ID()] = src
	i.warehouses[src.ID()] = w
	return w, nil
}

// Warehouse returns the warehouse for a source.
func (i *Integrator) Warehouse(source string) (*Warehouse, bool) {
	w, ok := i.warehouses[source]
	return w, ok
}

// DefineView defines a simple view over one source.
func (i *Integrator) DefineView(source, name string, q *query.Query, cfg ViewConfig) (*WView, error) {
	w, ok := i.warehouses[source]
	if !ok {
		return nil, fmt.Errorf("warehouse: unknown source %s", source)
	}
	return w.DefineView(name, q, cfg)
}

// DefineUnionView defines the same view query over every listed source and
// registers their union under the given name. The per-source member views
// are named <name>@<source>.
func (i *Integrator) DefineUnionView(name string, q *query.Query, cfg ViewConfig, sources ...string) error {
	if _, ok := i.unions[name]; ok {
		return fmt.Errorf("warehouse: union view %s already defined", name)
	}
	var parts []unionPart
	for _, src := range sources {
		member := fmt.Sprintf("%s@%s", name, src)
		if _, err := i.DefineView(src, member, q, cfg); err != nil {
			return err
		}
		parts = append(parts, unionPart{source: src, view: member})
	}
	i.unions[name] = parts
	return nil
}

// UnionMembers returns the combined membership of a union view, sorted and
// deduplicated (universally unique OIDs make cross-source duplicates
// impossible unless sources genuinely replicate an object — the paper
// notes unique OIDs "can be helpful in eliminating duplicates").
func (i *Integrator) UnionMembers(name string) ([]oem.OID, error) {
	parts, ok := i.unions[name]
	if !ok {
		return nil, fmt.Errorf("warehouse: union view %s not defined", name)
	}
	seen := map[oem.OID]bool{}
	var out []oem.OID
	for _, p := range parts {
		w := i.warehouses[p.source]
		v, ok := w.View(p.view)
		if !ok {
			return nil, fmt.Errorf("warehouse: union member %s missing", p.view)
		}
		ms, err := v.MV.Members()
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	return oem.SortOIDs(out), nil
}

// ProcessReport routes one report to its source's warehouse.
func (i *Integrator) ProcessReport(r *UpdateReport) error {
	w, ok := i.warehouses[r.Source]
	if !ok {
		return fmt.Errorf("warehouse: report from unknown source %s", r.Source)
	}
	return w.ProcessReport(r)
}

// Pump drains every source's pending reports and processes each source's
// drain as one batch through its warehouse's scheduler (group commit:
// one coalesced changefeed event per view per pump). It returns the
// number of reports processed; per-source failures are joined, and a
// failing source does not stop the others — its views are quarantined by
// the staleness machinery instead.
func (i *Integrator) Pump() (int, error) {
	n := 0
	var errs []error
	for _, name := range i.sourceNames() {
		w := i.warehouses[name]
		rs := i.sources[name].DrainReports()
		n += len(rs)
		if err := w.ProcessBatch(rs); err != nil {
			errs = append(errs, err)
		}
	}
	return n, errors.Join(errs...)
}

func (i *Integrator) sourceNames() []string {
	out := make([]string, 0, len(i.sources))
	for n := range i.sources {
		out = append(out, n)
	}
	// Deterministic routing order.
	for a := 1; a < len(out); a++ {
		for b := a; b > 0 && out[b-1] > out[b]; b-- {
			out[b-1], out[b] = out[b], out[b-1]
		}
	}
	return out
}
