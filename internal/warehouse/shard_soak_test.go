package warehouse

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"gsv/internal/faults"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// TestShardChaosSoak is the federation's fault drill (CI's shard-chaos
// job, under -race): a 4-shard federation maintains spanning views over
// the wire while every connection injects seeded faults and one source
// server is killed mid-workload. The claims under test:
//
//   - the dead source trips its circuit breaker and only the member
//     views on its partition are quarantined — views on the three
//     healthy partitions stay Fresh and keep serving reads,
//   - spanning reads degrade to the healthy union plus a typed
//     *PartialResultError naming exactly the missing partition,
//   - the federation stays Ready at 3/4 sources (quorum 3),
//   - after the source restarts on the same address, repair re-admits
//     it through the half-open probe and converges every view
//     byte-identically to the all-healthy oracle.
func TestShardChaosSoak(t *testing.T) {
	const nShards = 4
	base, db := relationBase(t, 2, 8)
	p := NewPartitioner(nShards)
	stores, err := PartitionStore(base, p, PartitionConfig{Affinity: true})
	if err != nil {
		t.Fatal(err)
	}

	// One Source+Server per shard behind a fault injector, one
	// RemoteSource per shard with aggressive test retry policies.
	srcs := make([]*Source, nShards)
	servers := make([]*Server, nShards)
	injs := make([]*faults.Injector, nShards)
	addrs := make([]string, nShards)
	remotes := make([]SourceAPI, nShards)
	shardInfo := func(k int) func() *ShardPayload {
		return func() *ShardPayload {
			return &ShardPayload{
				Source: srcs[k].ID(), Shard: k, Shards: nShards,
				Seq: srcs[k].Store.Seq(),
			}
		}
	}
	for k := 0; k < nShards; k++ {
		srcs[k] = NewSource(fmt.Sprintf("source%d", k), stores[k], db.Root, Level3, NewTransport(0))
		srcs[k].DrainReports()
		injs[k] = faults.New(faults.Config{
			Seed:      int64(100 + k),
			DropProb:  0.01,
			ErrProb:   0.03,
			DelayProb: 0.05,
			Delay:     200 * time.Microsecond,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[k] = ln.Addr().String()
		servers[k] = NewServer(srcs[k])
		servers[k].ShardInfo = shardInfo(k)
		srv := servers[k]
		go func() { _ = srv.Serve(injs[k].WrapListener(ln)) }()

		remote, err := DialWithOptions(srcs[k].ID(), addrs[k], NewTransport(0), DialOptions{
			IOTimeout: 2 * time.Second,
			Retry: RetryPolicy{
				MaxAttempts: 10, BaseDelay: time.Millisecond,
				MaxDelay: 20 * time.Millisecond, Multiplier: 2, Jitter: 0.2,
			},
			Redial: RetryPolicy{
				MaxAttempts: 5000, BaseDelay: time.Millisecond,
				MaxDelay: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.2,
			},
			Seed: int64(7 + k),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { remote.Close() })
		remotes[k] = remote
	}
	t.Cleanup(func() {
		for _, srv := range servers {
			srv.Close()
		}
	})

	fed, err := NewFederation(remotes, FederationConfig{
		Supervisor:  SupervisorConfig{TripThreshold: 3, CoolDown: 50 * time.Millisecond},
		Quorum:      3,
		Partitioner: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	q1 := query.MustParse("SELECT REL.r0.tuple X WHERE X.age > 40")
	q2 := query.MustParse("SELECT REL.r1.tuple X WHERE X.age <= 60")
	if err := fed.DefineView("SPAN", q1, ViewConfig{Cache: CacheFull, Screening: true}); err != nil {
		t.Fatal(err)
	}
	if err := fed.DefineView("SPAN2", q2, ViewConfig{Cache: CacheNone}); err != nil {
		t.Fatal(err)
	}
	if err := fed.DefineViewAt("rooted0", "source0", q1, ViewConfig{Cache: CacheFull}); err != nil {
		t.Fatal(err)
	}

	// Per-shard update streams over each shard's owned tuples (interior
	// relation sets are replicated; mutating them on one shard keeps
	// that membership shard-local, exactly the ownership model).
	streams := make([]*workload.Stream, nShards)
	for k := 0; k < nShards; k++ {
		var sets, atoms []oem.OID
		for _, r := range db.Relations {
			sets = append(sets, r.OID)
			for _, tu := range r.Tuples {
				if !stores[k].Has(tu) {
					continue
				}
				sets = append(sets, tu)
				kids, _ := stores[k].Children(tu)
				atoms = append(atoms, kids...)
			}
		}
		streams[k] = workload.NewStream(stores[k], workload.StreamConfig{
			Seed: int64(23 + k), Mix: workload.Mix{Insert: 2, Delete: 1, Modify: 7}, ValueRange: 90,
		}, sets, atoms)
	}
	// step applies one update at every shard's store and broadcasts the
	// reports through whatever server is currently alive (a closed
	// server drops them — the client must detect that as a gap).
	step := func() {
		for k := 0; k < nShards; k++ {
			if _, ok := streams[k].Next(); !ok {
				t.Fatalf("stream %d exhausted", k)
			}
			if err := servers[k].Broadcast(srcs[k].DrainReports()); err != nil {
				t.Fatalf("broadcast %d: %v", k, err)
			}
		}
	}
	// quiesce pumps until cond holds (the async report tail drains
	// round by round) or the deadline passes.
	quiesce := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			_, _ = fed.Pump()
			if cond() {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; stale=%v", what, fed.StaleViews())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	sameAs := func(name string, want []oem.OID) bool {
		got, err := fed.Members(name)
		return err == nil && oem.SameMembers(got, want)
	}

	// Phase 1: all-healthy workload; the federation must track the
	// oracle through the faults.
	for i := 0; i < 30; i++ {
		step()
		_, _ = fed.Pump()
	}
	quiesce("all-healthy convergence", func() bool {
		return len(fed.StaleViews()) == 0 &&
			sameAs("SPAN", fedOracle(t, stores, q1)) &&
			sameAs("SPAN2", fedOracle(t, stores, q2))
	})

	// Phase 2: kill source1's server mid-workload. Updates keep flowing
	// at every store; the dead shard's broadcasts are lost for good.
	const dead = 1
	servers[dead].Close()
	for i := 0; i < 10; i++ {
		step()
		_, _ = fed.Pump()
	}
	sup, _ := fed.Supervisor("source1")

	healthyStores := make([]*store.Store, 0, nShards-1)
	for k, st := range stores {
		if k != dead {
			healthyStores = append(healthyStores, st)
		}
	}
	partialOK := func(name string, q *query.Query) bool {
		got, err := fed.Members(name)
		var pe *PartialResultError
		if !errors.Is(err, ErrPartialResult) || !errors.As(err, &pe) {
			return false
		}
		if len(pe.Missing) != 1 || pe.Missing[0] != "source1" {
			t.Fatalf("partial %s missing = %v, want [source1]", name, pe.Missing)
		}
		return oem.SameMembers(got, fedOracle(t, healthyStores, q))
	}
	quiesce("breaker trip and degraded reads", func() bool {
		return sup.State() == SourceDown &&
			partialOK("SPAN", q1) && partialOK("SPAN2", q2) &&
			sameAs("rooted0", fedOracle(t, []*store.Store{stores[0]}, q1))
	})
	if sup.Trips() == 0 {
		t.Fatalf("supervisor trips = %d, want > 0", sup.Trips())
	}
	if sup.DegradedReads() == 0 {
		t.Fatal("no degraded reads recorded")
	}
	// Only source1's member views are quarantined.
	for _, name := range fed.StaleViews() {
		if name != MemberViewName("SPAN", "source1") && name != MemberViewName("SPAN2", "source1") {
			t.Fatalf("healthy-partition view %s went stale", name)
		}
	}
	// An ad-hoc federated query degrades the same way.
	if _, err := fed.Query(q1); !errors.Is(err, ErrPartialResult) {
		t.Fatalf("federated query error = %v, want ErrPartialResult", err)
	}
	// 3/4 sources up meets quorum 3.
	if err := fed.Ready(); err != nil {
		t.Fatalf("federation not ready at 3/4 sources: %v", err)
	}

	// Phase 3: restart source1 on the same address behind the same
	// injector and keep the workload running.
	var ln2 net.Listener
	for try := 0; ; try++ {
		ln2, err = net.Listen("tcp", addrs[dead])
		if err == nil {
			break
		}
		if try > 100 {
			t.Fatalf("rebinding %s: %v", addrs[dead], err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	servers[dead] = NewServer(srcs[dead])
	servers[dead].ShardInfo = shardInfo(dead)
	srv := servers[dead]
	go func() { _ = srv.Serve(injs[dead].WrapListener(ln2)) }()

	for i := 0; i < 30; i++ {
		step()
		_, _ = fed.Pump()
	}

	// Phase 4: quiesce to the all-healthy oracle, byte-identically.
	quiesce("post-restart convergence", func() bool {
		if sup.State() != SourceUp || len(fed.StaleViews()) != 0 {
			return false
		}
		return sameAs("SPAN", fedOracle(t, stores, q1)) &&
			sameAs("SPAN2", fedOracle(t, stores, q2)) &&
			sameAs("rooted0", fedOracle(t, []*store.Store{stores[0]}, q1))
	})
	if err := fed.Ready(); err != nil {
		t.Fatalf("federation not ready after recovery: %v", err)
	}
	// Recovery can only have happened through an admitted half-open
	// probe (a liveness call or a repair query-back).
	if sup.Probes() == 0 {
		t.Fatal("breaker closed without a half-open probe")
	}
}
