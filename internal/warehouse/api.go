package warehouse

import (
	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
)

// SourceAPI is the warehouse's entire view of a data source: the Example 9
// query interface plus the report stream and cost accounting. *Source
// implements it in-process; RemoteSource implements it over TCP (see
// net.go), so the same Warehouse runs centralized, simulated-distributed
// and genuinely distributed.
type SourceAPI interface {
	// ID names the source; update reports carry it for routing.
	ID() string
	// DrainReports returns the update reports accumulated since the last
	// drain, in order.
	DrainReports() []*UpdateReport

	// FetchObject retrieves one object.
	FetchObject(oid oem.OID) (*oem.Object, error)
	// FetchPath answers path(ROOT, n) with the OIDs along it.
	FetchPath(n oem.OID) (*PathInfo, bool, error)
	// FetchAncestor answers ancestor(n, p).
	FetchAncestor(n oem.OID, p pathexpr.Path) (oem.OID, bool, error)
	// FetchEval returns the objects in n.p with their values.
	FetchEval(n oem.OID, p pathexpr.Path) ([]*oem.Object, error)
	// FetchSubtree ships the objects within depth hops of n.
	FetchSubtree(n oem.OID, depth int) ([]*oem.Object, error)
	// FetchQuery evaluates a full view query at the source.
	FetchQuery(q *query.Query) ([]*oem.Object, error)

	// TransportRef exposes the cost counters all traffic is charged to.
	TransportRef() *Transport
	// LastKnownSeq is the highest source sequence number observed — the
	// store's own counter in-process, the highest seq seen in reports and
	// responses over the network. Interference detection compares it with
	// the report being processed.
	LastKnownSeq() uint64
}

// SeqQuerier is the optional snapshot-read extension of SourceAPI: a
// source that can evaluate a view query against its state pinned at an
// exact sequence number (the MVCC read path, docs/MVCC.md). It is a side
// interface rather than a SourceAPI method so old sources — and wrappers
// around them — keep compiling; callers probe with a type assertion via
// fetchQueryAt. at == 0 means "current state".
type SeqQuerier interface {
	FetchQueryAt(q *query.Query, at uint64) ([]*oem.Object, error)
}

// fetchQueryAt answers q at sequence number at when the source supports
// pinned reads, and from the current state otherwise. The current state
// reflects every update <= at plus possibly more, so treating `at` as the
// replay bound stays correct either way — only conservative without the
// extension (racing reports replay and converge, Section 5.1).
func fetchQueryAt(src SourceAPI, q *query.Query, at uint64) ([]*oem.Object, error) {
	if sq, ok := src.(SeqQuerier); ok && at > 0 {
		return sq.FetchQueryAt(q, at)
	}
	return src.FetchQuery(q)
}

// ID implements SourceAPI.
func (s *Source) ID() string { return s.Name }

// TransportRef implements SourceAPI.
func (s *Source) TransportRef() *Transport { return s.Transport }

// LastKnownSeq implements SourceAPI.
func (s *Source) LastKnownSeq() uint64 { return s.Store.Seq() }

var _ SourceAPI = (*Source)(nil)
