package warehouse

import (
	"fmt"
	"net"
	"testing"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// startNetSource serves a PERSON source on a loopback listener and returns
// a connected RemoteSource plus the server-side Source.
func startNetSource(t *testing.T, level ReportLevel) (*Source, *Server, *RemoteSource) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	srcTr := NewTransport(0)
	src := NewSource("persons", s, "ROOT", level, srcTr)
	src.DrainReports()
	server := NewServer(src)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = server.Serve(ln) }()
	t.Cleanup(server.Close)

	remote, err := Dial("persons", ln.Addr().String(), NewTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(remote.Close)
	return src, server, remote
}

func TestNetFetchOps(t *testing.T) {
	_, _, remote := startNetSource(t, Level2)

	o, err := remote.FetchObject("P1")
	if err != nil {
		t.Fatal(err)
	}
	if o.Label != "professor" || !oem.SameMembers(o.Set, []oem.OID{"N1", "A1", "S1", "P3"}) {
		t.Fatalf("FetchObject = %v", o)
	}
	if _, err := remote.FetchObject("missing"); err == nil {
		t.Fatal("missing fetch succeeded over the wire")
	}

	info, ok, err := remote.FetchPath("A1")
	if err != nil || !ok {
		t.Fatalf("FetchPath: %v %v", ok, err)
	}
	if info.Labels.String() != "professor.age" || info.OIDs[1] != "A1" {
		t.Fatalf("path info = %+v", info)
	}

	y, ok, err := remote.FetchAncestor("A1", pathexpr.MustParsePath("age"))
	if err != nil || !ok || y != "P1" {
		t.Fatalf("FetchAncestor = %v %v %v", y, ok, err)
	}

	objs, err := remote.FetchEval("P1", pathexpr.MustParsePath("age"))
	if err != nil || len(objs) != 1 || !objs[0].Atom.Equal(oem.Int(45)) {
		t.Fatalf("FetchEval = %v %v", objs, err)
	}

	objs, err = remote.FetchSubtree("P1", 1)
	if err != nil || len(objs) != 5 {
		t.Fatalf("FetchSubtree = %d objects, %v", len(objs), err)
	}

	objs, err = remote.FetchQuery(query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"))
	if err != nil || len(objs) != 1 || objs[0].OID != "P1" {
		t.Fatalf("FetchQuery = %v %v", objs, err)
	}

	// Real byte accounting on the client transport.
	tr := remote.TransportRef()
	if tr.QueryBacks < 6 || tr.Bytes == 0 {
		t.Fatalf("client transport = %+v", tr)
	}
}

func TestNetReportsStream(t *testing.T) {
	src, server, remote := startNetSource(t, Level2)
	reports, err := src.Modify("A1", oem.Int(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Broadcast(reports); err != nil {
		t.Fatal(err)
	}
	got := remote.WaitReports(1)
	if len(got) != 1 {
		t.Fatalf("received %d reports", len(got))
	}
	r := got[0]
	if r.Update.Kind != store.UpdateModify || r.Update.N1 != "A1" {
		t.Fatalf("report update = %+v", r.Update)
	}
	if r.Objects["A1"] == nil || !r.Objects["A1"].Atom.Equal(oem.Int(50)) {
		t.Fatalf("report objects = %v", r.Objects)
	}
	if remote.LastKnownSeq() < r.Update.Seq {
		t.Fatalf("LastKnownSeq = %d < %d", remote.LastKnownSeq(), r.Update.Seq)
	}
}

// TestNetWarehouseEndToEnd runs the full warehouse protocol over real TCP:
// define a view against the remote source, stream updates, and verify the
// view tracks the source exactly — at every reporting level.
func TestNetWarehouseEndToEnd(t *testing.T) {
	for _, level := range []ReportLevel{Level1, Level2, Level3} {
		t.Run(level.String(), func(t *testing.T) {
			src, server, remote := startNetSource(t, level)
			w := New(remote)
			v, err := w.DefineView("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"),
				ViewConfig{Screening: level >= Level2})
			if err != nil {
				t.Fatal(err)
			}
			got, _ := v.MV.Members()
			if !oem.SameMembers(got, []oem.OID{"P1"}) {
				t.Fatalf("initial members = %v", got)
			}

			apply := func(reports []*UpdateReport, err error) {
				t.Helper()
				if err != nil {
					t.Fatal(err)
				}
				if err := server.Broadcast(reports); err != nil {
					t.Fatal(err)
				}
				if err := w.ProcessAll(remote.WaitReports(len(reports))); err != nil {
					t.Fatal(err)
				}
			}

			// The Example 5 sequence, across the wire.
			apply(src.Put(oem.NewAtom("A2", "age", oem.Int(40))))
			apply(src.Insert("P2", "A2"))
			got, _ = v.MV.Members()
			if !oem.SameMembers(got, []oem.OID{"P1", "P2"}) {
				t.Fatalf("after insert = %v", got)
			}

			apply(src.Modify("A1", oem.Int(50)))
			got, _ = v.MV.Members()
			if !oem.SameMembers(got, []oem.OID{"P2"}) {
				t.Fatalf("after modify = %v", got)
			}

			apply(src.Delete("ROOT", "P2"))
			got, _ = v.MV.Members()
			if len(got) != 0 {
				t.Fatalf("after delete = %v", got)
			}

			// Cross-check against the source's actual state.
			fresh, err := query.NewEvaluator(src.Store).Eval(v.MV.Query)
			if err != nil {
				t.Fatal(err)
			}
			if !oem.SameMembers(got, fresh) {
				t.Fatalf("diverged: view %v != source %v", got, fresh)
			}
		})
	}
}

func TestNetWarehouseWithCacheOverTCP(t *testing.T) {
	src, server, remote := startNetSource(t, Level2)
	w := New(remote)
	v, err := w.DefineView("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"),
		ViewConfig{Screening: true, Cache: CacheFull})
	if err != nil {
		t.Fatal(err)
	}
	setup := remote.TransportRef().Snapshot()
	apply := func(reports []*UpdateReport, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if err := server.Broadcast(reports); err != nil {
			t.Fatal(err)
		}
		if err := w.ProcessAll(remote.WaitReports(len(reports))); err != nil {
			t.Fatal(err)
		}
	}
	apply(src.Put(oem.NewAtom("A2", "age", oem.Int(40))))
	apply(src.Insert("P2", "A2"))
	apply(src.Modify("A1", oem.Int(50)))
	got, _ := v.MV.Members()
	if !oem.SameMembers(got, []oem.OID{"P2"}) {
		t.Fatalf("members = %v", got)
	}
	// The full cache answers everything locally: zero query backs over the
	// wire after setup.
	used := remote.TransportRef().Sub(setup)
	if used.QueryBacks != 0 {
		t.Fatalf("full cache still issued %d TCP query backs", used.QueryBacks)
	}
}

func TestNetSourceAPISurface(t *testing.T) {
	src, server, remote := startNetSource(t, Level2)
	if remote.ID() != "persons" {
		t.Fatalf("ID = %q", remote.ID())
	}
	// DrainReports without traffic is empty and non-blocking.
	if got := remote.DrainReports(); len(got) != 0 {
		t.Fatalf("unexpected reports: %v", got)
	}
	reports, err := src.Modify("A1", oem.Int(48))
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Broadcast(reports); err != nil {
		t.Fatal(err)
	}
	got := remote.WaitReports(1)
	if len(got) != 1 || got[0].Source != "persons" {
		t.Fatalf("reports = %v", got)
	}
	// A second drain is empty again.
	if got := remote.DrainReports(); len(got) != 0 {
		t.Fatalf("drain not empty: %v", got)
	}
}

func TestNetConcurrentQueries(t *testing.T) {
	_, _, remote := startNetSource(t, Level2)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 25; i++ {
				o, err := remote.FetchObject("P1")
				if err != nil {
					done <- err
					return
				}
				if o.Label != "professor" {
					done <- errWrongLabel
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errWrongLabel = fmt.Errorf("wrong label")

func TestNetDialFailure(t *testing.T) {
	if _, err := Dial("x", "127.0.0.1:1", NewTransport(0)); err == nil {
		t.Fatal("dialing a closed port succeeded")
	}
}
