package warehouse

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// TestSourceFetchQueryAt pins the SeqQuerier contract in-process: the
// answer at a captured sequence is frozen there while the current-state
// answer moves on with the store.
func TestSourceFetchQueryAt(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("persons", s, "ROOT", Level3, NewTransport(0))
	q := query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45")

	preSeq := s.Seq()
	if _, err := src.Modify("A1", oem.Int(50)); err != nil {
		t.Fatal(err)
	}

	objs, err := src.FetchQueryAt(q, preSeq)
	if err != nil || len(objs) != 1 || objs[0].OID != "P1" {
		t.Fatalf("FetchQueryAt(preSeq) = %v, %v; want [P1]", objs, err)
	}
	objs, err = src.FetchQuery(q)
	if err != nil || len(objs) != 0 {
		t.Fatalf("FetchQuery (current) = %v, %v; want none", objs, err)
	}
	// at == 0 means current state.
	objs, err = src.FetchQueryAt(q, 0)
	if err != nil || len(objs) != 0 {
		t.Fatalf("FetchQueryAt(0) = %v, %v; want none", objs, err)
	}
}

// TestSourceFetchQueryAtReclaimed verifies the conservative degradation:
// a sequence the version ring has already evicted answers from the
// current state instead of failing the resync.
func TestSourceFetchQueryAtReclaimed(t *testing.T) {
	opts := store.DefaultOptions()
	opts.RetainVersions = 2
	s := store.New(opts)
	workload.PersonDB(s)
	src := NewSource("persons", s, "ROOT", Level3, NewTransport(0))
	q := query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45")

	objs, err := src.FetchQueryAt(q, 1) // long since evicted by PersonDB's builds
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].OID != "P1" {
		t.Fatalf("reclaimed-seq fallback = %v; want current answer [P1]", objs)
	}
}

// TestNetQueryAt exercises the "queryat" wire op end to end.
func TestNetQueryAt(t *testing.T) {
	src, _, remote := startNetSource(t, Level3)
	q := query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45")

	preSeq := src.LastKnownSeq()
	if _, err := src.Modify("A1", oem.Int(50)); err != nil {
		t.Fatal(err)
	}

	objs, err := remote.FetchQueryAt(q, preSeq)
	if err != nil || len(objs) != 1 || objs[0].OID != "P1" {
		t.Fatalf("remote FetchQueryAt(preSeq) = %v, %v; want [P1]", objs, err)
	}
	objs, err = remote.FetchQuery(q)
	if err != nil || len(objs) != 0 {
		t.Fatalf("remote FetchQuery (current) = %v, %v; want none", objs, err)
	}
}

// oldQueryServer speaks just enough of the query protocol to stand in
// for a binary that predates the "queryat" op: it answers "query"
// normally and everything else with the unknown-op error.
func oldQueryServer(t *testing.T, src *Source) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				mode, err := br.ReadString('\n')
				if err != nil {
					return
				}
				if strings.Contains(mode, "reports") {
					// Registration ack, then hold the stream open.
					if _, err := conn.Write([]byte("{}\n")); err != nil {
						return
					}
					_, _ = br.ReadString('\n') // blocks until client closes
					return
				}
				enc := json.NewEncoder(conn)
				for {
					line, err := br.ReadString('\n')
					if err != nil {
						return
					}
					var req netRequest
					if json.Unmarshal([]byte(line), &req) != nil {
						return
					}
					var resp netResponse
					if req.Op == "query" {
						q, qerr := query.Parse(req.Query)
						if qerr != nil {
							resp.Err = qerr.Error()
						} else if objs, ferr := src.FetchQuery(q); ferr != nil {
							resp.Err = ferr.Error()
						} else {
							resp.Found, resp.Objects = true, objs
						}
					} else {
						resp.Err = `unknown op "` + req.Op + `"`
					}
					if enc.Encode(resp) != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestNetQueryAtOldServerFallback pins the version-mismatch contract:
// against a server that predates "queryat" the client degrades to a
// plain current-state query instead of failing the repair.
func TestNetQueryAtOldServerFallback(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("persons", s, "ROOT", Level3, NewTransport(0))
	addr := oldQueryServer(t, src)

	remote, err := Dial("persons", addr, NewTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(remote.Close)

	q := query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45")
	preSeq := src.LastKnownSeq()
	if _, err := src.Modify("A1", oem.Int(50)); err != nil {
		t.Fatal(err)
	}
	// The pinned answer is unavailable on the old server; the fallback
	// returns the current state — conservative, never an error.
	objs, err := remote.FetchQueryAt(q, preSeq)
	if err != nil {
		t.Fatalf("FetchQueryAt against old server: %v", err)
	}
	if len(objs) != 0 {
		t.Fatalf("old-server fallback = %v; want current answer (none)", objs)
	}
}
