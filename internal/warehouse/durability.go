package warehouse

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"gsv/internal/core"
	"gsv/internal/faults"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/wal"
)

// This file makes a Warehouse durable. The paper's Section 5 warehouse
// keeps the materialized views and the Section 5.2 auxiliary cache
// entirely in memory, so a process crash forces a from-scratch refetch of
// every view — exactly the cost Algorithm 1 exists to avoid. With
// EnableDurability:
//
//   - every update report's base update is appended to a write-ahead log
//     before maintenance processes it (reports the WAL cannot take are
//     not processed);
//   - checkpoints snapshot the view store (view objects and delegates),
//     per-view metadata (definition, config, staleness state,
//     resyncSkipSeq), the auxiliary caches, and the changefeed cursors;
//   - reopening the same directory restores the newest valid checkpoint
//     without a single source query, then replays the WAL tail as
//     Level-1 reports through ProcessBatch — O(tail), not O(database).
//
// Replaying a tail report that had already been (partially) processed is
// safe: Algorithm 1 re-derives its decisions from current state, so
// re-application converges exactly like the interference scenario of
// Section 5.1. Reports emitted by the source while the warehouse was
// down are gone (sources do not replay); recovery detects the gap by
// comparing the source's sequence number with the recovered one and
// quarantines the views (Stale) for the repair loop to resync, instead
// of failing startup.

// checkpoint section names. Aux caches use one section per view,
// prefixed ckptSectionCachePrefix.
const (
	ckptSectionStore       = "store"
	ckptSectionViews       = "views"
	ckptSectionFeed        = "feed"
	ckptSectionCachePrefix = "cache:"
)

// SyncPolicy re-exports the WAL fsync policies for DurabilityOptions.
type SyncPolicy = wal.SyncPolicy

// ParseSyncPolicy maps "always", "interval" or "never" to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// DurabilityOptions configures EnableDurability. The zero value is a
// always-fsync log with 4 MiB segments and a checkpoint every 1024
// appended reports.
type DurabilityOptions struct {
	// Policy, Interval, SegmentBytes, Crash and Metrics configure the
	// underlying WAL; see wal.Options.
	Policy       wal.SyncPolicy
	Interval     time.Duration
	SegmentBytes int64
	Crash        *faults.CrashPoints
	Metrics      *wal.Metrics

	// CheckpointEvery is how many appended reports accumulate between
	// automatic checkpoints (default 1024).
	CheckpointEvery int
}

// defaultWarehouseCheckpointEvery is the automatic checkpoint threshold.
const defaultWarehouseCheckpointEvery = 1024

// durability is the warehouse's durability state.
type durability struct {
	mgr     *wal.Manager
	metrics *wal.Metrics
	every   int

	// mu guards lastSeq and sinceCkpt (the append path may be reached
	// from ProcessReport and the checkpoint loop concurrently).
	mu        sync.Mutex
	lastSeq   uint64 // highest source seq appended (or recovered)
	sinceCkpt int

	// ckptMu serializes whole checkpoints (manual, automatic and the
	// background loop).
	ckptMu sync.Mutex
}

// viewMeta is one view's checkpointed metadata. The delegates and the
// view object live in the store section; the aux cache mirror in its own
// section. Everything else needed to rebuild the WView without touching
// the source is here.
type viewMeta struct {
	Name          string                     `json:"name"`
	Query         string                     `json:"query"`
	Cache         string                     `json:"cache"`
	Screening     bool                       `json:"screening,omitempty"`
	Knowledge     map[string]map[string]bool `json:"knowledge,omitempty"`
	State         int32                      `json:"state,omitempty"`
	StaleReason   string                     `json:"stale_reason,omitempty"`
	ResyncSkipSeq uint64                     `json:"resync_skip_seq,omitempty"`
}

// EnableDurability attaches a write-ahead log and checkpoint directory to
// the warehouse. Call it on a freshly constructed Warehouse, before any
// DefineView: if dir holds a previous incarnation's state, the views are
// recovered from it (recovered reports true) and need no re-definition.
//
// Reports whose update carries no source sequence number (Seq 0, or
// synthetic UpdateNone records) cannot be ordered into the log and are
// processed without durability.
func (w *Warehouse) EnableDurability(dir string, o DurabilityOptions) (recovered bool, err error) {
	if w.dur != nil {
		return false, errors.New("warehouse: durability already enabled")
	}
	w.mu.RLock()
	defined := len(w.views)
	w.mu.RUnlock()
	if defined != 0 {
		return false, errors.New("warehouse: EnableDurability must run before DefineView")
	}
	metrics := o.Metrics
	if metrics == nil {
		metrics = wal.NewMetrics()
	}
	start := time.Now()
	mgr, err := wal.Open(dir, wal.Options{
		Policy:       o.Policy,
		Interval:     o.Interval,
		SegmentBytes: o.SegmentBytes,
		Crash:        o.Crash,
		Metrics:      metrics,
	})
	if err != nil {
		return false, err
	}
	ckpt, err := mgr.LatestCheckpoint()
	if err != nil {
		mgr.Close()
		return false, err
	}
	d := &durability{mgr: mgr, metrics: metrics, every: o.CheckpointEvery}
	if d.every <= 0 {
		d.every = defaultWarehouseCheckpointEvery
	}
	if ckpt != nil {
		if err := w.restoreCheckpoint(ckpt); err != nil {
			mgr.Close()
			return false, err
		}
	}
	d.lastSeq = max(ckptSeqOf(ckpt), mgr.Log().LastSeq())
	w.dur = d

	// Replay the WAL tail as Level-1 reports through the batched path.
	// Maintenance failures quarantine the affected view (Stale) rather
	// than failing recovery; the repair loop resyncs it later.
	var tail []*UpdateReport
	if err := mgr.Log().Replay(ckptSeqOf(ckpt), func(u store.Update) error {
		tail = append(tail, &UpdateReport{Source: w.Src.ID(), Level: Level1, Update: u})
		return nil
	}); err != nil {
		w.dur = nil
		mgr.Close()
		return false, err
	}
	if len(tail) > 0 {
		_ = w.ProcessBatch(tail) // failing views are marked Stale inside
	}

	// Restart-gap detection: updates the source emitted while the
	// warehouse was down were never reported and are not in the WAL.
	// Sources do not replay, so only a resync can reconcile the views.
	if ckpt != nil {
		if srcSeq := w.Src.LastKnownSeq(); srcSeq > d.lastSeq {
			reason := fmt.Sprintf("restart gap: source at seq %d, recovered through seq %d", srcSeq, d.lastSeq)
			for _, v := range w.viewsSorted() {
				v.markStale(reason)
			}
		}
		// Collapse the replayed tail so a crash loop never replays it
		// twice.
		if err := w.Checkpoint(); err != nil {
			w.dur = nil
			mgr.Close()
			return false, err
		}
	}
	metrics.Recoveries.Inc()
	metrics.RecoverySeconds.ObserveSince(start)
	return ckpt != nil, nil
}

func ckptSeqOf(c *wal.Checkpoint) uint64 {
	if c == nil {
		return 0
	}
	return c.Seq
}

// restoreCheckpoint rebuilds the warehouse from one checkpoint: the view
// store, then each view adopted over its restored delegates — zero
// source queries on this path.
func (w *Warehouse) restoreCheckpoint(ckpt *wal.Checkpoint) error {
	if w.Store.Len() != 0 {
		return errors.New("warehouse: recovery requires an empty view store")
	}
	if err := w.Store.Load(bytes.NewReader(ckpt.Section(ckptSectionStore))); err != nil {
		return fmt.Errorf("warehouse: restoring view store: %w", err)
	}
	if cursors := ckpt.Section(ckptSectionFeed); len(cursors) > 0 {
		m := map[string]uint64{}
		if err := json.Unmarshal(cursors, &m); err != nil {
			return fmt.Errorf("warehouse: restoring feed cursors: %w", err)
		}
		for view, c := range m {
			w.Feed.RestoreCursor(view, c)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(ckpt.Section(ckptSectionViews)))
	for {
		var m viewMeta
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("warehouse: decoding view metadata: %w", err)
		}
		if err := w.adoptView(m, ckpt); err != nil {
			return err
		}
	}
}

// adoptView rebuilds one WView from its checkpointed metadata, wiring it
// exactly as DefineView does but over the restored delegates instead of
// a source fetch.
func (w *Warehouse) adoptView(m viewMeta, ckpt *wal.Checkpoint) error {
	q, err := query.Parse(m.Query)
	if err != nil {
		return fmt.Errorf("warehouse: checkpointed view %s: %w", m.Name, err)
	}
	def, ok := core.Simplify(q)
	if !ok {
		return fmt.Errorf("%w: checkpointed view %s", ErrNotSimple, m.Name)
	}
	oid := oem.OID(m.Name)
	if !w.Store.Has(oid) {
		return fmt.Errorf("%w: checkpointed view %s has no view object", ErrViewNotFound, m.Name)
	}
	cfg := ViewConfig{Cache: cacheModeFromString(m.Cache), Screening: m.Screening}
	if m.Knowledge != nil {
		cfg.Knowledge = &PathKnowledge{pairs: m.Knowledge}
	}
	mv := &core.MaterializedView{OID: oid, Query: q, Base: nil, ViewStore: w.Store}
	var cache *AuxCache
	var staleReason string
	if cfg.Cache != CacheNone {
		cache, err = restoreAuxCache(def, cfg.Cache, ckpt.Section(ckptSectionCachePrefix+m.Name))
		if err != nil {
			// A view without its mirror cannot maintain incrementally;
			// quarantine it for the repair loop (which rebuilds the
			// cache during resync) instead of failing recovery.
			cache = nil
			staleReason = fmt.Sprintf("aux cache not recovered: %v", err)
		}
	}
	access := &RemoteAccess{Src: w.Src, Def: def, Cache: cache}
	maint := &core.SimpleMaintainer{View: mv, Def: def, Access: access}
	v := &WView{
		Name: m.Name, MV: mv, Def: def, Access: access, Maint: maint,
		Cache: cache, Config: cfg, feed: w.Feed, fullLabels: map[string]bool{},
	}
	maint.Observer = func(view oem.OID, u store.Update, d core.Deltas) {
		v.recordDeltas(len(d.Insert), len(d.Delete))
		v.publish(u, d)
	}
	w.Feed.RegisterView(m.Name, mv.Members)
	for _, l := range def.FullPath() {
		v.fullLabels[l] = true
	}
	v.resyncSkipSeq = m.ResyncSkipSeq
	if ViewState(m.State) != ViewFresh && m.StaleReason != "" {
		staleReason = m.StaleReason
	} else if ViewState(m.State) != ViewFresh {
		staleReason = "stale at checkpoint"
	}
	if staleReason != "" {
		v.markStale(staleReason)
	}
	w.registerViewObs(v)
	w.mu.Lock()
	w.views[m.Name] = v
	w.mu.Unlock()
	return nil
}

// restoreAuxCache rebuilds an AuxCache from its checkpointed mirror
// snapshot without touching the source.
func restoreAuxCache(def core.SimpleDef, mode CacheMode, snapshot []byte) (*AuxCache, error) {
	if len(snapshot) == 0 {
		return nil, errors.New("no cache section in checkpoint")
	}
	c := &AuxCache{
		Mode: mode,
		Def:  def,
		store: store.New(store.Options{
			ParentIndex: true, LabelIndex: true, AllowDangling: true,
		}),
		full: def.FullPath(),
	}
	c.access = core.NewCentralAccess(c.store)
	if err := c.store.Load(bytes.NewReader(snapshot)); err != nil {
		return nil, err
	}
	return c, nil
}

// cacheModeFromString maps a serialized cache mode name back to the mode;
// unknown names resolve to CacheNone.
func cacheModeFromString(s string) CacheMode {
	switch s {
	case "partial":
		return CachePartial
	case "full":
		return CacheFull
	default:
		return CacheNone
	}
}

// logReports appends the reports' base updates to the WAL — the
// write-ahead step, before any maintenance. Updates without a source
// sequence number, and updates at or below the last appended sequence
// (replays, duplicates), are skipped. No-op without EnableDurability.
func (w *Warehouse) logReports(rs []*UpdateReport) error {
	d := w.dur
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var us []store.Update
	for _, r := range rs {
		u := r.Update
		if u.Seq == 0 || u.Seq <= d.lastSeq || u.Kind == store.UpdateNone {
			continue
		}
		us = append(us, u)
		d.lastSeq = u.Seq
	}
	if len(us) == 0 {
		return nil
	}
	if err := d.mgr.Log().Append(us...); err != nil {
		return fmt.Errorf("warehouse: write-ahead log: %w", err)
	}
	d.sinceCkpt += len(us)
	return nil
}

// maybeCheckpoint runs an automatic checkpoint once enough reports have
// been appended since the last one.
func (w *Warehouse) maybeCheckpoint() error {
	d := w.dur
	if d == nil {
		return nil
	}
	d.mu.Lock()
	due := d.sinceCkpt >= d.every
	d.mu.Unlock()
	if !due {
		return nil
	}
	return w.Checkpoint()
}

// Checkpoint snapshots the warehouse — view store, per-view metadata,
// aux caches and feed cursors — as the new recovery baseline, and prunes
// the WAL behind it. No-op without EnableDurability.
func (w *Warehouse) Checkpoint() error {
	d := w.dur
	if d == nil {
		return nil
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	// Freeze maintenance on every view so the store section, the view
	// metadata and the cache sections describe one consistent instant.
	views := w.viewsSorted()
	for _, v := range views {
		v.procMu.Lock()
	}
	defer func() {
		for _, v := range views {
			v.procMu.Unlock()
		}
	}()
	var cw wal.CheckpointWriter
	cw.AddFunc(ckptSectionStore, func(buf *bytes.Buffer) error { return w.Store.Save(buf) })
	cw.AddFunc(ckptSectionViews, func(buf *bytes.Buffer) error {
		enc := json.NewEncoder(buf)
		for _, v := range views {
			m := viewMeta{
				Name:          v.Name,
				Query:         v.MV.Query.String(),
				Cache:         v.Config.Cache.String(),
				Screening:     v.Config.Screening,
				State:         int32(v.State()),
				ResyncSkipSeq: v.resyncSkipSeq,
			}
			if pk := v.Config.Knowledge; pk != nil {
				m.Knowledge = pk.pairs
			}
			if m.State != int32(ViewFresh) {
				m.StaleReason, _ = v.StaleReason()
			}
			if err := enc.Encode(m); err != nil {
				return err
			}
		}
		return nil
	})
	cw.AddFunc(ckptSectionFeed, func(buf *bytes.Buffer) error {
		cursors := map[string]uint64{}
		for _, v := range views {
			if c, ok := w.Feed.Cursor(v.Name); ok && c > 0 {
				cursors[v.Name] = c
			}
		}
		return json.NewEncoder(buf).Encode(cursors)
	})
	for _, v := range views {
		if v.Cache == nil {
			continue
		}
		c := v.Cache
		cw.AddFunc(ckptSectionCachePrefix+v.Name, func(buf *bytes.Buffer) error {
			return c.store.Save(buf)
		})
	}
	d.mu.Lock()
	seq := d.lastSeq
	d.mu.Unlock()
	if err := d.mgr.WriteCheckpoint(seq, &cw); err != nil {
		return err
	}
	d.mu.Lock()
	d.sinceCkpt = 0
	d.mu.Unlock()
	return nil
}

// StartCheckpointLoop checkpoints every interval on a background
// goroutine until the returned stop function is called — the steady-state
// bound on recovery replay length, complementing the count-triggered
// automatic checkpoints.
func (w *Warehouse) StartCheckpointLoop(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_ = w.Checkpoint()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Durable reports whether EnableDurability has run.
func (w *Warehouse) Durable() bool { return w.dur != nil }

// Close makes all acknowledged maintenance durable (final checkpoint)
// and releases the WAL. No-op without EnableDurability.
func (w *Warehouse) Close() error {
	d := w.dur
	if d == nil {
		return nil
	}
	err := w.Checkpoint()
	if cerr := d.mgr.Close(); err == nil {
		err = cerr
	}
	return err
}

// DurabilityMetrics returns the WAL metrics the durability layer records
// into (nil without EnableDurability).
func (w *Warehouse) DurabilityMetrics() *wal.Metrics {
	if w.dur == nil {
		return nil
	}
	return w.dur.metrics
}
