package warehouse

import (
	"encoding/json"
	"errors"
	"net"
	"testing"

	"gsv/internal/store"
	"gsv/internal/workload"
)

// TestShardGoldenFrame pins the wire schema of a shard response: the
// exact frame a shard request produces. Field renames break this test
// on purpose.
func TestShardGoldenFrame(t *testing.T) {
	server := &Server{ShardInfo: func() *ShardPayload {
		return &ShardPayload{
			Node: "primary", Source: "source2", Shard: 2, Shards: 4,
			Seq: 41, State: "up", Watermark: 1700000000000000000,
		}
	}}
	resp := server.dispatch(netRequest{Op: "shard"})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"found":true,"shard":{"node":"primary","source":"source2","shard":2,"shards":4,"seq":41,"state":"up","watermark":1700000000000000000},"seq":0}`
	if string(data) != want {
		t.Fatalf("shard frame changed:\n got %s\nwant %s", data, want)
	}
}

// TestShardRoundTrip exercises the shard handshake over a real
// connection, including zero-valued shard/watermark fields staying on
// the wire.
func TestShardRoundTrip(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("source0", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	server := NewServer(src)
	server.ShardInfo = func() *ShardPayload {
		return &ShardPayload{
			Node: "node0", Source: "source0", Shard: 0, Shards: 8,
			Seq: src.Store.Seq(), State: SourceUp.String(),
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = server.Serve(ln) }()
	t.Cleanup(server.Close)
	remote, err := Dial("source0", ln.Addr().String(), NewTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(remote.Close)

	info, err := remote.FetchShardInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.Source != "source0" || info.Shard != 0 || info.Shards != 8 || info.State != "up" || info.Node != "node0" {
		t.Fatalf("shard info = %+v", info)
	}
}

// TestShardUnsupportedOnOldServer maps the unknown-op answer of a
// pre-federation server to ErrUnsupportedRequest.
func TestShardUnsupportedOnOldServer(t *testing.T) {
	_, _, remote := startNetSource(t, Level2)
	if _, err := remote.FetchShardInfo(); !errors.Is(err, ErrUnsupportedRequest) {
		t.Fatalf("old server shard error = %v, want ErrUnsupportedRequest", err)
	}
}
