package warehouse

import (
	"net"
	"testing"
	"time"

	"gsv/internal/faults"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// TestChaosSoakKillRestartUnderFaults is the fault-injection soak drill
// (run in CI's chaos-smoke job under -race): a warehouse maintains two
// views over the wire while
//
//   - every connection injects seeded errors, delays and drops
//     (faults.WrapListener),
//   - the server is killed mid-workload and restarted on the same
//     address, with source updates continuing while it is down (those
//     reports are lost for good — the server never replays),
//
// and at the end every view must be Fresh (repaired if needed) with
// membership equal to a from-scratch recompute at the source. This is
// the end-to-end claim of the failure model: transient faults are
// absorbed by retries/redial, unrecoverable loss becomes staleness, and
// repair restores correctness.
func TestChaosSoakKillRestartUnderFaults(t *testing.T) {
	s := store.NewDefault()
	db := workload.RelationLike(s, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: 5, FieldsPerTuple: 2, Seed: 11,
	})
	src := NewSource("rel", s, "REL", Level2, NewTransport(0))
	src.DrainReports()

	inj := faults.New(faults.Config{
		Seed:      99,
		DropProb:  0.01,
		ErrProb:   0.03,
		DelayProb: 0.05,
		Delay:     200 * time.Microsecond,
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	server := NewServer(src)
	go func() { _ = server.Serve(inj.WrapListener(ln)) }()
	defer func() { server.Close() }()

	remote, err := DialWithOptions("rel", addr, NewTransport(0), DialOptions{
		IOTimeout: 2 * time.Second,
		Retry: RetryPolicy{
			MaxAttempts: 10, BaseDelay: time.Millisecond,
			MaxDelay: 20 * time.Millisecond, Multiplier: 2, Jitter: 0.2,
		},
		Redial: RetryPolicy{
			MaxAttempts: 2000, BaseDelay: time.Millisecond,
			MaxDelay: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.2,
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	w := New(remote)
	v1, err := w.DefineView("soak-r0",
		query.MustParse("SELECT REL.r0.tuple X WHERE X.age > 40"),
		ViewConfig{Cache: CacheNone})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := w.DefineView("soak-r1",
		query.MustParse("SELECT REL.r1.tuple X WHERE X.age <= 60"),
		ViewConfig{Cache: CacheFull})
	if err != nil {
		t.Fatal(err)
	}
	views := []*WView{v1, v2}

	var sets, atoms []oem.OID
	for _, r := range db.Relations {
		sets = append(sets, r.OID)
		sets = append(sets, r.Tuples...)
		for _, tu := range r.Tuples {
			kids, _ := s.Children(tu)
			atoms = append(atoms, kids...)
		}
	}
	stream := workload.NewStream(s, workload.StreamConfig{
		Seed: 23, Mix: workload.Mix{Insert: 3, Delete: 2, Modify: 5}, ValueRange: 90,
	}, sets, atoms)

	// step applies one source update and broadcasts its reports through
	// whatever server is currently alive.
	step := func() {
		if _, ok := stream.Next(); !ok {
			t.Fatal("stream exhausted")
		}
		if err := server.Broadcast(src.DrainReports()); err != nil {
			t.Fatalf("broadcast: %v", err)
		}
	}
	// drain pulls whatever reports arrived into the warehouse; errors
	// quarantine views rather than failing the test.
	drain := func() {
		reports, _ := remote.WaitReportsTimeout(1, 20*time.Millisecond)
		_ = w.ProcessAll(reports)
	}

	for i := 0; i < 40; i++ {
		step()
		drain()
	}

	// Kill the server mid-workload. Updates keep flowing at the source
	// while it is down; their reports are lost (Broadcast on a closed
	// server is a no-op), which the client must detect as a gap.
	server.Close()
	for i := 0; i < 10; i++ {
		step()
	}

	// Restart on the same address (SO_REUSEADDR allows immediate rebind)
	// behind the same injector.
	var ln2 net.Listener
	for try := 0; ; try++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if try > 100 {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	server = NewServer(src)
	go func() { _ = server.Serve(inj.WrapListener(ln2)) }()

	for i := 0; i < 40; i++ {
		step()
		drain()
	}

	// Quiesce: keep draining reports and repairing until every view is
	// Fresh and matches a from-scratch recompute at the source.
	deadline := time.Now().Add(20 * time.Second)
	for {
		drain()
		_, _ = w.RepairAll()
		converged := len(w.StaleViews()) == 0
		if converged {
			for _, v := range views {
				fresh, err := query.NewEvaluator(s).Eval(v.MV.Query)
				if err != nil {
					t.Fatal(err)
				}
				got, err := v.MV.Members()
				if err != nil {
					t.Fatal(err)
				}
				if !oem.SameMembers(got, fresh) {
					converged = false
					break
				}
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			for _, v := range views {
				reason, since := v.StaleReason()
				fresh, _ := query.NewEvaluator(s).Eval(v.MV.Query)
				got, _ := v.MV.Members()
				t.Logf("%s: state=%v reason=%q since=%v got=%v want=%v",
					v.Name, v.State(), reason, since, got, fresh)
			}
			t.Fatalf("views did not converge; wire=%+v", remote.WireStats())
		}
	}

	// The drill must have actually exercised the machinery: at least one
	// reconnect of the report stream (the restart guarantees it).
	ws := remote.WireStats()
	if ws.ReportReconnects == 0 {
		t.Fatalf("no report reconnect recorded: %+v", ws)
	}
	if ws.Gaps == 0 {
		t.Fatalf("no gap recorded despite server restart: %+v", ws)
	}
}
