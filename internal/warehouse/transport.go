// Package warehouse implements the paper's Section 5: incremental view
// maintenance in a data warehousing architecture (Figure 6). Base objects
// live at autonomous sources; each source has a wrapper that answers
// queries and a monitor that reports updates at one of three levels of
// detail. Materialized views live at the warehouse, which runs the *same*
// Algorithm 1 as the centralized case — its BaseAccess implementation
// simply turns path/ancestor/eval into source queries, optionally answered
// from auxiliary caches (Section 5.2) instead of the network.
//
// The distributed system is simulated in-process: all traffic flows
// through a Transport that counts messages, shipped objects and bytes, and
// accumulates virtual latency. The paper's cost arguments are about
// exactly these quantities.
package warehouse

import (
	"fmt"
	"sync"
	"time"

	"gsv/internal/obs"
)

// Transport accounts for warehouse-source communication. It does not move
// bytes — sources and the warehouse share a process — but every query back
// to a source and every update report passes through RoundTrip or OneWay,
// so the counters faithfully reflect what a real deployment would ship.
//
// A transport built with NewTransport is safe for concurrent use: over TCP
// the report-reader goroutine charges OneWay while the maintenance path
// charges RoundTrip. Values returned by Snapshot and Sub are plain,
// unsynchronized copies for diffing.
type Transport struct {
	// mu guards the counters on live transports; it is nil on the value
	// copies Snapshot and Sub hand out, where lock/unlock are no-ops.
	mu *sync.Mutex
	// Messages counts all messages in either direction.
	Messages int
	// QueryBacks counts request/response query pairs sent to sources.
	QueryBacks int
	// ObjectsShipped counts objects serialized into responses and reports.
	ObjectsShipped int
	// Bytes estimates total payload bytes in both directions.
	Bytes int
	// RoundTripLatency is the virtual cost charged per query back.
	RoundTripLatency time.Duration
	// VirtualTime accumulates charged latency (nothing actually sleeps).
	VirtualTime time.Duration
}

// NewTransport returns a transport charging the given latency per round
// trip. A zero latency still counts messages and bytes.
func NewTransport(rtt time.Duration) *Transport {
	return &Transport{mu: new(sync.Mutex), RoundTripLatency: rtt}
}

func (t *Transport) lock() {
	if t.mu != nil {
		t.mu.Lock()
	}
}

func (t *Transport) unlock() {
	if t.mu != nil {
		t.mu.Unlock()
	}
}

// RoundTrip records one query to a source and its response.
func (t *Transport) RoundTrip(reqBytes, respBytes, objects int) {
	t.lock()
	defer t.unlock()
	t.Messages += 2
	t.QueryBacks++
	t.ObjectsShipped += objects
	t.Bytes += reqBytes + respBytes
	t.VirtualTime += t.RoundTripLatency
}

// OneWay records one pushed message (an update report).
func (t *Transport) OneWay(bytes, objects int) {
	t.lock()
	defer t.unlock()
	t.Messages++
	t.ObjectsShipped += objects
	t.Bytes += bytes
	// Reports are pushed asynchronously; they charge half a round trip.
	t.VirtualTime += t.RoundTripLatency / 2
}

// Snapshot returns a copy of the counters for diffing around an operation.
func (t *Transport) Snapshot() Transport {
	t.lock()
	defer t.unlock()
	c := *t
	c.mu = nil
	return c
}

// Sub returns the counter difference t - earlier.
func (t *Transport) Sub(earlier Transport) Transport {
	t.lock()
	defer t.unlock()
	return Transport{
		Messages:       t.Messages - earlier.Messages,
		QueryBacks:     t.QueryBacks - earlier.QueryBacks,
		ObjectsShipped: t.ObjectsShipped - earlier.ObjectsShipped,
		Bytes:          t.Bytes - earlier.Bytes,
		VirtualTime:    t.VirtualTime - earlier.VirtualTime,
	}
}

// RegisterObs exposes the transport counters on reg as gauges (they are
// mutex-guarded ints, read via Snapshot at scrape time), labeled with
// the site the transport belongs to (e.g. "warehouse", "source").
func (t *Transport) RegisterObs(reg *obs.Registry, site string) {
	reg.Help("gsv_transport_messages", "messages in either direction")
	reg.Help("gsv_transport_query_backs", "request/response query pairs sent to sources")
	reg.Help("gsv_transport_objects_shipped", "objects serialized into responses and reports")
	reg.Help("gsv_transport_bytes", "estimated payload bytes in both directions")
	reg.Help("gsv_transport_virtual_seconds", "accumulated virtual latency")
	ls := obs.L("site", site)
	reg.GaugeFunc("gsv_transport_messages", func() float64 { return float64(t.Snapshot().Messages) }, ls)
	reg.GaugeFunc("gsv_transport_query_backs", func() float64 { return float64(t.Snapshot().QueryBacks) }, ls)
	reg.GaugeFunc("gsv_transport_objects_shipped", func() float64 { return float64(t.Snapshot().ObjectsShipped) }, ls)
	reg.GaugeFunc("gsv_transport_bytes", func() float64 { return float64(t.Snapshot().Bytes) }, ls)
	reg.GaugeFunc("gsv_transport_virtual_seconds", func() float64 { return t.Snapshot().VirtualTime.Seconds() }, ls)
}

// String renders the counters.
func (t *Transport) String() string {
	t.lock()
	defer t.unlock()
	return fmt.Sprintf("msgs=%d queries=%d objects=%d bytes=%d vtime=%s",
		t.Messages, t.QueryBacks, t.ObjectsShipped, t.Bytes, t.VirtualTime)
}
