package warehouse

import (
	"gsv/internal/faults"
	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
)

// FaultySource wraps a SourceAPI so every fetch consults a fault
// injector first — the API-level integration surface of internal/faults.
// Where the wire-level wrapper (faults.WrapConn) breaks connections
// mid-frame, this one injects clean query-back failures, which is what
// staleness tests want: the failure arrives exactly at the Algorithm 1
// helper boundary with no transport noise.
//
// Drop and Error decisions both fail the call (there is no connection to
// kill at this layer); Delay stalls it. DrainReports and the metadata
// accessors are passed through untouched so report routing itself stays
// reliable — use the wire-level wrapper to exercise report loss.
type FaultySource struct {
	// Inner is the wrapped source.
	Inner SourceAPI
	// Inj makes the per-call decisions.
	Inj *faults.Injector
}

// WrapSource wraps src with injector inj.
func WrapSource(src SourceAPI, inj *faults.Injector) *FaultySource {
	return &FaultySource{Inner: src, Inj: inj}
}

// fault applies one decision for op; non-nil means the call fails.
func (f *FaultySource) fault(op string) error {
	switch f.Inj.Decide(op) {
	case faults.Drop, faults.Error:
		return f.Inj.Errf(op)
	case faults.Delay:
		f.Inj.Sleep()
	}
	return nil
}

// ID implements SourceAPI.
func (f *FaultySource) ID() string { return f.Inner.ID() }

// TransportRef implements SourceAPI.
func (f *FaultySource) TransportRef() *Transport { return f.Inner.TransportRef() }

// LastKnownSeq implements SourceAPI.
func (f *FaultySource) LastKnownSeq() uint64 { return f.Inner.LastKnownSeq() }

// DrainReports implements SourceAPI; never faulted.
func (f *FaultySource) DrainReports() []*UpdateReport { return f.Inner.DrainReports() }

// FetchObject implements SourceAPI.
func (f *FaultySource) FetchObject(oid oem.OID) (*oem.Object, error) {
	if err := f.fault("object"); err != nil {
		return nil, err
	}
	return f.Inner.FetchObject(oid)
}

// FetchPath implements SourceAPI.
func (f *FaultySource) FetchPath(n oem.OID) (*PathInfo, bool, error) {
	if err := f.fault("path"); err != nil {
		return nil, false, err
	}
	return f.Inner.FetchPath(n)
}

// FetchAncestor implements SourceAPI.
func (f *FaultySource) FetchAncestor(n oem.OID, p pathexpr.Path) (oem.OID, bool, error) {
	if err := f.fault("ancestor"); err != nil {
		return oem.NoOID, false, err
	}
	return f.Inner.FetchAncestor(n, p)
}

// FetchEval implements SourceAPI.
func (f *FaultySource) FetchEval(n oem.OID, p pathexpr.Path) ([]*oem.Object, error) {
	if err := f.fault("eval"); err != nil {
		return nil, err
	}
	return f.Inner.FetchEval(n, p)
}

// FetchSubtree implements SourceAPI.
func (f *FaultySource) FetchSubtree(n oem.OID, depth int) ([]*oem.Object, error) {
	if err := f.fault("subtree"); err != nil {
		return nil, err
	}
	return f.Inner.FetchSubtree(n, depth)
}

// FetchQuery implements SourceAPI.
func (f *FaultySource) FetchQuery(q *query.Query) ([]*oem.Object, error) {
	if err := f.fault("query"); err != nil {
		return nil, err
	}
	return f.Inner.FetchQuery(q)
}

// FetchQueryAt implements SeqQuerier when the inner source does, faulted
// under the same "query" op as FetchQuery (the injector does not need to
// distinguish the pinned variant).
func (f *FaultySource) FetchQueryAt(q *query.Query, at uint64) ([]*oem.Object, error) {
	if err := f.fault("query"); err != nil {
		return nil, err
	}
	return fetchQueryAt(f.Inner, q, at)
}

// TakeGap forwards gap detection when the inner source supports it, so a
// fault-wrapped RemoteSource still feeds the staleness machinery.
func (f *FaultySource) TakeGap() (uint64, bool) {
	if gs, ok := f.Inner.(gapSource); ok {
		return gs.TakeGap()
	}
	return 0, false
}

var _ SourceAPI = (*FaultySource)(nil)
