package warehouse

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"gsv/internal/faults"
	"gsv/internal/feed"
	"gsv/internal/obs"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// TestAdmissionSemaphore exercises the weighted admission semaphore's
// core contract: immediate grants under the cap, queue-full and
// queue-timeout sheds (both typed ErrOverloaded), FIFO grant order on
// release, and the over-cap escape hatch when the controller is idle.
func TestAdmissionSemaphore(t *testing.T) {
	ac := NewAdmissionController(AdmissionConfig{
		MaxInflight: 4, MaxQueue: 1, QueueWait: 20 * time.Millisecond,
	})

	// A weight above the cap is still admitted when nothing is in
	// flight — otherwise a heavy op could never run at all.
	if err := ac.Acquire(8, time.Time{}); err != nil {
		t.Fatalf("over-cap acquire on idle controller: %v", err)
	}
	ac.Release(8)

	if err := ac.Acquire(4, time.Time{}); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if got := ac.Inflight(); got != 4 {
		t.Fatalf("inflight = %d, want 4", got)
	}

	// The queue holds one waiter; it times out and sheds typed.
	timedOut := make(chan error, 1)
	go func() { timedOut <- ac.Acquire(1, time.Time{}) }()
	waitFor(t, func() bool { return ac.QueueLen() == 1 })

	// Queue full: the next arrival sheds immediately.
	if err := ac.Acquire(1, time.Time{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full acquire = %v, want ErrOverloaded", err)
	}

	if err := <-timedOut; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-timeout acquire = %v, want ErrOverloaded", err)
	}
	if ac.ShedReads.Value() != 2 {
		t.Fatalf("ShedReads = %d, want 2", ac.ShedReads.Value())
	}

	// FIFO: a queued waiter is granted on release, ahead of arrivals.
	granted := make(chan error, 1)
	go func() { granted <- ac.Acquire(2, time.Time{}) }()
	waitFor(t, func() bool { return ac.QueueLen() == 1 })
	ac.Release(4)
	if err := <-granted; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	ac.Release(2)
	if got := ac.Inflight(); got != 0 {
		t.Fatalf("inflight after drain = %d, want 0", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 2s")
		}
		time.Sleep(time.Millisecond)
	}
}

// startOverloadServer serves a PERSON source with the given admission
// controller attached.
func startOverloadServer(t *testing.T, ac *AdmissionController) (*Server, string) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("persons", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	server := NewServer(src)
	server.Admission = ac
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = server.Serve(ln) }()
	t.Cleanup(server.Close)
	return server, ln.Addr().String()
}

// rawQueryConn opens a query-mode connection and returns a send/recv
// helper operating on raw frames.
func rawQueryConn(t *testing.T, addr string) func(req map[string]any) netResponse {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if _, err := conn.Write([]byte("query\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	return func(req map[string]any) netResponse {
		t.Helper()
		frame, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Write(append(frame, '\n')); err != nil {
			t.Fatal(err)
		}
		line, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp netResponse
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
}

// TestConnCapRefusesAtAccept verifies MaxConns: connections beyond the
// cap are closed at accept, before any protocol exchange, and a slot
// freed by a disconnect is usable again.
func TestConnCapRefusesAtAccept(t *testing.T) {
	ac := NewAdmissionController(AdmissionConfig{MaxConns: 1})
	_, addr := startOverloadServer(t, ac)

	first, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := first.Write([]byte("query\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return ac.Conns() == 1 })

	second, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err) // TCP dial lands in the backlog; refusal comes as a close
	}
	defer second.Close()
	_ = second.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := second.Write([]byte("query\n")); err == nil {
		if _, err = bufio.NewReader(second).ReadByte(); err == nil {
			t.Fatal("connection over the cap was served")
		}
	}
	if ac.ShedConns.Value() == 0 {
		t.Fatal("ShedConns not counted")
	}

	first.Close()
	waitFor(t, func() bool { return ac.Conns() == 0 })
	send := rawQueryConn(t, addr)
	if resp := send(map[string]any{"op": "object", "oid": "P1"}); resp.Err != "" {
		t.Fatalf("freed slot refused: %s", resp.Err)
	}
}

// TestServeSurvivesTransientAcceptErrors is the accept-loop resilience
// regression: transient accept failures (injected via a flaky listener)
// must back off and retry, not kill Serve.
func TestServeSurvivesTransientAcceptErrors(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("persons", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	server := NewServer(src)
	ac := NewAdmissionController(AdmissionConfig{})
	server.Admission = ac

	in := faults.New(faults.Config{Seed: 7})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- server.Serve(in.WrapFlakyListener(ln)) }()
	t.Cleanup(server.Close)
	addr := ln.Addr().String()

	send := rawQueryConn(t, addr)
	if resp := send(map[string]any{"op": "object", "oid": "P1"}); resp.Err != "" {
		t.Fatalf("baseline query: %s", resp.Err)
	}

	// Every accept fails while the partition is open; the loop must
	// retry with backoff instead of returning. The loop is parked inside
	// Accept from before the partition opened, so dial once to kick it
	// into the failing regime.
	in.Partition(true)
	if kick, err := net.Dial("tcp", addr); err == nil {
		kick.Close()
	}
	waitFor(t, func() bool { return ac.AcceptRetries.Value() >= 2 })
	select {
	case err := <-served:
		t.Fatalf("Serve returned on a transient accept error: %v", err)
	default:
	}
	in.Partition(false)

	// The healed listener accepts and serves again.
	send2 := rawQueryConn(t, addr)
	if resp := send2(map[string]any{"op": "object", "oid": "P1"}); resp.Err != "" {
		t.Fatalf("query after heal: %s", resp.Err)
	}
}

// TestIdleTimeoutReapsConns is the connection-leak regression: a client
// that dials and goes silent must be reaped by the idle read deadline
// instead of holding a goroutine and conn slot forever.
func TestIdleTimeoutReapsConns(t *testing.T) {
	ac := NewAdmissionController(AdmissionConfig{})
	server, addr := startOverloadServer(t, ac)
	server.IdleTimeout = 50 * time.Millisecond

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("query\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return server.ConnCount() == 1 })
	// Silence. The server must hang up on its own.
	waitFor(t, func() bool { return server.ConnCount() == 0 })
	waitFor(t, func() bool { return ac.Conns() == 0 })
}

// TestBudgetExpiryShedding verifies deadline propagation server-side:
// pre-expired relative budgets, absolute deadlines in the past, and
// absolute deadlines inside the MinSlack margin are all shed with the
// typed retryable error instead of evaluated.
func TestBudgetExpiryShedding(t *testing.T) {
	ac := NewAdmissionController(AdmissionConfig{MinSlack: 50 * time.Millisecond})
	_, addr := startOverloadServer(t, ac)
	send := rawQueryConn(t, addr)

	cases := []map[string]any{
		{"op": "object", "oid": "P1", "budget_ms": -1},
		{"op": "object", "oid": "P1", "deadline_unix_ms": 5},
		// In the future, but inside the 50ms slack margin.
		{"op": "object", "oid": "P1", "deadline_unix_ms": time.Now().Add(10 * time.Millisecond).UnixMilli()},
	}
	for i, req := range cases {
		resp := send(req)
		if !strings.Contains(resp.Err, overloadMarker) {
			t.Fatalf("case %d: err = %q, want the typed overload marker", i, resp.Err)
		}
	}
	if ac.Expired.Value() != uint64(len(cases)) {
		t.Fatalf("Expired = %d, want %d", ac.Expired.Value(), len(cases))
	}
	// A healthy budget is served.
	resp := send(map[string]any{"op": "object", "oid": "P1", "budget_ms": 5000})
	if resp.Err != "" || !resp.Found {
		t.Fatalf("budgeted read = %+v", resp)
	}
}

// TestRemoteOverloadTypedError drives a shed end to end through
// RemoteSource: the wire error must unwrap to ErrOverloaded so callers
// can distinguish retryable pushback from failure.
func TestRemoteOverloadTypedError(t *testing.T) {
	ac := NewAdmissionController(AdmissionConfig{MaxInflight: 1})
	_, addr := startOverloadServer(t, ac)
	remote, err := Dial("persons", addr, NewTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// Hold the only permit so the next read cannot be admitted; with no
	// queue configured it sheds immediately.
	if err := ac.Acquire(1, time.Time{}); err != nil {
		t.Fatal(err)
	}
	_, err = remote.FetchObject("P1")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("FetchObject under load = %v, want ErrOverloaded", err)
	}
	ac.Release(1)
	if _, err := remote.FetchObject("P1"); err != nil {
		t.Fatalf("FetchObject after release: %v", err)
	}
}

// TestDrainShedsReadsServesExempt pins the drain contract: while
// draining, data reads shed with the typed retryable error but health
// and topology ops still answer, and Drain itself completes once
// in-flight work finishes.
func TestDrainShedsReadsServesExempt(t *testing.T) {
	ac := NewAdmissionController(AdmissionConfig{})
	server, addr := startOverloadServer(t, ac)
	server.Obs = obs.NewRegistry()
	remote, err := Dial("persons", addr, NewTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if _, err := remote.FetchObject("P1"); err != nil {
		t.Fatal(err)
	}

	// A (simulated) in-flight op holds Drain open; while it waits, the
	// drain semantics must already be visible on live connections.
	server.inflight.Add(1)
	drained := make(chan error, 1)
	go func() { drained <- server.Drain(context.Background()) }()
	waitFor(t, func() bool { return server.Draining() })

	_, err = remote.FetchObject("P1")
	if !errors.Is(err, ErrOverloaded) || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("data read while draining = %v, want draining ErrOverloaded", err)
	}
	if _, err := remote.FetchStats(); err != nil {
		t.Fatalf("stats while draining: %v", err)
	}
	if ac.ShedReads.Value() == 0 {
		t.Fatal("draining shed not counted")
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned with work in flight: %v", err)
	default:
	}

	server.inflight.Add(-1)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if ac.Drains.Value() != 1 {
		t.Fatalf("Drains = %d, want 1", ac.Drains.Value())
	}
	// The listener is gone: new connections fail outright.
	if conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("dial succeeded after drain")
	}
}

// TestDrainTimeout verifies the operator escape hatch: a context
// deadline bounds how long Drain waits for stuck in-flight work.
func TestDrainTimeout(t *testing.T) {
	server, _ := startOverloadServer(t, nil)
	server.inflight.Add(1) // never released: a wedged op
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := server.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with wedged op = %v, want DeadlineExceeded", err)
	}
}

// TestFeedSubscribeStreamCap verifies MaxStreams: feed subscriptions
// beyond the cap are refused with the typed retryable error in the
// handshake, and a released slot admits again.
func TestFeedSubscribeStreamCap(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("persons", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	w := New(src)
	w.Feed = feed.NewHub(feed.Options{RingSize: 8})
	if _, err := w.DefineView("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	server := NewServer(src)
	server.Feed = w.Feed
	ac := NewAdmissionController(AdmissionConfig{MaxStreams: 1})
	server.Admission = ac
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = server.Serve(ln) }()
	t.Cleanup(server.Close)
	addr := ln.Addr().String()

	fc, err := DialFeed(addr, FeedRequest{View: "YP"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = DialFeed(addr, FeedRequest{View: "YP"})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second subscription = %v, want ErrOverloaded", err)
	}
	if ac.ShedStreams.Value() == 0 {
		t.Fatal("ShedStreams not counted")
	}
	fc.Close()
	waitFor(t, func() bool { return ac.Streams() == 0 })
	fc2, err := DialFeed(addr, FeedRequest{View: "YP"})
	if err != nil {
		t.Fatalf("subscription after release: %v", err)
	}
	fc2.Close()
}
