package warehouse

import (
	"fmt"
	"testing"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// twoSourceFixture builds two relation-like sources behind one integrator.
func twoSourceFixture(t testing.TB) (*Integrator, map[string]*store.Store, map[string]*Source) {
	t.Helper()
	i := NewIntegrator()
	stores := map[string]*store.Store{}
	sources := map[string]*Source{}
	for n, seed := range map[string]int64{"east": 1, "west": 2} {
		s := store.New(store.Options{ParentIndex: true, LabelIndex: true})
		// Distinct OIDs per source: RelationLike uses fixed OIDs, so
		// build by hand with a prefix.
		buildPrefixed(s, n, seed)
		tr := NewTransport(0)
		src := NewSource(n, s, oem.OID(n+"_REL"), Level2, tr)
		src.DrainReports()
		if _, err := i.AddSource(src); err != nil {
			t.Fatal(err)
		}
		stores[n] = s
		sources[n] = src
	}
	return i, stores, sources
}

// buildPrefixed creates <p>_REL -> <p>_r0 -> tuples with age fields, all
// OIDs prefixed so two sources never collide (universally unique OIDs).
func buildPrefixed(s *store.Store, p string, seed int64) {
	var tuples []oem.OID
	for t := 0; t < 4; t++ {
		age := oem.OID(fmt.Sprintf("%s_A%d", p, t))
		s.MustPut(oem.NewAtom(age, "age", oem.Int(int64(20+t*20+int(seed)))))
		tup := oem.OID(fmt.Sprintf("%s_T%d", p, t))
		s.MustPut(oem.NewSet(tup, "tuple", age))
		tuples = append(tuples, tup)
	}
	s.MustPut(oem.NewSet(oem.OID(p+"_r0"), "r0", tuples...))
	s.MustPut(oem.NewSet(oem.OID(p+"_REL"), "relations", oem.OID(p+"_r0")))
}

func TestIntegratorRoutesBySource(t *testing.T) {
	i, stores, sources := twoSourceFixture(t)
	for n := range sources {
		q := query.MustParse(fmt.Sprintf("SELECT %s_REL.r0.tuple X WHERE X.age > 30", n))
		if _, err := i.DefineView(n, "SEL", q, ViewConfig{Screening: true}); err != nil {
			t.Fatal(err)
		}
	}
	// Update one source only; only its view moves.
	east := stores["east"]
	if err := east.Modify("east_A0", oem.Int(99)); err != nil {
		t.Fatal(err)
	}
	if _, err := i.Pump(); err != nil {
		t.Fatal(err)
	}
	we, _ := i.Warehouse("east")
	ve, _ := we.View("SEL")
	gotE, _ := ve.MV.Members()
	if !contains(gotE, "east_T0") {
		t.Fatalf("east view missing east_T0: %v", gotE)
	}
	ww, _ := i.Warehouse("west")
	vw, _ := ww.View("SEL")
	if vw.Stats.Reports.Value() != 0 {
		t.Fatalf("west view saw %d reports for an east update", vw.Stats.Reports.Value())
	}
}

func TestIntegratorUnionView(t *testing.T) {
	// DefineUnionView anchors one query at every source, so the sources
	// must share the entry OID; member OIDs stay globally unique.
	stores := map[string]*store.Store{}
	shared := NewIntegrator()
	for _, n := range []string{"a", "b"} {
		s := store.New(store.Options{ParentIndex: true, LabelIndex: true})
		// Same entry OID "REL" in both stores; member OIDs prefixed.
		var tuples []oem.OID
		for t2 := 0; t2 < 3; t2++ {
			age := oem.OID(fmt.Sprintf("%s_A%d", n, t2))
			s.MustPut(oem.NewAtom(age, "age", oem.Int(int64(25+t2*25))))
			tup := oem.OID(fmt.Sprintf("%s_T%d", n, t2))
			s.MustPut(oem.NewSet(tup, "tuple", age))
			tuples = append(tuples, tup)
		}
		s.MustPut(oem.NewSet("r0", "r0", tuples...))
		s.MustPut(oem.NewSet("REL", "relations", "r0"))
		tr := NewTransport(0)
		src := NewSource(n, s, "REL", Level2, tr)
		src.DrainReports()
		if _, err := shared.AddSource(src); err != nil {
			t.Fatal(err)
		}
		stores[n] = s
	}
	q := query.MustParse("SELECT REL.r0.tuple X WHERE X.age > 30")
	if err := shared.DefineUnionView("BIG", q, ViewConfig{Screening: true}, "a", "b"); err != nil {
		t.Fatal(err)
	}
	members, err := shared.UnionMembers("BIG")
	if err != nil {
		t.Fatal(err)
	}
	// ages 25,50,75 per source: two qualify each.
	if !oem.SameMembers(members, []oem.OID{"a_T1", "a_T2", "b_T1", "b_T2"}) {
		t.Fatalf("union = %v", members)
	}
	// Maintenance flows through per source.
	if err := stores["a"].Modify("a_A0", oem.Int(31)); err != nil {
		t.Fatal(err)
	}
	if _, err := shared.Pump(); err != nil {
		t.Fatal(err)
	}
	members, _ = shared.UnionMembers("BIG")
	if !contains(members, "a_T0") {
		t.Fatalf("union after update = %v", members)
	}
	// Duplicate union name rejected.
	if err := shared.DefineUnionView("BIG", q, ViewConfig{}, "a"); err == nil {
		t.Fatal("duplicate union accepted")
	}
}

func TestIntegratorErrors(t *testing.T) {
	i := NewIntegrator()
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("only", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	if _, err := i.AddSource(src); err != nil {
		t.Fatal(err)
	}
	if _, err := i.AddSource(src); err == nil {
		t.Fatal("duplicate source accepted")
	}
	if _, err := i.DefineView("nosuch", "V", query.MustParse("SELECT ROOT.professor X"), ViewConfig{}); err == nil {
		t.Fatal("unknown source accepted")
	}
	if err := i.ProcessReport(&UpdateReport{Source: "ghost"}); err == nil {
		t.Fatal("report from unknown source accepted")
	}
	if _, err := i.UnionMembers("nosuch"); err == nil {
		t.Fatal("unknown union accepted")
	}
}

// TestInterferenceDetectionAndConvergence reproduces the Section 5.1
// consistency discussion: the warehouse processes reports in delayed
// batches while the autonomous source keeps changing, so query backs
// observe later states. The interference counter must notice, and the
// view must still converge once all reports are processed.
func TestInterferenceDetectionAndConvergence(t *testing.T) {
	s := store.NewDefault()
	db := workload.RelationLike(s, workload.RelationConfig{
		Relations: 1, TuplesPerRelation: 6, FieldsPerTuple: 2, Seed: 4,
	})
	tr := NewTransport(0)
	src := NewSource("rel", s, "REL", Level1, tr) // level 1 maximizes query backs
	src.DrainReports()
	w := New(src)
	v, err := w.DefineView("SEL", query.MustParse("SELECT REL.r0.tuple X WHERE X.age > 40"), ViewConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var sets, atoms []oem.OID
	sets = append(sets, db.Relations[0].OID)
	sets = append(sets, db.Relations[0].Tuples...)
	for _, tu := range db.Relations[0].Tuples {
		kids, _ := s.Children(tu)
		atoms = append(atoms, kids...)
	}
	stream := workload.NewStream(s, workload.StreamConfig{
		Seed: 8, Mix: workload.Mix{Insert: 2, Delete: 1, Modify: 7}, ValueRange: 90,
	}, sets, atoms)
	// Apply updates in bursts of 5, shipping the whole burst before
	// processing: every report after the first in a burst is processed
	// with the source already ahead.
	for burst := 0; burst < 20; burst++ {
		for k := 0; k < 5; k++ {
			stream.Next()
		}
		if err := w.ProcessAll(src.DrainReports()); err != nil {
			t.Fatal(err)
		}
	}
	if v.Stats.Interference.Value() == 0 {
		t.Fatal("no interference detected despite batched processing")
	}
	// Convergence: after the final batch the view equals a fresh
	// evaluation.
	fresh, err := query.NewEvaluator(s).Eval(v.MV.Query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.MV.Members()
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, fresh) {
		t.Fatalf("diverged: view %v != fresh %v", got, fresh)
	}
}

func contains(oids []oem.OID, want oem.OID) bool {
	for _, o := range oids {
		if o == want {
			return true
		}
	}
	return false
}
