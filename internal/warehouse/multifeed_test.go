package warehouse

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"gsv/internal/feed"
	"gsv/internal/oem"
)

// TestMultiFeedWireGolden pins the exact wire bytes of the multi-view
// subscribe protocol: the request frame, the hello, and both FeedFrame
// kinds. These encodings are a compatibility surface — replicas and
// primaries upgrade independently — so a marshalling change that alters
// them must show up here as a diff, not in production as a version skew.
func TestMultiFeedWireGolden(t *testing.T) {
	cases := []struct {
		name string
		v    any
		want string
	}{
		{
			"request",
			feedRequest{Views: []string{"HOT", "COLD"}, Froms: map[string]uint64{"HOT": 41}, Snapshot: true},
			`{"view":"","snapshot":true,"views":["HOT","COLD"],"froms":{"HOT":41}}`,
		},
		{
			"request-star",
			feedRequest{Views: []string{"*"}, Froms: map[string]uint64{}, Snapshot: true},
			`{"view":"","snapshot":true,"views":["*"]}`,
		},
		{
			"hello",
			feedHello{Seq: 310, Views: []FeedViewHello{
				{View: "HOT", Cursor: 41, Oldest: 12},
				{View: "COLD", Cursor: 7, Oldest: 1, Snapshot: &FeedSnapshot{Cursor: 7, Members: []oem.OID{"P1", "P2"}}},
			}},
			`{"cursor":0,"oldest":0,"seq":310,"views":[` +
				`{"view":"HOT","cursor":41,"oldest":12},` +
				`{"view":"COLD","cursor":7,"oldest":1,"snapshot":{"cursor":7,"members":["P1","P2"]}}]}`,
		},
		{
			"frame-event",
			FeedFrame{Event: &feed.Event{View: "HOT", Cursor: 42, Seq: 310, Kind: "modify", N1: "f0_3", Insert: []oem.OID{"t0_3"}}},
			`{"event":{"view":"HOT","cursor":42,"seq":310,"kind":"modify","n1":"f0_3","insert":["t0_3"]}}`,
		},
		{
			"frame-progress",
			FeedFrame{Progress: &FeedProgress{Seq: 311, Cursors: map[string]uint64{"HOT": 42}}},
			`{"progress":{"seq":311,"cursors":{"HOT":42}}}`,
		},
	}
	for _, tc := range cases {
		got, err := json.Marshal(tc.v)
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		if string(got) != tc.want {
			t.Errorf("%s wire encoding changed:\n got  %s\n want %s", tc.name, got, tc.want)
		}
	}

	// Decode direction: the golden frames must round-trip through the
	// server's frame decoder.
	var req feedRequest
	if err := decodeFrame([]byte(cases[0].want), &req); err != nil {
		t.Fatalf("decode request: %v", err)
	}
	if len(req.Views) != 2 || req.Views[0] != "HOT" || req.Froms["HOT"] != 41 || !req.Snapshot {
		t.Fatalf("request did not round-trip: %+v", req)
	}
	var fr FeedFrame
	if err := decodeFrame([]byte(cases[3].want), &fr); err != nil {
		t.Fatalf("decode event frame: %v", err)
	}
	if fr.Event == nil || fr.Progress != nil || fr.Event.Cursor != 42 || len(fr.Event.Insert) != 1 {
		t.Fatalf("event frame did not round-trip: %+v", fr)
	}
	if err := decodeFrame([]byte(cases[4].want), &fr); err != nil {
		t.Fatalf("decode progress frame: %v", err)
	}
	if fr.Progress == nil || fr.Progress.Seq != 311 || fr.Progress.Cursors["HOT"] != 42 {
		t.Fatalf("progress frame did not round-trip: %+v", fr)
	}
}

// oldFeedServer imitates a server that predates multi-view
// subscriptions: it reads the mode line and the request frame, ignores
// the views field entirely, and answers hello for the (empty)
// single-view name.
func oldFeedServer(t *testing.T, hello string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				if _, err := br.ReadString('\n'); err != nil { // mode line
					return
				}
				if _, err := br.ReadString('\n'); err != nil { // request frame
					return
				}
				_, _ = io.WriteString(conn, hello+"\n")
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestDialMultiFeedOldServer pins the version-mismatch contract: both
// shapes an old server can answer with — the unknown-view error for the
// empty view name, and (when a view literally named "" exists) a live
// single-view hello with no per-view state — surface as
// ErrUnsupportedRequest, so callers can degrade to per-view DialFeed.
func TestDialMultiFeedOldServer(t *testing.T) {
	req := MultiFeedRequest{Views: []string{"*"}, Snapshot: true, IOTimeout: 2 * time.Second}

	errHello := fmt.Sprintf(`{"err":%q}`, feed.ErrUnknownView.Error()+": ")
	if _, err := DialMultiFeed(oldFeedServer(t, errHello), req); !errors.Is(err, ErrUnsupportedRequest) {
		t.Fatalf("old server error hello: err = %v, want ErrUnsupportedRequest", err)
	}

	liveHello := `{"cursor":5,"oldest":1}`
	if _, err := DialMultiFeed(oldFeedServer(t, liveHello), req); !errors.Is(err, ErrUnsupportedRequest) {
		t.Fatalf("old server live hello: err = %v, want ErrUnsupportedRequest", err)
	}

	// A genuine error (unknown view on a current server) must NOT be
	// flattened into the version mismatch.
	otherHello := fmt.Sprintf(`{"err":%q}`, feed.ErrUnknownView.Error()+": NOPE")
	if _, err := DialMultiFeed(oldFeedServer(t, otherHello), req); err == nil || errors.Is(err, ErrUnsupportedRequest) {
		t.Fatalf("real unknown-view error misclassified: %v", err)
	}
}
