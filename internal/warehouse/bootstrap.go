package warehouse

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"gsv/internal/store"
	"gsv/internal/wal"
)

// This file exposes a read-only view of a warehouse checkpoint so other
// processes — replica nodes above all — can bootstrap from a primary's
// checkpoint directory without opening its write-ahead log or knowing
// the section layout. The section names are package-private on purpose:
// the checkpoint format belongs to the warehouse, and BootstrapState is
// the stable surface replicas consume.

// BootstrapView is one view's identity as recorded in a checkpoint.
type BootstrapView struct {
	// Name is the view's name (and view-object OID).
	Name string
	// Query is the view's definition query text.
	Query string
	// Stale reports whether the view was quarantined at checkpoint time;
	// a replica bootstrapping a stale view should reconcile against a
	// fresh snapshot before serving it.
	Stale bool
	// FeedCursor is the view's changefeed cursor at checkpoint time.
	FeedCursor uint64
}

// BootstrapState is everything a replica needs from a checkpoint: the
// serialized view store and the per-view identities and feed cursors.
type BootstrapState struct {
	// Seq is the base update sequence the checkpoint covers.
	Seq uint64
	// StoreBytes is the serialized view store (store.Store.Load format):
	// view objects and delegates for every checkpointed view.
	StoreBytes []byte
	// Views lists the checkpointed views.
	Views []BootstrapView
}

// ReadBootstrapState loads the newest valid checkpoint in dir and
// extracts the replica-relevant sections. It returns nil (no error) when
// the directory holds no valid checkpoint — the caller then bootstraps
// from a live snapshot instead.
func ReadBootstrapState(dir string) (*BootstrapState, error) {
	ckpt, err := wal.LatestCheckpointIn(dir)
	if err != nil {
		return nil, err
	}
	if ckpt == nil {
		return nil, nil
	}
	return bootstrapFromCheckpoint(ckpt)
}

// bootstrapFromCheckpoint extracts a BootstrapState from one checkpoint.
func bootstrapFromCheckpoint(ckpt *wal.Checkpoint) (*BootstrapState, error) {
	bs := &BootstrapState{Seq: ckpt.Seq, StoreBytes: ckpt.Section(ckptSectionStore)}
	cursors := map[string]uint64{}
	if raw := ckpt.Section(ckptSectionFeed); len(raw) > 0 {
		if err := json.Unmarshal(raw, &cursors); err != nil {
			return nil, fmt.Errorf("warehouse: bootstrap feed cursors: %w", err)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(ckpt.Section(ckptSectionViews)))
	for {
		var m viewMeta
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("warehouse: bootstrap view metadata: %w", err)
		}
		bs.Views = append(bs.Views, BootstrapView{
			Name:       m.Name,
			Query:      m.Query,
			Stale:      ViewState(m.State) != ViewFresh,
			FeedCursor: cursors[m.Name],
		})
	}
	return bs, nil
}

// LoadStore materializes the checkpoint's view store into a fresh store
// configured exactly like a warehouse view store (parent and label
// indexes, dangling references allowed).
func (bs *BootstrapState) LoadStore() (*store.Store, error) {
	s := store.New(store.Options{ParentIndex: true, LabelIndex: true, AllowDangling: true})
	if len(bs.StoreBytes) == 0 {
		return s, nil
	}
	if err := s.Load(bytes.NewReader(bs.StoreBytes)); err != nil {
		return nil, fmt.Errorf("warehouse: bootstrap view store: %w", err)
	}
	return s, nil
}
