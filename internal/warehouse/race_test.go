package warehouse

import (
	"net"
	"sync"
	"testing"

	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// TestConcurrentBroadcastQueryBacksAndStats is the regression test for
// the stats data race: before WrapperStats/ViewStats/RemoteStats moved to
// atomic counters, the server's query goroutines incremented plain ints
// (src.Stats.Queries++) while broadcasts, maintenance and stats reads ran
// on other goroutines. Run under -race (the tier-1 suite does), this
// hammers all three paths at once:
//
//   - a mutator applies source updates and broadcasts the reports,
//   - a warehouse client issues query backs (FetchObject/FetchEval),
//   - readers poll the wrapper/view counters and the stats wire request.
func TestConcurrentBroadcastQueryBacksAndStats(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("persons", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()

	reg := obs.NewRegistry()
	w := New(src)
	w.EnableObs(reg)
	v, err := w.DefineView("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"),
		ViewConfig{Screening: true})
	if err != nil {
		t.Fatal(err)
	}

	server := NewServer(src)
	server.Obs = reg
	server.Traces = w.Traces
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = server.Serve(ln) }()
	t.Cleanup(server.Close)

	remote, err := Dial("persons", ln.Addr().String(), NewTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(remote.Close)

	const rounds = 40
	done := make(chan struct{})
	var wg sync.WaitGroup

	// Mutator: source updates, local maintenance, broadcast to streams.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < rounds; i++ {
			reports, err := src.Modify("A1", oem.Int(int64(30+i%40)))
			if err == nil {
				err = w.ProcessAll(reports)
			}
			if err == nil {
				err = server.Broadcast(reports)
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Query-back client: drives the server's wrapper concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := remote.FetchObject("P1"); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Stats readers: raw counters and the wire request.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = src.Stats.Queries.Value()
			_ = src.Stats.ObjectsTouched.Value()
			_ = v.Stats.Reports.Value()
			_ = v.Stats.QueryBacks.Value()
			_ = reg.Snapshot()
			if _, err := remote.FetchStats(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Wait()
	if got := v.Stats.Reports.Value(); got != rounds {
		t.Fatalf("view processed %d reports, want %d", got, rounds)
	}
	if src.Stats.Queries.Value() == 0 {
		t.Fatal("wrapper answered no queries")
	}
}
