package warehouse

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gsv/internal/core"
	"gsv/internal/feed"
	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
)

// RemoteStats counts how one view's helper-function calls were answered.
// All fields are atomic counters (obs.Counter): increments on the
// maintenance path may run concurrently with reads from other goroutines
// (the report-reader, a metrics scrape, the stats wire request).
type RemoteStats struct {
	// LocalAnswers counts calls satisfied from the report or the cache.
	LocalAnswers obs.Counter
	// SourceCalls counts calls that resulted in at least one query back.
	SourceCalls obs.Counter

	// Per-helper call counts: the Algorithm 1 helper functions plus the
	// label/fetch accessors the implementation adds.
	LabelCalls    obs.Counter
	FetchCalls    obs.Counter
	PathCalls     obs.Counter
	AncestorCalls obs.Counter
	EvalCalls     obs.Counter

	// CacheHits counts helper calls the auxiliary cache answered
	// (including negative answers derived from the mirror invariant);
	// CacheMisses counts calls where the cache was consulted but a query
	// back was still needed.
	CacheHits   obs.Counter
	CacheMisses obs.Counter
}

// remoteStatsSnap is a plain-value copy of RemoteStats for diffing around
// one processed report.
type remoteStatsSnap struct {
	label, fetch, path, ancestor, eval uint64
	cacheHits, cacheMisses             uint64
}

func (s *RemoteStats) snap() remoteStatsSnap {
	return remoteStatsSnap{
		label:       s.LabelCalls.Value(),
		fetch:       s.FetchCalls.Value(),
		path:        s.PathCalls.Value(),
		ancestor:    s.AncestorCalls.Value(),
		eval:        s.EvalCalls.Value(),
		cacheHits:   s.CacheHits.Value(),
		cacheMisses: s.CacheMisses.Value(),
	}
}

// helpersSince converts the counter delta post-pre into trace helper
// counts.
func (post remoteStatsSnap) helpersSince(pre remoteStatsSnap) obs.HelperCounts {
	return obs.HelperCounts{
		Label:    int(post.label - pre.label),
		Fetch:    int(post.fetch - pre.fetch),
		Path:     int(post.path - pre.path),
		Ancestor: int(post.ancestor - pre.ancestor),
		Eval:     int(post.eval - pre.eval),
	}
}

// RemoteAccess implements core.BaseAccess for a warehouse view: each helper
// function is answered, in order of preference, from the current update
// report's enrichment (Level 2/3), from the auxiliary cache, or by a query
// back to the source (Section 5.1). Algorithm 1 itself is unchanged.
type RemoteAccess struct {
	Src   SourceAPI
	Def   core.SimpleDef
	Cache *AuxCache // nil under CacheNone
	Stats RemoteStats

	report *UpdateReport
}

// SetReport installs the report whose update is about to be maintained;
// its enrichment is consulted before any query back.
func (a *RemoteAccess) SetReport(r *UpdateReport) { a.report = r }

func (a *RemoteAccess) local()  { a.Stats.LocalAnswers.Inc() }
func (a *RemoteAccess) remote() { a.Stats.SourceCalls.Inc() }

// Label implements core.BaseAccess.
func (a *RemoteAccess) Label(n oem.OID) (string, error) {
	a.Stats.LabelCalls.Inc()
	if r := a.report; r != nil {
		if o := r.Objects[n]; o != nil {
			a.local()
			return o.Label, nil
		}
	}
	if a.Cache != nil {
		if a.Cache.Has(n) {
			a.Stats.CacheHits.Inc()
			a.local()
			return a.Cache.store.Label(n)
		}
		a.Stats.CacheMisses.Inc()
	}
	a.remote()
	o, err := a.Src.FetchObject(n)
	if err != nil {
		return "", err
	}
	return o.Label, nil
}

// Fetch implements core.BaseAccess. Set values come from the report or the
// cache when exact; atomic values require a full cache.
func (a *RemoteAccess) Fetch(n oem.OID) (*oem.Object, error) {
	a.Stats.FetchCalls.Inc()
	if r := a.report; r != nil {
		if o := r.Objects[n]; o != nil {
			a.local()
			return o.Clone(), nil
		}
	}
	if a.Cache != nil {
		if a.Cache.Has(n) {
			o, err := a.Cache.store.Get(n)
			if err == nil && (o.IsSet() || a.Cache.HasValues()) {
				a.Stats.CacheHits.Inc()
				a.local()
				return o, nil
			}
		}
		a.Stats.CacheMisses.Inc()
	}
	a.remote()
	return a.Src.FetchObject(n)
}

// Path implements core.BaseAccess: path(ROOT, n).
func (a *RemoteAccess) Path(root, n oem.OID) (pathexpr.Path, bool, error) {
	a.Stats.PathCalls.Inc()
	if r := a.report; r != nil && r.Path != nil && n == r.Update.N1 && root == a.Def.Entry {
		a.local()
		return r.Path.Labels.Clone(), true, nil
	}
	if a.Cache != nil {
		// The cache mirrors every object on a relevant path. An unmirrored
		// object has no path that could prefix sel_path.cond_path, which
		// is all Algorithm 1 asks; report "not a relevant descendant".
		a.Stats.CacheHits.Inc()
		a.local()
		if n == root {
			return pathexpr.Path{}, true, nil
		}
		if !a.Cache.Has(n) {
			return nil, false, nil
		}
		return a.Cache.Access().Path(root, n)
	}
	a.remote()
	info, ok, err := a.Src.FetchPath(n)
	if err != nil || !ok {
		return nil, false, err
	}
	return info.Labels, true, nil
}

// Ancestor implements core.BaseAccess: ancestor(n, p).
func (a *RemoteAccess) Ancestor(n oem.OID, p pathexpr.Path) (oem.OID, bool, error) {
	a.Stats.AncestorCalls.Inc()
	if len(p) == 0 {
		a.local()
		return n, true, nil
	}
	if r := a.report; r != nil && r.Path != nil && n == r.Update.N1 {
		if y, ok := ancestorFromPath(a.Def.Entry, r.Path, p); ok {
			a.local()
			return y, true, nil
		}
	}
	if a.Cache != nil {
		a.Stats.CacheHits.Inc()
		a.local()
		if !a.Cache.Has(n) {
			return oem.NoOID, false, nil
		}
		return a.Cache.Access().Ancestor(n, p)
	}
	a.remote()
	return a.Src.FetchAncestor(n, p)
}

// ancestorFromPath answers ancestor(N1, p) from a Level-3 reported path:
// if p is a suffix of the reported labels, the ancestor is the object just
// above that suffix (or the root when the suffix is the whole path).
func ancestorFromPath(root oem.OID, info *PathInfo, p pathexpr.Path) (oem.OID, bool) {
	if !info.Labels.HasSuffix(p) {
		return oem.NoOID, false
	}
	idx := len(info.Labels) - len(p) // position above the suffix
	if idx == 0 {
		return root, true
	}
	return info.OIDs[idx-1], true
}

// EvalCond implements core.BaseAccess: eval(n, p, cond).
func (a *RemoteAccess) EvalCond(n oem.OID, p pathexpr.Path, cond core.CondTest) ([]oem.OID, error) {
	a.Stats.EvalCalls.Inc()
	// Example 7's shortcut: with an empty residual path the condition is
	// tested on the reported object itself, no source access needed.
	if len(p) == 0 {
		if r := a.report; r != nil {
			if o := r.Objects[n]; o != nil {
				a.local()
				if cond.HoldsObject(o) {
					return []oem.OID{n}, nil
				}
				return nil, nil
			}
		}
	}
	if a.Cache != nil && a.Cache.Has(n) {
		if a.Cache.HasValues() || cond.Always {
			a.Stats.CacheHits.Inc()
			a.local()
			return a.Cache.Access().EvalCond(n, p, cond)
		}
		// Partial cache: structure is local but values are not; one query
		// fetches the candidates with values, tested locally (Example 9).
		a.Stats.CacheMisses.Inc()
		a.remote()
		objs, err := a.Src.FetchEval(n, p)
		if err != nil {
			return nil, err
		}
		return filterCond(objs, cond), nil
	}
	if a.Cache != nil {
		a.Stats.CacheHits.Inc()
		a.local()
		return nil, nil // not mirrored: not on a relevant path
	}
	a.remote()
	objs, err := a.Src.FetchEval(n, p)
	if err != nil {
		return nil, err
	}
	return filterCond(objs, cond), nil
}

func filterCond(objs []*oem.Object, cond core.CondTest) []oem.OID {
	var out []oem.OID
	for _, o := range objs {
		if cond.HoldsObject(o) {
			out = append(out, o.OID)
		}
	}
	return oem.SortOIDs(out)
}

// ViewConfig selects the maintenance optimizations for one warehouse view.
type ViewConfig struct {
	Cache CacheMode
	// Screening discards reports whose labels cannot affect the view
	// before any other work (Section 5.1, scenario 2). Requires Level 2+
	// reports to be effective; Level 1 reports are never screened.
	Screening bool
	// Knowledge, when non-nil, additionally screens with parent→child
	// label pair knowledge (Section 5.2's closing idea).
	Knowledge *PathKnowledge
}

// ViewStats aggregates per-view maintenance outcomes. The fields are
// atomic counters so that the maintenance goroutine can increment them
// while metrics scrapes, the stats wire request, or test assertions read
// them concurrently.
type ViewStats struct {
	Reports  obs.Counter
	Screened obs.Counter
	// LocalOnly counts reports maintained with zero query backs.
	LocalOnly obs.Counter
	// QueryBacks counts source queries attributable to this view.
	QueryBacks obs.Counter
	// Interference counts reports processed while the autonomous source
	// had already moved past the reported update — any query back during
	// such processing observes a later state than the update (the
	// consistency hazard of Section 5.1, citing [ZGMHW95]). Algorithm 1's
	// decisions re-derive from current state and converge once the
	// remaining reports are processed; the counter makes the exposure
	// visible.
	Interference obs.Counter
	// DeltaInserts and DeltaDeletes total the membership delta sizes
	// actually applied to the view.
	DeltaInserts obs.Counter
	DeltaDeletes obs.Counter
	// StaleTransitions counts Fresh→Stale transitions (maintenance
	// failures and report-stream gaps).
	StaleTransitions obs.Counter
	// Repairs counts successful resyncs back to Fresh; RepairFailures
	// counts repair attempts that left the view Stale.
	Repairs        obs.Counter
	RepairFailures obs.Counter
	// SkippedStale counts reports dropped because the view was
	// quarantined (Stale/Repairing) when they arrived.
	SkippedStale obs.Counter
}

// WView is one materialized view hosted at the warehouse.
type WView struct {
	Name   string
	MV     *core.MaterializedView
	Def    core.SimpleDef
	Access *RemoteAccess
	Maint  *core.SimpleMaintainer
	Cache  *AuxCache
	Config ViewConfig
	Stats  ViewStats

	feed       *feed.Hub
	fullLabels map[string]bool

	// Observability, nil unless EnableObs ran before DefineView: a latency
	// histogram for whole-report maintenance, and a sink for per-update
	// maintenance traces.
	maintainLatency *obs.Histogram
	sink            obs.TraceSink
	// Propagation tracing (docs/OBSERVABILITY.md): the node name and
	// chain ring mirror the warehouse's, propagation observes
	// origin→maintained visibility latency, and watermark holds the
	// newest origin stamp (Unix nanos) reflected in this view's
	// membership. All nil/zero until EnableObs.
	node        string
	chains      *obs.ChainRing
	propagation *obs.Histogram
	watermark   atomic.Int64
	// lastComputeNanos/lastApplyNanos are the Algorithm 1 sub-stage
	// timings of the last Maint.Apply, fed by the maintainer's
	// StageObserver under procMu; the span chain splits the maintain
	// span with them.
	lastComputeNanos int64
	lastApplyNanos   int64
	// lastInserts/lastDeletes capture the most recent applied delta sizes;
	// written by the chained DeltaObserver (or level1Modify) on the
	// maintenance path, read immediately after by process(). Not for
	// concurrent readers — those use Stats.DeltaInserts/DeltaDeletes.
	lastInserts, lastDeletes int

	// procMu serializes maintenance and repair on this view: reports are
	// processed on one goroutine while the background repair loop resyncs
	// on another.
	procMu sync.Mutex
	// accum, when non-nil, collects this view's applied deltas instead of
	// publishing them per update; ProcessBatch installs it for the span of
	// one batch and publishes the coalesced result once. Guarded by
	// procMu, like all maintenance state.
	accum *core.DeltaCoalescer
	// state holds the ViewState (staleness.go); membership reads are
	// served in every state, but only Fresh views receive incremental
	// maintenance.
	state atomic.Int32
	// staleMu guards staleReason and staleSince.
	staleMu     sync.Mutex
	staleReason string
	staleSince  time.Time
	// resyncSkipSeq is the source sequence number a resync is known to
	// reflect: queued reports at or below it are already incorporated in
	// the refetched membership and are skipped instead of replayed.
	resyncSkipSeq uint64
}

// Warehouse hosts materialized views over one source. Multi-source
// deployments (the paper's Figure 6) compose Warehouse values through a
// Federation (federation.go): one per source shard, each maintaining
// that partition's member views, with a per-source supervisor
// (health.go) isolating a slow or dead source to exactly its own
// partition. See docs/WAREHOUSE.md, "Multi-source federation & failure
// model".
type Warehouse struct {
	Src   SourceAPI
	Store *store.Store
	// Feed is the warehouse's view-delta changefeed: every maintained
	// view (all cache modes, and cluster member views) publishes its
	// applied membership deltas here automatically. Replace it before
	// the first DefineView/NewCluster call to use non-default options.
	Feed *feed.Hub
	// mu guards views: DefineView and lookups may race with the
	// background repair loop.
	mu    sync.RWMutex
	views map[string]*WView

	// Sched fans ProcessBatch's per-view work out over a bounded worker
	// pool (default runtime.NumCPU()); ProcessReport/ProcessAll stay
	// serial and per-report.
	Sched *core.Scheduler

	// dur is the durability state when EnableDurability has run; nil
	// otherwise. See durability.go.
	dur *durability

	// Obs, when set via EnableObs, receives every per-view counter plus
	// maintenance latency histograms.
	Obs *obs.Registry
	// Traces retains recent maintenance traces for the stats wire
	// request; TraceSink receives every trace (defaults to Traces.Add).
	Traces    *obs.TraceRing
	TraceSink obs.TraceSink
	// Node names this warehouse in cross-node span chains and
	// propagation metrics (default "primary"); set it before EnableObs.
	Node string
	// Chains retains recent propagation span chains for the trace wire
	// request; nil (tracing off) until EnableObs.
	Chains *obs.ChainRing

	// headOrigin is the newest origin stamp (Unix nanos) seen on any
	// ingested report — the freshness watermark head the per-view
	// watermarks lag behind.
	headOrigin atomic.Int64
	// walLatency observes origin→WAL-durable latency on durable
	// warehouses; nil until EnableObs.
	walLatency *obs.Histogram
}

// New returns a warehouse over src with its own view store.
func New(src SourceAPI) *Warehouse {
	return &Warehouse{
		Src: src,
		Store: store.New(store.Options{
			ParentIndex: true, LabelIndex: true, AllowDangling: true,
		}),
		Feed:  feed.NewHub(feed.Options{}),
		Sched: core.NewScheduler(0),
		views: make(map[string]*WView),
	}
}

// EnableObs turns on metrics and maintenance tracing: every view —
// already defined or defined afterwards — registers its counters and a
// maintenance-latency histogram with reg, and emits one obs.Trace per
// processed report into a ring of recent traces (retained for the stats
// wire request). Observability is off by default and costs nothing when
// off.
func (w *Warehouse) EnableObs(reg *obs.Registry) {
	w.Obs = reg
	if w.Traces == nil {
		w.Traces = obs.NewTraceRing(256)
	}
	if w.TraceSink == nil {
		w.TraceSink = w.Traces.Add
	}
	reg.Help("gsv_view_reports_total", "update reports routed to the view")
	reg.Help("gsv_view_screened_total", "reports discarded by label/path screening")
	reg.Help("gsv_view_local_only_total", "reports maintained with zero query backs")
	reg.Help("gsv_view_query_backs_total", "source queries issued during maintenance")
	reg.Help("gsv_view_interference_total", "reports processed after the source moved past them")
	reg.Help("gsv_view_delta_inserts_total", "view membership insertions applied")
	reg.Help("gsv_view_delta_deletes_total", "view membership deletions applied")
	reg.Help("gsv_view_helper_calls_total", "Algorithm 1 helper-function calls, by helper")
	reg.Help("gsv_view_cache_hits_total", "helper calls answered by the auxiliary cache")
	reg.Help("gsv_view_cache_misses_total", "helper calls where the cache could not avoid a query back")
	reg.Help("gsv_view_maintain_seconds", "whole-report maintenance latency per view")
	reg.Help("gsv_view_stale_total", "Fresh-to-Stale transitions (failures and report gaps)")
	reg.Help("gsv_view_repairs_total", "successful resyncs back to Fresh")
	reg.Help("gsv_view_repair_failures_total", "repair attempts that left the view Stale")
	reg.Help("gsv_view_skipped_stale_total", "reports dropped while the view was quarantined")
	reg.Help("gsv_view_state", "view staleness state (0 fresh, 1 stale, 2 repairing)")
	reg.Help("gsv_traces_total", "maintenance traces emitted since startup")
	reg.GaugeFunc("gsv_traces_total", func() float64 { return float64(w.Traces.Total()) })
	// The warehouse store's MVCC gauges (docs/MVCC.md): live versions,
	// pinned snapshots, reclamation — gsdbwatch -stats renders them as
	// the STORE section.
	RegisterStoreObs(reg, w.Store, obs.L("store", w.nodeName()))
	// Propagation tracing (docs/OBSERVABILITY.md): span chains, the
	// origin-to-stage latency histogram family, and the freshness
	// watermarks the health endpoints and gsdbwatch -trace read.
	if w.Chains == nil {
		w.Chains = obs.NewChainRing(512)
	}
	ln := obs.L("node", w.nodeName())
	reg.Help("gsv_propagation_seconds", "origin-to-stage propagation latency, by stage/view/node")
	reg.Help("gsv_watermark_head_seconds", "newest origin stamp ingested on this node, as Unix seconds")
	reg.Help("gsv_view_watermark_seconds", "newest origin stamp visible in the view, as Unix seconds")
	reg.Help("gsv_view_freshness_lag_seconds", "how far the view's watermark trails the ingestion head")
	reg.Help("gsv_chains_total", "propagation span chains recorded since startup")
	reg.GaugeFunc("gsv_chains_total", func() float64 { return float64(w.Chains.Total()) }, ln)
	reg.GaugeFunc("gsv_watermark_head_seconds", func() float64 { return float64(w.headOrigin.Load()) / 1e9 }, ln)
	w.walLatency = reg.Histogram("gsv_propagation_seconds", nil, ln, obs.L("stage", "wal"))
	w.Sched.Metrics.RegisterObs(reg, "warehouse")
	// Views defined before EnableObs pick up their instruments now; views
	// defined after register inside DefineView.
	w.mu.RLock()
	defer w.mu.RUnlock()
	for _, v := range w.views {
		w.registerViewObs(v)
	}
}

// registerViewObs attaches one view's instruments to the warehouse
// registry. The counters stay owned by the view (hot path is a direct
// atomic add); the registry only adopts them for exposition.
func (w *Warehouse) registerViewObs(v *WView) {
	reg := w.Obs
	if reg == nil {
		return
	}
	lv := obs.L("view", v.Name)
	reg.RegisterCounter("gsv_view_reports_total", &v.Stats.Reports, lv)
	reg.RegisterCounter("gsv_view_screened_total", &v.Stats.Screened, lv)
	reg.RegisterCounter("gsv_view_local_only_total", &v.Stats.LocalOnly, lv)
	reg.RegisterCounter("gsv_view_query_backs_total", &v.Stats.QueryBacks, lv)
	reg.RegisterCounter("gsv_view_interference_total", &v.Stats.Interference, lv)
	reg.RegisterCounter("gsv_view_delta_inserts_total", &v.Stats.DeltaInserts, lv)
	reg.RegisterCounter("gsv_view_delta_deletes_total", &v.Stats.DeltaDeletes, lv)
	reg.RegisterCounter("gsv_view_stale_total", &v.Stats.StaleTransitions, lv)
	reg.RegisterCounter("gsv_view_repairs_total", &v.Stats.Repairs, lv)
	reg.RegisterCounter("gsv_view_repair_failures_total", &v.Stats.RepairFailures, lv)
	reg.RegisterCounter("gsv_view_skipped_stale_total", &v.Stats.SkippedStale, lv)
	reg.GaugeFunc("gsv_view_state", func() float64 { return float64(v.State()) }, lv)
	s := &v.Access.Stats
	reg.RegisterCounter("gsv_view_helper_calls_total", &s.LabelCalls, lv, obs.L("helper", "label"))
	reg.RegisterCounter("gsv_view_helper_calls_total", &s.FetchCalls, lv, obs.L("helper", "fetch"))
	reg.RegisterCounter("gsv_view_helper_calls_total", &s.PathCalls, lv, obs.L("helper", "path"))
	reg.RegisterCounter("gsv_view_helper_calls_total", &s.AncestorCalls, lv, obs.L("helper", "ancestor"))
	reg.RegisterCounter("gsv_view_helper_calls_total", &s.EvalCalls, lv, obs.L("helper", "eval"))
	reg.RegisterCounter("gsv_view_cache_hits_total", &s.CacheHits, lv)
	reg.RegisterCounter("gsv_view_cache_misses_total", &s.CacheMisses, lv)
	v.maintainLatency = reg.Histogram("gsv_view_maintain_seconds", nil, lv)
	v.sink = w.TraceSink
	v.node = w.nodeName()
	v.chains = w.Chains
	if v.chains != nil {
		ln := obs.L("node", v.node)
		v.propagation = reg.Histogram("gsv_propagation_seconds", nil, ln, obs.L("stage", "maintain"), lv)
		reg.GaugeFunc("gsv_view_watermark_seconds", func() float64 {
			return float64(v.watermark.Load()) / 1e9
		}, ln, lv)
		reg.GaugeFunc("gsv_view_freshness_lag_seconds", func() float64 {
			head, seen := w.headOrigin.Load(), v.watermark.Load()
			if head <= seen {
				return 0
			}
			return float64(head-seen) / 1e9
		}, ln, lv)
	}
	// Delta counters are fed by the chained observer in DefineView, so the
	// maintainer metrics carry only the per-stage latency histograms.
	v.Maint.Metrics = &core.MaintainerMetrics{
		ComputeLatency: reg.Histogram("gsv_view_compute_seconds", nil, lv),
		ApplyLatency:   reg.Histogram("gsv_view_apply_seconds", nil, lv),
	}
	if v.chains != nil {
		v.Maint.Metrics.StageObserver = v.noteMaintStage
	}
}

// DefineView registers a simple materialized view at the warehouse. The
// initial content is fetched from the source with one query; subsequent
// maintenance is driven by ProcessReport.
func (w *Warehouse) DefineView(name string, q *query.Query, cfg ViewConfig) (*WView, error) {
	w.mu.RLock()
	_, exists := w.views[name]
	w.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("%w: warehouse view %s", ErrViewExists, name)
	}
	def, ok := core.Simplify(q)
	if !ok {
		return nil, fmt.Errorf("%w: %s (the warehouse protocol of Section 5 maintains simple views)", ErrNotSimple, name)
	}
	if def.Within != "" {
		return nil, fmt.Errorf("warehouse: %s uses WITHIN; warehouse views are scoped to their source instead", name)
	}
	objs, err := w.Src.FetchQuery(q)
	if err != nil {
		return nil, err
	}
	oid := oem.OID(name)
	viewObj := oem.NewSet(oid, core.ViewLabel)
	for _, o := range objs {
		viewObj.Add(core.DelegateOID(oid, o.OID))
	}
	if err := w.Store.Put(viewObj); err != nil {
		return nil, err
	}
	// Base is nil: a warehouse view's base data lives at the source, and
	// all base access flows through RemoteAccess. (Recompute, which needs
	// Base, is not part of the warehouse protocol.)
	mv := &core.MaterializedView{OID: oid, Query: q, Base: nil, ViewStore: w.Store}
	for _, o := range objs {
		d := o.Clone()
		d.OID = core.DelegateOID(oid, o.OID)
		if err := w.Store.Put(d); err != nil {
			return nil, err
		}
	}
	var cache *AuxCache
	if cfg.Cache != CacheNone {
		cache, err = NewAuxCache(def, w.Src, cfg.Cache)
		if err != nil {
			return nil, err
		}
	}
	access := &RemoteAccess{Src: w.Src, Def: def, Cache: cache}
	maint := &core.SimpleMaintainer{View: mv, Def: def, Access: access}
	v := &WView{
		Name: name, MV: mv, Def: def, Access: access, Maint: maint,
		Cache: cache, Config: cfg, feed: w.Feed, fullLabels: map[string]bool{},
	}
	// The maintainer's observer is chained: record the applied delta sizes
	// on the view (for stats and the maintenance trace), then publish to
	// the changefeed — per update normally, into the batch accumulator
	// when ProcessBatch has one installed.
	maint.Observer = func(view oem.OID, u store.Update, d core.Deltas) {
		v.recordDeltas(len(d.Insert), len(d.Delete))
		v.publish(u, d)
	}
	w.Feed.RegisterView(name, mv.Members)
	for _, l := range def.FullPath() {
		v.fullLabels[l] = true
	}
	w.registerViewObs(v)
	w.mu.Lock()
	w.views[name] = v
	w.mu.Unlock()
	// Definitions live in checkpoints, not the WAL: a durable warehouse
	// checkpoints immediately so the new view survives a crash.
	if w.dur != nil {
		if err := w.Checkpoint(); err != nil {
			return v, err
		}
	}
	return v, nil
}

// publish routes one applied delta to the changefeed: straight to the
// hub normally, into the batch accumulator during ProcessBatch.
func (v *WView) publish(u store.Update, d core.Deltas) {
	if v.accum != nil {
		v.accum.Add(u, d)
		return
	}
	v.feed.Publish(v.Name, u, d)
}

// noteMaintStage records Algorithm 1 sub-stage timings. It runs inside
// Maint.Apply, so procMu already serializes it with process.
func (v *WView) noteMaintStage(stage string, nanos int64) {
	switch stage {
	case "compute":
		v.lastComputeNanos = nanos
	case "apply":
		v.lastApplyNanos = nanos
	}
}

// recordDeltas notes the delta sizes applied by one maintenance step.
func (v *WView) recordDeltas(ins, del int) {
	v.lastInserts, v.lastDeletes = ins, del
	if ins > 0 {
		v.Stats.DeltaInserts.Add(uint64(ins))
	}
	if del > 0 {
		v.Stats.DeltaDeletes.Add(uint64(del))
	}
}

// View returns a registered view.
func (w *Warehouse) View(name string) (*WView, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	v, ok := w.views[name]
	return v, ok
}

// viewsSorted returns the current views in name order, so multi-view
// processing and error reporting are deterministic.
func (w *Warehouse) viewsSorted() []*WView {
	w.mu.RLock()
	out := make([]*WView, 0, len(w.views))
	for _, v := range w.views {
		out = append(out, v)
	}
	w.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ProcessReport routes one update report to every Fresh view. A view
// whose maintenance fails is marked Stale with the failure as reason and
// quarantined — the error does not stop maintenance of the other views.
// The returned error joins every per-view failure (nil when all views
// succeeded or were quarantined).
func (w *Warehouse) ProcessReport(r *UpdateReport) error {
	// Write-ahead: a report that cannot be made durable is not processed,
	// so the log never lags the views.
	var walStart time.Time
	if w.Chains != nil {
		walStart = time.Now()
	}
	if err := w.logReports([]*UpdateReport{r}); err != nil {
		return err
	}
	w.noteIngress([]*UpdateReport{r}, walStart)
	w.absorbSourceGap()
	var errs []error
	for _, v := range w.viewsSorted() {
		if err := w.processView(v, r); err != nil {
			errs = append(errs, fmt.Errorf("warehouse: view %s on %s: %w", v.Name, r.Update, err))
		}
	}
	if err := w.maybeCheckpoint(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// processView runs one report through one view under its processing
// lock, handling quarantine and the Stale transition on failure.
func (w *Warehouse) processView(v *WView, r *UpdateReport) error {
	v.procMu.Lock()
	defer v.procMu.Unlock()
	if v.State() != ViewFresh {
		v.Stats.SkippedStale.Inc()
		return nil
	}
	if r.Update.Seq != 0 && r.Update.Seq <= v.resyncSkipSeq {
		// Already reflected in the membership the last resync fetched.
		return nil
	}
	err := v.process(r, w.Src)
	if err != nil {
		v.markStale(fmt.Sprintf("maintenance failed on %s: %v", r.Update, err))
	}
	return err
}

// ProcessAll routes a batch of reports. Unlike the pre-staleness
// behavior, a failing report does not abort the batch: the affected view
// is quarantined and the remaining reports still maintain the healthy
// views. All failures come back joined.
func (w *Warehouse) ProcessAll(rs []*UpdateReport) error {
	w.absorbSourceGap()
	var errs []error
	for _, r := range rs {
		if err := w.ProcessReport(r); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// ProcessBatch group-commits a batch of reports: every view gets the
// whole batch as one task, the tasks fan out over the warehouse
// scheduler, and each view publishes a single coalesced changefeed event
// for the batch instead of one per report. Per-view report order and the
// per-view staleness quarantine are exactly those of ProcessReport — a
// view that fails mid-batch is marked Stale and skips its remaining
// reports, counting them as SkippedStale, without disturbing the other
// views. Failures come back joined.
func (w *Warehouse) ProcessBatch(rs []*UpdateReport) error {
	if len(rs) == 0 {
		// Even an empty round must absorb a pending report-stream gap:
		// a lost *trailing* report surfaces as a gap with no batch
		// behind it (RemoteSource.CheckTail).
		w.absorbSourceGap()
		return nil
	}
	// Write-ahead: the whole batch becomes durable before any view
	// processes it.
	var walStart time.Time
	if w.Chains != nil {
		walStart = time.Now()
	}
	if err := w.logReports(rs); err != nil {
		return err
	}
	w.noteIngress(rs, walStart)
	w.absorbSourceGap()
	views := w.viewsSorted()
	w.Sched.Metrics.BatchSize.Observe(float64(len(rs)))
	w.Sched.Metrics.RoutedPairs.Add(uint64(len(rs) * len(views)))
	tasks := make([]core.Task, len(views))
	for i, v := range views {
		tasks[i] = core.Task{Name: v.Name, Fn: func() error {
			return w.processViewBatch(v, rs)
		}}
	}
	var errs []error
	for _, err := range w.Sched.Run(tasks) {
		if err != nil {
			errs = append(errs, err)
		}
	}
	if err := w.maybeCheckpoint(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// processViewBatch runs one view through a whole batch under its
// processing lock, accumulating deltas and publishing them coalesced.
func (w *Warehouse) processViewBatch(v *WView, rs []*UpdateReport) error {
	v.procMu.Lock()
	defer v.procMu.Unlock()
	co := core.NewDeltaCoalescer()
	v.accum = co
	defer func() { v.accum = nil }()
	var errs []error
	for _, r := range rs {
		if v.State() != ViewFresh {
			v.Stats.SkippedStale.Inc()
			continue
		}
		if r.Update.Seq != 0 && r.Update.Seq <= v.resyncSkipSeq {
			continue
		}
		if err := v.process(r, w.Src); err != nil {
			v.markStale(fmt.Sprintf("maintenance failed on %s: %v", r.Update, err))
			errs = append(errs, fmt.Errorf("warehouse: view %s on %s: %w", v.Name, r.Update, err))
		}
	}
	if co.Count() > 0 {
		w.Feed.PublishBatch(v.Name, co.Last(), co.Count(), co.Deltas())
	}
	return errors.Join(errs...)
}

// nodeName returns the node label used in spans and propagation
// metrics.
func (w *Warehouse) nodeName() string {
	if w.Node != "" {
		return w.Node
	}
	return "primary"
}

// noteIngress advances the ingestion-head watermark and records the
// WAL span for every stamped report — the first link of an update's
// propagation chain on this node. No-op until EnableObs.
func (w *Warehouse) noteIngress(rs []*UpdateReport, walStart time.Time) {
	if w.Chains == nil {
		return
	}
	now := time.Now()
	node := w.nodeName()
	walNanos := now.Sub(walStart).Nanoseconds()
	for _, r := range rs {
		u := r.Update
		if u.Origin <= 0 {
			continue
		}
		obs.AdvanceWatermark(&w.headOrigin, u.Origin)
		if w.dur == nil {
			continue // no WAL stage on a non-durable warehouse
		}
		if w.walLatency != nil {
			w.walLatency.Observe(float64(now.UnixNano()-u.Origin) / 1e9)
		}
		if u.TraceID != "" {
			w.Chains.Add(obs.SpanChain{
				TraceID: u.TraceID, Seq: u.Seq, Kind: u.Kind.String(),
				Origin: u.Origin, Node: node,
				Spans: []obs.Span{{
					Node: node, Stage: "wal",
					Start: walStart.UnixNano() - u.Origin,
					Nanos: walNanos,
				}},
			})
		}
	}
}

// FreshMembers returns a view's membership, but only when the view is
// Fresh: a quarantined view answers ErrStaleView (test with errors.Is)
// so strict readers never act on known-lagging data. Relaxed readers
// keep using View + MV.Members, which serves in every state.
func (w *Warehouse) FreshMembers(name string) ([]oem.OID, error) {
	v, ok := w.View(name)
	if !ok {
		return nil, fmt.Errorf("%w: warehouse view %s", ErrViewNotFound, name)
	}
	if v.State() != ViewFresh {
		reason, _ := v.StaleReason()
		return nil, fmt.Errorf("%w: %s (%s)", ErrStaleView, name, reason)
	}
	return v.MV.Members()
}

func (v *WView) process(r *UpdateReport, src SourceAPI) error {
	v.Stats.Reports.Inc()

	// Tracing and latency recording are off unless EnableObs ran; the
	// disabled path costs one branch and no clock reads.
	traced := v.sink != nil || v.maintainLatency != nil || v.chains != nil
	var t0, stageStart time.Time
	var stages []obs.Stage
	var statsPre remoteStatsSnap
	if traced {
		t0 = time.Now()
		stageStart = t0
		statsPre = v.Access.Stats.snap()
	}
	stage := func(name string) {
		if !traced {
			return
		}
		now := time.Now()
		stages = append(stages, obs.Stage{Name: name, Nanos: now.Sub(stageStart).Nanoseconds()})
		stageStart = now
	}
	emit := func(outcome string, queryBacks int, err error) {
		if !traced {
			return
		}
		total := time.Since(t0)
		v.maintainLatency.Observe(total.Seconds())
		if err == nil && r.Update.Origin > 0 {
			// The view now reflects this update (screened means it already
			// did): advance its freshness watermark and observe the
			// origin→maintained propagation latency.
			obs.AdvanceWatermark(&v.watermark, r.Update.Origin)
			if v.propagation != nil {
				v.propagation.Observe(float64(t0.Add(total).UnixNano()-r.Update.Origin) / 1e9)
			}
		}
		if v.chains != nil && r.Update.TraceID != "" && r.Update.Origin > 0 {
			// This node's link of the update's cross-node span chain: the
			// maintenance stages, laid out back to back from when this
			// view picked the report up.
			spans := make([]obs.Span, 0, len(stages))
			off := t0.UnixNano() - r.Update.Origin
			for _, st := range stages {
				spans = append(spans, obs.Span{
					Node: v.node, View: v.Name, Stage: st.Name,
					Start: off, Nanos: st.Nanos,
				})
				if st.Name == "maintain" && v.lastComputeNanos+v.lastApplyNanos > 0 {
					// Algorithm 1 sub-spans nested inside the maintain
					// window, from the maintainer's StageObserver.
					spans = append(spans,
						obs.Span{Node: v.node, View: v.Name, Stage: "maintain.compute",
							Start: off, Nanos: v.lastComputeNanos},
						obs.Span{Node: v.node, View: v.Name, Stage: "maintain.apply",
							Start: off + v.lastComputeNanos, Nanos: v.lastApplyNanos})
				}
				off += st.Nanos
			}
			v.chains.Add(obs.SpanChain{
				TraceID: r.Update.TraceID, Seq: r.Update.Seq,
				Kind: r.Update.Kind.String(), View: v.Name,
				Origin: r.Update.Origin, Node: v.node, Spans: spans,
			})
		}
		if v.sink == nil {
			return
		}
		post := v.Access.Stats.snap()
		tr := obs.Trace{
			View:       v.Name,
			Seq:        r.Update.Seq,
			Kind:       r.Update.Kind.String(),
			Level:      int(r.Level),
			Outcome:    outcome,
			QueryBacks: queryBacks,
			Helpers:    post.helpersSince(statsPre),
			CacheHits:  int(post.cacheHits - statsPre.cacheHits),
			CacheMiss:  int(post.cacheMisses - statsPre.cacheMisses),
			Inserts:    v.lastInserts,
			Deletes:    v.lastDeletes,
			Stages:     stages,
			TotalNanos: total.Nanoseconds(),
		}
		if err != nil {
			tr.Err = err.Error()
		}
		v.sink(tr)
	}

	// Reset before screening so a screened trace reports zero deltas
	// (and no stale sub-stage spans) rather than the previous report's.
	v.lastInserts, v.lastDeletes = 0, 0
	v.lastComputeNanos, v.lastApplyNanos = 0, 0
	if v.screened(r) {
		v.Stats.Screened.Inc()
		stage("screen")
		emit(obs.OutcomeScreened, 0, nil)
		return nil
	}
	stage("screen")
	if src.LastKnownSeq() > r.Update.Seq {
		v.Stats.Interference.Inc()
	}
	before := src.TransportRef().Snapshot()
	if v.Cache != nil {
		if _, err := v.Cache.Apply(r, src); err != nil {
			emit(obs.OutcomeError, 0, err)
			return err
		}
	}
	stage("cache")
	v.Access.SetReport(r)
	defer v.Access.SetReport(nil)

	u := r.Update
	var err error
	if u.Kind == store.UpdateModify && r.Level < Level2 {
		err = v.level1Modify(u, src)
	} else {
		err = v.Maint.Apply(u)
	}
	if err != nil {
		stage("maintain")
		emit(obs.OutcomeError, src.TransportRef().Sub(before).QueryBacks, err)
		return err
	}
	// Only deletes can detach mirrored structure; compacting after every
	// report would rescan the mirror needlessly.
	if v.Cache != nil && u.Kind == store.UpdateDelete {
		v.Cache.Compact()
	}
	stage("maintain")
	used := src.TransportRef().Sub(before)
	v.Stats.QueryBacks.Add(uint64(used.QueryBacks))
	if used.QueryBacks == 0 {
		v.Stats.LocalOnly.Inc()
		emit(obs.OutcomeLocal, 0, nil)
	} else {
		emit(obs.OutcomeQueryBack, used.QueryBacks, nil)
	}
	return nil
}

// screened implements the label screening of Section 5.1 scenario 2 and
// the path-knowledge screening of Section 5.2. An update is kept when it
// could change membership or touches a current member's value.
func (v *WView) screened(r *UpdateReport) bool {
	if !v.Config.Screening || r.Level < Level2 {
		return false
	}
	u := r.Update
	if u.Kind == store.UpdateCreate {
		return true // creation never affects a view
	}
	if v.MV.Contains(u.N1) {
		return false // member value refresh required
	}
	switch u.Kind {
	case store.UpdateInsert, store.UpdateDelete:
		child := r.Objects[u.N2]
		if child == nil {
			return false // cannot judge; process normally
		}
		if !v.fullLabels[child.Label] {
			return true // label(N2) not on sel_path.cond_path
		}
		if pk := v.Config.Knowledge; pk != nil && u.Kind == store.UpdateInsert {
			if parent := r.Objects[u.N1]; parent != nil {
				pk.Observe(parent.Label, child.Label)
				if !v.pairOnPath(parent, child) {
					return true
				}
			}
		}
		return false
	case store.UpdateModify:
		full := v.Def.FullPath()
		if len(full) == 0 {
			return false
		}
		if o := r.Objects[u.N1]; o != nil && o.Label != full[len(full)-1] {
			return true // only objects at the condition label matter
		}
		return false
	default:
		return false
	}
}

// pairOnPath reports whether (label(N1) -> label(N2)) can lie on the
// view's full path: consecutive labels must match, with the entry allowed
// as the anonymous parent of the first label.
func (v *WView) pairOnPath(parent, child *oem.Object) bool {
	full := v.Def.FullPath()
	for i, l := range full {
		if l != child.Label {
			continue
		}
		if i == 0 {
			if parent.OID == v.Def.Entry {
				return true
			}
			continue
		}
		if parent.Label == full[i-1] {
			return true
		}
	}
	return false
}

// level1Modify re-derives membership after a modify whose values were
// withheld (Level 1): if N lies at sel_path.cond_path, the condition on
// its ancestor Y is re-evaluated at the source and Y is inserted or
// deleted accordingly; a member delegate's value is refreshed by fetching
// the object.
func (v *WView) level1Modify(u store.Update, src SourceAPI) error {
	full := v.Def.FullPath()
	p, ok, err := v.Access.Path(v.Def.Entry, u.N1)
	if err != nil {
		return err
	}
	if ok && p.Equal(full) {
		y, found, err := v.Access.Ancestor(u.N1, v.Def.CondPath)
		if err != nil {
			return err
		}
		if found {
			remaining, err := v.Access.EvalCond(y, v.Def.CondPath, v.Def.Cond)
			if err != nil {
				return err
			}
			// The recheck path bypasses SimpleMaintainer.Apply, so the
			// changefeed event is published here; membership is compared
			// first to keep the stream free of idempotent re-announcements.
			was := v.MV.Contains(y)
			if len(remaining) > 0 {
				if err := v.Maint.VInsert(y); err != nil {
					return err
				}
				if !was {
					v.recordDeltas(1, 0)
					v.publish(u, core.Deltas{Insert: []oem.OID{y}})
				}
			} else {
				if err := v.Maint.VDelete(y); err != nil {
					return err
				}
				if was {
					v.recordDeltas(0, 1)
					v.publish(u, core.Deltas{Delete: []oem.OID{y}})
				}
			}
		}
	}
	if v.MV.Contains(u.N1) {
		o, err := v.Access.Fetch(u.N1)
		if err != nil {
			return err
		}
		return v.MV.RefreshDelegateFrom(o)
	}
	return nil
}
