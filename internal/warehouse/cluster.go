package warehouse

import (
	"fmt"

	"gsv/internal/core"
	"gsv/internal/feed"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
)

// WCluster hosts a view cluster at the warehouse — the setting the paper
// actually motivates clusters for: "if a remote site defines several views
// that share common objects, it may end up with multiple delegates for the
// same base object. The notion of a view cluster avoids this" (Section
// 3.2). Shared delegates live in the warehouse's view store; membership is
// maintained by Algorithm 1 over the warehouse's RemoteAccess, so helper
// evaluations use report enrichment and query backs like any other
// warehouse view.
type WCluster struct {
	OID     oem.OID
	Cluster *core.Cluster
	access  *RemoteAccess
	src     SourceAPI
	feed    *feed.Hub
	// Stats aggregates the cluster's maintenance outcomes.
	Stats ViewStats
}

// NewCluster creates a warehouse-resident cluster. Views are added with
// AddView; reports flow through ProcessReport (the warehouse does not
// route to clusters automatically — they have their own delegate
// lifecycle).
func (w *Warehouse) NewCluster(oid oem.OID) *WCluster {
	wc := &WCluster{OID: oid, src: w.Src, feed: w.Feed}
	wc.access = &RemoteAccess{Src: w.Src}
	wc.Cluster = core.NewClusterWith(oid, w.Store, core.ClusterBackend{
		Evaluate: func(q *query.Query) ([]oem.OID, error) {
			objs, err := w.Src.FetchQuery(q)
			if err != nil {
				return nil, err
			}
			oids := make([]oem.OID, len(objs))
			for i, o := range objs {
				oids[i] = o.OID
			}
			return oids, nil
		},
		Fetch:  wc.fetchCounted,
		Access: wc.access,
	})
	wc.Cluster.Observer = func(view oem.OID, u store.Update, d core.Deltas) {
		wc.feed.Publish(string(view), u, d)
	}
	return wc
}

// fetchCounted retrieves a base object, preferring the current report's
// enrichment over a query back.
func (wc *WCluster) fetchCounted(oid oem.OID) (*oem.Object, error) {
	return wc.access.Fetch(oid)
}

// AddView defines one simple member view in the cluster. The definition
// must not use WITHIN (warehouse views are scoped to their source).
func (wc *WCluster) AddView(name string, q *query.Query) error {
	def, ok := core.Simplify(q)
	if !ok {
		return fmt.Errorf("warehouse: cluster view %s is not a simple view", name)
	}
	if def.Within != "" {
		return fmt.Errorf("warehouse: cluster view %s uses WITHIN", name)
	}
	wc.access.Def = def // anchor report-path shortcuts at the last-added view's entry
	if err := wc.Cluster.AddView(oem.OID(name), q); err != nil {
		return err
	}
	wc.feed.RegisterView(name, func() ([]oem.OID, error) {
		return wc.Cluster.Members(oem.OID(name))
	})
	return nil
}

// ProcessReport maintains every member view under one update report.
func (wc *WCluster) ProcessReport(r *UpdateReport) error {
	wc.Stats.Reports.Inc()
	before := wc.src.TransportRef().Snapshot()
	wc.access.SetReport(r)
	defer wc.access.SetReport(nil)
	u := r.Update
	if u.Kind == store.UpdateModify && r.Level < Level2 {
		// Level 1 withholds modify values; re-derive per member view via
		// the recheck protocol, mirroring WView.level1Modify.
		if err := wc.level1Modify(u); err != nil {
			return err
		}
	} else if err := wc.Cluster.Apply(u); err != nil {
		return err
	}
	used := wc.src.TransportRef().Sub(before)
	wc.Stats.QueryBacks.Add(uint64(used.QueryBacks))
	if used.QueryBacks == 0 {
		wc.Stats.LocalOnly.Inc()
	}
	return nil
}

// level1Modify re-derives membership for every member view after a modify
// whose values were withheld.
func (wc *WCluster) level1Modify(u store.Update) error {
	for _, name := range wc.Cluster.ViewNames() {
		def, ok := wc.Cluster.ViewDef(name)
		if !ok {
			continue
		}
		full := def.FullPath()
		p, found, err := wc.access.Path(def.Entry, u.N1)
		if err != nil {
			return err
		}
		if !found || !p.Equal(full) {
			continue
		}
		y, found, err := wc.access.Ancestor(u.N1, def.CondPath)
		if err != nil || !found {
			return err
		}
		remaining, err := wc.access.EvalCond(y, def.CondPath, def.Cond)
		if err != nil {
			return err
		}
		// Like WView.level1Modify, this bypasses the maintainer's Apply,
		// so the changefeed event is published here after a membership
		// comparison.
		was := wc.Cluster.ContainsMember(name, y)
		if len(remaining) > 0 {
			if err := wc.Cluster.VInsert(name, y); err != nil {
				return err
			}
			if !was {
				wc.feed.Publish(string(name), u, core.Deltas{Insert: []oem.OID{y}})
			}
		} else {
			if err := wc.Cluster.VDelete(name, y); err != nil {
				return err
			}
			if was {
				wc.feed.Publish(string(name), u, core.Deltas{Delete: []oem.OID{y}})
			}
		}
	}
	// Delegate values of atomic members cannot be refreshed from a Level-1
	// report; fetch the current object when a shared delegate exists.
	if wc.Cluster.ViewStore.Has(core.DelegateOID(wc.OID, u.N1)) {
		o, err := wc.access.Fetch(u.N1)
		if err != nil {
			return err
		}
		return wc.Cluster.RefreshDelegateFrom(o)
	}
	return nil
}
