package warehouse

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gsv/internal/faults"
	"gsv/internal/feed"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// faultFixture builds the PERSON source behind a FaultySource and a
// warehouse with two YP views: "frail" (no cache — every maintenance
// step needs query backs, so injected faults hit it) and "sturdy" (full
// cache — maintained locally, immune to query-back faults).
func faultFixture(t *testing.T) (*Source, *faults.Injector, *Warehouse, *WView, *WView) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("persons", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	inj := faults.New(faults.Config{Seed: 1})
	w := New(WrapSource(src, inj))
	q := "SELECT ROOT.professor X WHERE X.age <= 45"
	frail, err := w.DefineView("frail", query.MustParse(q), ViewConfig{Cache: CacheNone})
	if err != nil {
		t.Fatal(err)
	}
	sturdy, err := w.DefineView("sturdy", query.MustParse(q), ViewConfig{Cache: CacheFull})
	if err != nil {
		t.Fatal(err)
	}
	return src, inj, w, frail, sturdy
}

// TestProcessReportFailureQuarantinesOnlyAffectedView: a persistent
// query-back fault fails one view's maintenance; that view goes Stale
// with a recorded reason while the other view in the same batch is
// maintained correctly.
func TestProcessReportFailureQuarantinesOnlyAffectedView(t *testing.T) {
	src, inj, w, frail, sturdy := faultFixture(t)
	inj.Partition(true)
	rs, err := src.Modify("A1", oem.Int(50)) // P1 leaves the view
	if err != nil {
		t.Fatal(err)
	}
	procErr := w.ProcessAll(rs)
	if procErr == nil {
		t.Fatal("ProcessAll succeeded despite partition")
	}
	if !strings.Contains(procErr.Error(), "view frail") {
		t.Fatalf("error does not name the failed view: %v", procErr)
	}
	if strings.Contains(procErr.Error(), "view sturdy") {
		t.Fatalf("healthy view named in error: %v", procErr)
	}

	if got := frail.State(); got != ViewStale {
		t.Fatalf("frail state = %v, want stale", got)
	}
	reason, since := frail.StaleReason()
	if !strings.Contains(reason, "maintenance failed") || since.IsZero() {
		t.Fatalf("stale reason = %q since %v", reason, since)
	}
	if frail.Stats.StaleTransitions.Value() != 1 {
		t.Fatalf("stale transitions = %d", frail.Stats.StaleTransitions.Value())
	}
	// The healthy view was maintained by the same batch.
	if got := sturdy.State(); got != ViewFresh {
		t.Fatalf("sturdy state = %v, want fresh", got)
	}
	wantMembers(t, sturdy)
	// Stale reads are still served: the quarantined view answers with its
	// last applied membership.
	wantMembers(t, frail, "P1")
}

// TestStaleViewSkipsFurtherReports: once quarantined, a view receives no
// incremental maintenance (replaying onto an inconsistent base could
// diverge further), and processing reports for it is not an error.
func TestStaleViewSkipsFurtherReports(t *testing.T) {
	src, inj, w, frail, _ := faultFixture(t)
	inj.Partition(true)
	rs, _ := src.Modify("A1", oem.Int(50))
	if err := w.ProcessAll(rs); err == nil {
		t.Fatal("expected failure")
	}
	inj.Partition(false)
	// A healed source does not un-quarantine the view: only repair does.
	rs, _ = src.Modify("A1", oem.Int(40))
	if err := w.ProcessAll(rs); err != nil {
		t.Fatalf("processing while quarantined errored: %v", err)
	}
	if frail.Stats.SkippedStale.Value() == 0 {
		t.Fatal("skipped-stale counter did not move")
	}
	if got := frail.State(); got != ViewStale {
		t.Fatalf("state = %v, want stale", got)
	}
}

// TestRepairAllResyncsToFresh: after the fault heals, RepairAll re-runs
// the defining query, applies the diff, returns the view to Fresh, and
// the membership matches a from-scratch recompute.
func TestRepairAllResyncsToFresh(t *testing.T) {
	src, inj, w, frail, sturdy := faultFixture(t)
	inj.Partition(true)
	rs, _ := src.Modify("A1", oem.Int(50)) // P1 out
	_ = w.ProcessAll(rs)
	// More source churn while quarantined: P2 gains a qualifying age.
	if _, err := src.Put(oem.NewAtom("A2", "age", oem.Int(40))); err != nil {
		t.Fatal(err)
	}
	src.DrainReports()
	rs, _ = src.Insert("P2", "A2")
	_ = w.ProcessAll(rs)

	inj.Partition(false)
	repaired, err := w.RepairAll()
	if err != nil {
		t.Fatalf("RepairAll: %v", err)
	}
	if repaired != 1 {
		t.Fatalf("repaired = %d, want 1", repaired)
	}
	if got := frail.State(); got != ViewFresh {
		t.Fatalf("state after repair = %v", got)
	}
	if reason, _ := frail.StaleReason(); reason != "" {
		t.Fatalf("stale reason not cleared: %q", reason)
	}
	if frail.Stats.Repairs.Value() != 1 {
		t.Fatalf("repairs = %d", frail.Stats.Repairs.Value())
	}
	// Membership equals the view that never failed (P1 left, P2 joined —
	// but P2's insert report was skipped by the quarantine, so only the
	// resync could have learned it).
	wantMembers(t, frail, "P2")
	wantMembers(t, sturdy, "P2")
}

// TestRepairFailureStaysStale: repairing against a still-faulty source
// fails, counts a repair failure, and leaves the view Stale with the
// repair error as reason — the next RepairAll retries.
func TestRepairFailureStaysStale(t *testing.T) {
	src, inj, w, frail, _ := faultFixture(t)
	inj.Partition(true)
	rs, _ := src.Modify("A1", oem.Int(50))
	_ = w.ProcessAll(rs)
	if _, err := w.RepairAll(); err == nil {
		t.Fatal("RepairAll succeeded against open partition")
	}
	if got := frail.State(); got != ViewStale {
		t.Fatalf("state = %v, want stale", got)
	}
	if reason, _ := frail.StaleReason(); !strings.Contains(reason, "repair failed") {
		t.Fatalf("reason = %q", reason)
	}
	if frail.Stats.RepairFailures.Value() != 1 {
		t.Fatalf("repair failures = %d", frail.Stats.RepairFailures.Value())
	}
	// Heal and retry: the standing quarantine repairs cleanly.
	inj.Partition(false)
	if _, err := w.RepairAll(); err != nil {
		t.Fatalf("retry after heal: %v", err)
	}
	if got := frail.State(); got != ViewFresh {
		t.Fatalf("state after retry = %v", got)
	}
	wantMembers(t, frail)
}

// TestProcessAllContinuesPastFailingReport: a batch where an early
// report fails still applies the later reports to healthy views — the
// pre-staleness behavior aborted the whole batch.
func TestProcessAllContinuesPastFailingReport(t *testing.T) {
	src, inj, w, _, sturdy := faultFixture(t)
	inj.Partition(true)
	r1, _ := src.Modify("A1", oem.Int(50)) // fails frail, maintained by sturdy
	if _, err := src.Put(oem.NewAtom("A2", "age", oem.Int(40))); err != nil {
		t.Fatal(err)
	}
	creation := src.DrainReports()
	r2, _ := src.Insert("P2", "A2") // second report in the same batch
	batch := append(append(r1, creation...), r2...)
	if err := w.ProcessAll(batch); err == nil {
		t.Fatal("expected joined error from batch")
	}
	// The healthy view saw the entire batch.
	if got := sturdy.State(); got != ViewFresh {
		t.Fatalf("sturdy state = %v", got)
	}
	wantMembers(t, sturdy, "P2")
}

// TestFailureOnNthViewLeavesEarlierViewsApplied: with several views, a
// failure on a later view (name order) does not undo or block the
// earlier ones in the same report.
func TestFailureOnNthViewLeavesEarlierViewsApplied(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("persons", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	inj := faults.New(faults.Config{Seed: 1})
	w := New(WrapSource(src, inj))
	q := "SELECT ROOT.professor X WHERE X.age <= 45"
	// Names chosen so the cached (healthy) view sorts first.
	a, err := w.DefineView("a-cached", query.MustParse(q), ViewConfig{Cache: CacheFull})
	if err != nil {
		t.Fatal(err)
	}
	z, err := w.DefineView("z-uncached", query.MustParse(q), ViewConfig{Cache: CacheNone})
	if err != nil {
		t.Fatal(err)
	}
	inj.Partition(true)
	rs, _ := src.Modify("A1", oem.Int(50))
	if err := w.ProcessAll(rs); err == nil {
		t.Fatal("expected error from z-uncached")
	}
	wantMembers(t, a) // maintained
	if got := a.State(); got != ViewFresh {
		t.Fatalf("a-cached state = %v", got)
	}
	if got := z.State(); got != ViewStale {
		t.Fatalf("z-uncached state = %v", got)
	}
	if names := w.StaleViews(); len(names) != 1 || names[0] != "z-uncached" {
		t.Fatalf("StaleViews = %v", names)
	}
}

// gappySource wraps a local Source with a settable report gap, to test
// gap absorption without a network.
type gappySource struct {
	*Source
	mu  sync.Mutex
	seq uint64
	gap bool
}

func (g *gappySource) setGap(seq uint64) {
	g.mu.Lock()
	g.seq, g.gap = seq, true
	g.mu.Unlock()
}

func (g *gappySource) TakeGap() (uint64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	seq, gap := g.seq, g.gap
	g.gap = false
	return seq, gap
}

// TestReportGapMarksAllViewsStale: a source-reported gap (lost reports)
// quarantines every view — nothing downstream can know which views the
// lost updates would have touched — and repair restores them.
func TestReportGapMarksAllViewsStale(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("persons", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	g := &gappySource{Source: src}
	w := New(g)
	q := "SELECT ROOT.professor X WHERE X.age <= 45"
	v1, err := w.DefineView("one", query.MustParse(q), ViewConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := w.DefineView("two", query.MustParse(q), ViewConfig{Cache: CacheFull})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate "behind the warehouse's back" and signal the loss.
	if _, err := src.Modify("A1", oem.Int(50)); err != nil {
		t.Fatal(err)
	}
	g.setGap(src.Store.Seq())
	// Absorption happens on the next processing entry point.
	if err := w.ProcessAll(nil); err != nil {
		t.Fatal(err)
	}
	if v1.State() != ViewStale || v2.State() != ViewStale {
		t.Fatalf("states = %v, %v; want stale, stale", v1.State(), v2.State())
	}
	if reason, _ := v1.StaleReason(); !strings.Contains(reason, "gap") {
		t.Fatalf("reason = %q", reason)
	}
	if _, err := w.RepairAll(); err != nil {
		t.Fatal(err)
	}
	if v1.State() != ViewFresh || v2.State() != ViewFresh {
		t.Fatalf("states after repair = %v, %v", v1.State(), v2.State())
	}
	wantMembers(t, v1)
	wantMembers(t, v2)
}

// TestResyncPublishesAggregateFeedEvent: a repair that changed
// membership shows up on the changefeed as one "resync" event carrying
// the net delta.
func TestResyncPublishesAggregateFeedEvent(t *testing.T) {
	src, inj, w, frail, _ := faultFixture(t)
	sub, err := w.Feed.Subscribe("frail", feed.SubOptions{Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	inj.Partition(true)
	rs, _ := src.Modify("A1", oem.Int(50))
	_ = w.ProcessAll(rs)
	inj.Partition(false)
	if _, err := w.RepairAll(); err != nil {
		t.Fatal(err)
	}
	_ = frail
	ev := <-sub.Events()
	if ev.Kind != "resync" {
		t.Fatalf("event kind = %q, want resync", ev.Kind)
	}
	if len(ev.Delete) != 1 || ev.Delete[0] != "P1" {
		t.Fatalf("event delete = %v, want [P1]", ev.Delete)
	}
}

// TestRepairLoopBackground: StartRepairLoop heals a stale view without
// an explicit RepairAll call.
func TestRepairLoopBackground(t *testing.T) {
	src, inj, w, frail, _ := faultFixture(t)
	inj.Partition(true)
	rs, _ := src.Modify("A1", oem.Int(50))
	_ = w.ProcessAll(rs)
	inj.Partition(false)
	stop := w.StartRepairLoop(time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for frail.State() != ViewFresh {
		if time.Now().After(deadline) {
			t.Fatal("repair loop never healed the view")
		}
		time.Sleep(time.Millisecond)
	}
	wantMembers(t, frail)
}

// TestSourcePendingRace is the regression test for the Source.pending
// data race: the store.Subscribe callback appends while DrainReports
// swaps the slice out on another goroutine. Run under -race.
func TestSourcePendingRace(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("persons", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_, _ = src.Modify("A1", oem.Int(int64(40+i%10)))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			src.DrainReports()
		}
	}()
	wg.Wait()
}

// TestStartRepairLoopStopSemantics proves the repair loop's contract:
// the ticker goroutine actually repairs, stop() halts it (idempotently,
// leaking no goroutine), and a repair in flight when stop fires
// completes cleanly rather than being abandoned mid-resync.
func TestStartRepairLoopStopSemantics(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("persons", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	// Every source call stalls 5ms, so a resync is observable in flight.
	inj := faults.New(faults.Config{Seed: 1, DelayProb: 1, Delay: 5 * time.Millisecond})
	w := New(WrapSource(src, inj))
	v, err := w.DefineView("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"), ViewConfig{})
	if err != nil {
		t.Fatal(err)
	}

	waitState := func(want ViewState) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for v.State() != want {
			if time.Now().After(deadline) {
				reason, _ := v.StaleReason()
				t.Fatalf("state = %v (reason %q), want %v", v.State(), reason, want)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// Warm everything a repair touches, then measure the baseline.
	stop := w.StartRepairLoop(time.Millisecond)
	if err := w.Quarantine("YP", "warmup"); err != nil {
		t.Fatal(err)
	}
	waitState(ViewFresh)
	stop()
	time.Sleep(5 * time.Millisecond)
	before := runtime.NumGoroutine()

	stop = w.StartRepairLoop(time.Millisecond)
	if err := w.Quarantine("YP", "stop-race"); err != nil {
		t.Fatal(err)
	}
	// Catch the resync mid-flight, then pull the plug.
	waitState(ViewRepairing)
	stop()
	stop() // idempotent
	// The in-flight repair must still complete cleanly.
	waitState(ViewFresh)

	// And the ticker goroutine must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, want <= %d (repair loop leaked)", runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}

	// A stopped loop must not repair again.
	if err := w.Quarantine("YP", "after stop"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if v.State() != ViewStale {
		t.Fatalf("stopped loop still repairing: %v", v.State())
	}
}
