package warehouse

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gsv/internal/feed"
	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
)

// This file makes the Figure 6 architecture genuinely distributed: a
// Server exposes a Source over TCP with a line-delimited JSON protocol,
// and RemoteSource implements SourceAPI on the warehouse side, so the
// unchanged Warehouse/Integrator machinery maintains views across real
// sockets. The protocol has three connection modes, chosen by the first
// line a client sends:
//
//   - "query": request/response pairs, one JSON object per line each way.
//   - "reports": the server pushes update reports, one JSON object per
//     line; the client never writes.
//   - "subscribe": the client sends one feedRequest line naming a view
//     (and optionally a resume cursor); the server answers a feedHello
//     and then pushes one feed.Event per line (docs/CHANGEFEED.md).
//
// Every response and report carries the source's current sequence number,
// which feeds the warehouse's interference detection.

// maxFrame bounds one protocol line; longer frames fail the connection
// (queries) or the decode (everything decodeFrame guards).
const maxFrame = 1 << 20

// errFrameTooLarge rejects frames longer than maxFrame.
var errFrameTooLarge = errors.New("warehouse: frame exceeds 1MiB limit")

// decodeFrame parses one line-delimited JSON frame into v. A frame is a
// single JSON object — malformed JSON, trailing data after the object,
// and oversized lines all error cleanly so a hostile peer can never
// panic the server.
func decodeFrame(line []byte, v any) error {
	if len(line) > maxFrame {
		return errFrameTooLarge
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("warehouse: bad frame: %w", err)
	}
	if dec.More() {
		return errors.New("warehouse: trailing data after frame")
	}
	return nil
}

// frameScanner wraps a reader in a line scanner bounded at maxFrame.
func frameScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 4096), maxFrame)
	return sc
}

// netRequest is one query-mode request.
type netRequest struct {
	Op    string        `json:"op"`
	OID   oem.OID       `json:"oid,omitempty"`
	Path  pathexpr.Path `json:"path,omitempty"`
	Depth int           `json:"depth,omitempty"`
	Query string        `json:"query,omitempty"`
}

// netResponse is one query-mode response.
type netResponse struct {
	Err     string        `json:"err,omitempty"`
	Found   bool          `json:"found,omitempty"`
	OID     oem.OID       `json:"oid,omitempty"`
	Objects []*oem.Object `json:"objects,omitempty"`
	Info    *PathInfo     `json:"info,omitempty"`
	Stats   *StatsPayload `json:"stats,omitempty"`
	Seq     uint64        `json:"seq"`
}

// Server exposes one Source on a listener.
type Server struct {
	Src *Source
	// Feed, when non-nil, enables the "subscribe" connection mode over
	// this hub's changefeed. Set it before Serve; the serving
	// application (cmd/gsdbserve) points it at the hub of the warehouse
	// hosting its views.
	Feed *feed.Hub
	// Obs, when non-nil, enables the "stats" query-mode request: clients
	// receive a snapshot of this registry. Set it before Serve.
	Obs *obs.Registry
	// Traces, when non-nil, attaches the most recent maintenance traces
	// to stats responses.
	Traces *obs.TraceRing

	mu       sync.Mutex
	ln       net.Listener
	streams  []chan []byte
	feedSubs []*feed.Subscription
	done     chan struct{}
}

// NewServer returns a server for src. Call Serve with a listener.
func NewServer(src *Source) *Server {
	return &Server{Src: src, done: make(chan struct{})}
}

// Serve accepts connections until the listener closes. It returns the
// listener's final error (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

// Close stops accepting and disconnects report streams.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	for _, ch := range s.streams {
		close(ch)
	}
	s.streams = nil
	for _, sub := range s.feedSubs {
		sub.Close()
	}
	s.feedSubs = nil
}

// Broadcast ships update reports to every connected report stream. The
// serving application calls it with the reports returned by the source's
// mutation methods (or DrainReports).
func (s *Server) Broadcast(reports []*UpdateReport) error {
	if len(reports) == 0 {
		return nil
	}
	payloads := make([][]byte, 0, len(reports))
	for _, r := range reports {
		data, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("warehouse: encoding report: %w", err)
		}
		payloads = append(payloads, data)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.streams {
		for _, p := range payloads {
			ch <- p
		}
	}
	return nil
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	mode, err := br.ReadString('\n')
	if err != nil {
		return
	}
	switch mode {
	case "query\n":
		s.handleQueries(conn, br)
	case "reports\n":
		s.handleReports(conn)
	case "subscribe\n":
		s.handleSubscribe(conn, br)
	}
}

func (s *Server) handleQueries(conn net.Conn, br *bufio.Reader) {
	enc := json.NewEncoder(conn)
	sc := frameScanner(br)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var req netRequest
		if err := decodeFrame(line, &req); err != nil {
			// A malformed frame gets an error response; the connection
			// survives because framing is still intact (line-delimited).
			if err := enc.Encode(netResponse{Err: err.Error(), Seq: s.Src.Store.Seq()}); err != nil {
				return
			}
			continue
		}
		resp := s.dispatch(req)
		resp.Seq = s.Src.Store.Seq()
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// dispatch executes one request against the source. The source-side
// wrapper methods are used directly, but their transport charges are the
// *source's* transport; the warehouse-side client charges its own, so the
// double-entry stays separated per site.
func (s *Server) dispatch(req netRequest) netResponse {
	switch req.Op {
	case "object":
		o, err := s.Src.FetchObject(req.OID)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: true, Objects: []*oem.Object{o}}
	case "path":
		info, ok, err := s.Src.FetchPath(req.OID)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: ok, Info: info}
	case "ancestor":
		y, ok, err := s.Src.FetchAncestor(req.OID, req.Path)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: ok, OID: y}
	case "eval":
		objs, err := s.Src.FetchEval(req.OID, req.Path)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: true, Objects: objs}
	case "subtree":
		objs, err := s.Src.FetchSubtree(req.OID, req.Depth)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: true, Objects: objs}
	case "query":
		q, err := query.Parse(req.Query)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		objs, err := s.Src.FetchQuery(q)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: true, Objects: objs}
	case "stats":
		payload, errStr := s.statsPayload()
		if errStr != "" {
			return netResponse{Err: errStr}
		}
		return netResponse{Found: true, Stats: payload}
	default:
		return netResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func (s *Server) handleReports(conn net.Conn) {
	ch := make(chan []byte, 256)
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		return
	default:
	}
	s.streams = append(s.streams, ch)
	s.mu.Unlock()
	// Acknowledge registration so the dialer knows subsequent broadcasts
	// will reach this stream.
	if _, err := io.WriteString(conn, "ready\n"); err != nil {
		return
	}
	w := bufio.NewWriter(conn)
	for data := range ch {
		if _, err := w.Write(append(data, '\n')); err != nil {
			break
		}
		if err := w.Flush(); err != nil {
			break
		}
	}
}

// feedRequest is the first (and only) frame a subscribe-mode client
// sends: which view to follow and how.
type feedRequest struct {
	// View names the feed to follow.
	View string `json:"view"`
	// Resume, when true, asks for replay of every event after From.
	Resume bool `json:"resume,omitempty"`
	// From is the last cursor the client consumed; meaningful only with
	// Resume.
	From uint64 `json:"from,omitempty"`
	// Snapshot requests a full-membership snapshot instead of an error
	// when the resume cursor has been evicted from the replay ring.
	Snapshot bool `json:"snapshot,omitempty"`
	// Policy selects the slow-consumer policy ("block", "drop-oldest",
	// "disconnect"); empty means the hub default.
	Policy string `json:"policy,omitempty"`
	// Buffer sizes the per-subscriber channel; 0 means the hub default.
	Buffer int `json:"buffer,omitempty"`
}

// FeedSnapshot carries a full view membership when a resume cursor has
// expired and the client asked for snapshot fallback.
type FeedSnapshot struct {
	// Cursor is the feed position the membership corresponds to; resume
	// from it after applying Members.
	Cursor uint64 `json:"cursor"`
	// Members is the complete view membership at Cursor.
	Members []oem.OID `json:"members"`
}

// feedHello is the server's first frame in subscribe mode. Either Err is
// set (and the connection closes), or the subscription is live.
type feedHello struct {
	Err string `json:"err,omitempty"`
	// Expired marks Err as a cursor-expiry (feed.ErrCursorExpired), so
	// clients can distinguish "resubscribe with snapshot" from fatal
	// errors.
	Expired bool   `json:"expired,omitempty"`
	View    string `json:"view,omitempty"`
	// Cursor is the feed's current position at subscribe time.
	Cursor uint64 `json:"cursor"`
	// Oldest is the oldest cursor still in the replay ring.
	Oldest uint64 `json:"oldest"`
	// Snapshot is present when the resume cursor was evicted and the
	// client asked for snapshot fallback.
	Snapshot *FeedSnapshot `json:"snapshot,omitempty"`
}

func (s *Server) handleSubscribe(conn net.Conn, br *bufio.Reader) {
	enc := json.NewEncoder(conn)
	s.mu.Lock()
	hub := s.Feed
	s.mu.Unlock()
	if hub == nil {
		_ = enc.Encode(feedHello{Err: "warehouse: server has no feed"})
		return
	}
	sc := frameScanner(br)
	if !sc.Scan() {
		return
	}
	var req feedRequest
	if err := decodeFrame(sc.Bytes(), &req); err != nil {
		_ = enc.Encode(feedHello{Err: err.Error()})
		return
	}
	policy, err := feed.ParsePolicy(req.Policy)
	if err != nil {
		_ = enc.Encode(feedHello{Err: err.Error()})
		return
	}
	sub, err := hub.Subscribe(req.View, feed.SubOptions{
		Resume:           req.Resume,
		From:             req.From,
		Buffer:           req.Buffer,
		Policy:           policy,
		HasPolicy:        req.Policy != "",
		SnapshotOnExpire: req.Snapshot,
	})
	if err != nil {
		_ = enc.Encode(feedHello{Err: err.Error(), Expired: errors.Is(err, feed.ErrCursorExpired)})
		return
	}
	defer sub.Close()
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		return
	default:
	}
	s.feedSubs = append(s.feedSubs, sub)
	s.mu.Unlock()

	hello := feedHello{View: req.View}
	hello.Cursor, _ = hub.Cursor(req.View)
	hello.Oldest = hub.OldestRetained(req.View)
	if snap := sub.Snapshot(); snap != nil {
		hello.Snapshot = &FeedSnapshot{Cursor: snap.Cursor, Members: snap.Members}
	}
	if err := enc.Encode(hello); err != nil {
		return
	}
	// Drain the client side so a peer disconnect tears the subscription
	// down even while the event loop is idle (or blocked publishing).
	go func() {
		_, _ = io.Copy(io.Discard, br)
		sub.Close()
	}()
	for ev := range sub.Events() {
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
}

// FeedRequest configures DialFeed.
type FeedRequest struct {
	// View names the feed to follow.
	View string
	// Resume asks for replay of every event after From.
	Resume bool
	// From is the last cursor consumed; meaningful only with Resume.
	From uint64
	// Snapshot requests full-membership fallback when From has been
	// evicted from the server's replay ring.
	Snapshot bool
	// Policy selects the server-side slow-consumer policy ("block",
	// "drop-oldest", "disconnect"); empty means the server default.
	Policy string
	// Buffer sizes the server-side subscriber channel; 0 means default.
	Buffer int
}

// FeedClient follows one view's changefeed over TCP (subscribe mode).
type FeedClient struct {
	// View is the followed view's name.
	View string
	// Cursor was the feed position at subscribe time.
	Cursor uint64
	// Oldest was the oldest replayable cursor at subscribe time.
	Oldest uint64
	// Snapshot is non-nil when the server answered a resume with a full
	// membership snapshot (the requested cursor had expired).
	Snapshot *FeedSnapshot

	conn net.Conn
	sc   *bufio.Scanner
}

// DialFeed opens a subscribe-mode connection for one view. When the
// server reports that the resume cursor has expired and no snapshot was
// requested, the returned error wraps feed.ErrCursorExpired so callers
// can retry with FeedRequest.Snapshot set.
func DialFeed(addr string, req FeedRequest) (*FeedClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := io.WriteString(conn, "subscribe\n"); err != nil {
		conn.Close()
		return nil, err
	}
	frame, err := json.Marshal(feedRequest{
		View:     req.View,
		Resume:   req.Resume,
		From:     req.From,
		Snapshot: req.Snapshot,
		Policy:   req.Policy,
		Buffer:   req.Buffer,
	})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := conn.Write(append(frame, '\n')); err != nil {
		conn.Close()
		return nil, err
	}
	sc := frameScanner(conn)
	if !sc.Scan() {
		conn.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("warehouse: feed handshake: %w", err)
		}
		return nil, errors.New("warehouse: feed handshake: connection closed")
	}
	var hello feedHello
	if err := decodeFrame(sc.Bytes(), &hello); err != nil {
		conn.Close()
		return nil, err
	}
	if hello.Err != "" {
		conn.Close()
		// hello.Err already carries the hub's "feed: ..." prefix.
		if hello.Expired {
			return nil, &feedExpiredError{msg: "warehouse: " + hello.Err}
		}
		return nil, fmt.Errorf("warehouse: %s", hello.Err)
	}
	return &FeedClient{
		View:     hello.View,
		Cursor:   hello.Cursor,
		Oldest:   hello.Oldest,
		Snapshot: hello.Snapshot,
		conn:     conn,
		sc:       sc,
	}, nil
}

// feedExpiredError carries the server's expired-cursor message while
// keeping errors.Is(err, feed.ErrCursorExpired) true across the wire,
// without repeating the sentinel's text in the rendered message.
type feedExpiredError struct{ msg string }

func (e *feedExpiredError) Error() string { return e.msg }
func (e *feedExpiredError) Unwrap() error { return feed.ErrCursorExpired }

// Next blocks for the next event. It returns io.EOF when the server
// closes the stream.
func (fc *FeedClient) Next() (feed.Event, error) {
	for fc.sc.Scan() {
		line := fc.sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev feed.Event
		if err := decodeFrame(line, &ev); err != nil {
			return feed.Event{}, err
		}
		return ev, nil
	}
	if err := fc.sc.Err(); err != nil {
		return feed.Event{}, err
	}
	return feed.Event{}, io.EOF
}

// Close disconnects the feed.
func (fc *FeedClient) Close() { _ = fc.conn.Close() }

// RemoteSource implements SourceAPI over two TCP connections to a Server.
// All traffic is charged to a local Transport with the *actual* payload
// byte counts — the simulated-transport numbers of the in-process mode can
// be validated against these.
type RemoteSource struct {
	name string
	tr   *Transport

	qmu  sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder

	rmu          sync.Mutex
	reports      []*UpdateReport
	lastSeq      uint64
	rconn        net.Conn
	streamClosed bool
}

// Dial connects to a served source at addr. The name must match the
// served source's name (reports carry it).
func Dial(name, addr string, tr *Transport) (*RemoteSource, error) {
	qconn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := io.WriteString(qconn, "query\n"); err != nil {
		qconn.Close()
		return nil, err
	}
	rconn, err := net.Dial("tcp", addr)
	if err != nil {
		qconn.Close()
		return nil, err
	}
	if _, err := io.WriteString(rconn, "reports\n"); err != nil {
		qconn.Close()
		rconn.Close()
		return nil, err
	}
	// Wait for the server's registration ack: broadcasts sent after Dial
	// returns are guaranteed to reach this stream.
	rbr := bufio.NewReader(rconn)
	if _, err := rbr.ReadString('\n'); err != nil {
		qconn.Close()
		rconn.Close()
		return nil, fmt.Errorf("warehouse: report stream handshake: %w", err)
	}
	rs := &RemoteSource{
		name:  name,
		tr:    tr,
		conn:  qconn,
		enc:   json.NewEncoder(qconn),
		dec:   json.NewDecoder(bufio.NewReader(qconn)),
		rconn: rconn,
	}
	go rs.readReportsFrom(rbr)
	return rs, nil
}

// Close disconnects both connections.
func (rs *RemoteSource) Close() {
	rs.qmu.Lock()
	_ = rs.conn.Close()
	rs.qmu.Unlock()
	_ = rs.rconn.Close()
}

func (rs *RemoteSource) readReportsFrom(r io.Reader) {
	defer func() {
		rs.rmu.Lock()
		rs.streamClosed = true
		rs.rmu.Unlock()
	}()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var r UpdateReport
		if err := json.Unmarshal(line, &r); err != nil {
			continue
		}
		rs.rmu.Lock()
		rs.reports = append(rs.reports, &r)
		if r.Update.Seq > rs.lastSeq {
			rs.lastSeq = r.Update.Seq
		}
		rs.tr.OneWay(len(line)+1, len(r.Objects))
		rs.rmu.Unlock()
	}
}

// ID implements SourceAPI.
func (rs *RemoteSource) ID() string { return rs.name }

// TransportRef implements SourceAPI.
func (rs *RemoteSource) TransportRef() *Transport { return rs.tr }

// LastKnownSeq implements SourceAPI.
func (rs *RemoteSource) LastKnownSeq() uint64 {
	rs.rmu.Lock()
	defer rs.rmu.Unlock()
	return rs.lastSeq
}

// DrainReports implements SourceAPI: reports received so far, in order.
func (rs *RemoteSource) DrainReports() []*UpdateReport {
	rs.rmu.Lock()
	defer rs.rmu.Unlock()
	out := rs.reports
	rs.reports = nil
	return out
}

// WaitReports blocks until at least n reports are buffered or the stream
// closes, then drains. Tests and pull-style integrators use it to
// synchronize with the asynchronous stream.
func (rs *RemoteSource) WaitReports(n int) []*UpdateReport {
	for {
		rs.rmu.Lock()
		if len(rs.reports) >= n {
			out := rs.reports
			rs.reports = nil
			rs.rmu.Unlock()
			return out
		}
		closed := rs.streamClosed
		rs.rmu.Unlock()
		if closed {
			return rs.DrainReports()
		}
		// The reader goroutine fills the buffer; yield briefly.
		time.Sleep(time.Millisecond)
	}
}

// roundTrip sends one request and decodes the response, charging actual
// bytes to the transport.
func (rs *RemoteSource) roundTrip(req netRequest) (netResponse, error) {
	rs.qmu.Lock()
	defer rs.qmu.Unlock()
	reqBytes, err := json.Marshal(req)
	if err != nil {
		return netResponse{}, err
	}
	if err := rs.enc.Encode(req); err != nil {
		return netResponse{}, fmt.Errorf("warehouse: sending %s: %w", req.Op, err)
	}
	var resp netResponse
	if err := rs.dec.Decode(&resp); err != nil {
		return netResponse{}, fmt.Errorf("warehouse: receiving %s: %w", req.Op, err)
	}
	respBytes, _ := json.Marshal(resp)
	rs.tr.RoundTrip(len(reqBytes)+1, len(respBytes)+1, len(resp.Objects))
	rs.rmu.Lock()
	if resp.Seq > rs.lastSeq {
		rs.lastSeq = resp.Seq
	}
	rs.rmu.Unlock()
	return resp, nil
}

// FetchObject implements SourceAPI.
func (rs *RemoteSource) FetchObject(oid oem.OID) (*oem.Object, error) {
	resp, err := rs.roundTrip(netRequest{Op: "object", OID: oid})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("warehouse: remote: %s", resp.Err)
	}
	if len(resp.Objects) == 0 {
		return nil, fmt.Errorf("warehouse: remote returned no object for %s", oid)
	}
	return resp.Objects[0], nil
}

// FetchPath implements SourceAPI.
func (rs *RemoteSource) FetchPath(n oem.OID) (*PathInfo, bool, error) {
	resp, err := rs.roundTrip(netRequest{Op: "path", OID: n})
	if err != nil {
		return nil, false, err
	}
	if resp.Err != "" {
		return nil, false, fmt.Errorf("warehouse: remote: %s", resp.Err)
	}
	return resp.Info, resp.Found, nil
}

// FetchAncestor implements SourceAPI.
func (rs *RemoteSource) FetchAncestor(n oem.OID, p pathexpr.Path) (oem.OID, bool, error) {
	resp, err := rs.roundTrip(netRequest{Op: "ancestor", OID: n, Path: p})
	if err != nil {
		return oem.NoOID, false, err
	}
	if resp.Err != "" {
		return oem.NoOID, false, fmt.Errorf("warehouse: remote: %s", resp.Err)
	}
	return resp.OID, resp.Found, nil
}

// FetchEval implements SourceAPI.
func (rs *RemoteSource) FetchEval(n oem.OID, p pathexpr.Path) ([]*oem.Object, error) {
	resp, err := rs.roundTrip(netRequest{Op: "eval", OID: n, Path: p})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("warehouse: remote: %s", resp.Err)
	}
	return resp.Objects, nil
}

// FetchSubtree implements SourceAPI.
func (rs *RemoteSource) FetchSubtree(n oem.OID, depth int) ([]*oem.Object, error) {
	resp, err := rs.roundTrip(netRequest{Op: "subtree", OID: n, Depth: depth})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("warehouse: remote: %s", resp.Err)
	}
	return resp.Objects, nil
}

// FetchQuery implements SourceAPI.
func (rs *RemoteSource) FetchQuery(q *query.Query) ([]*oem.Object, error) {
	resp, err := rs.roundTrip(netRequest{Op: "query", Query: q.String()})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("warehouse: remote: %s", resp.Err)
	}
	return resp.Objects, nil
}

var _ SourceAPI = (*RemoteSource)(nil)
