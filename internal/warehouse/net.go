package warehouse

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
)

// This file makes the Figure 6 architecture genuinely distributed: a
// Server exposes a Source over TCP with a line-delimited JSON protocol,
// and RemoteSource implements SourceAPI on the warehouse side, so the
// unchanged Warehouse/Integrator machinery maintains views across real
// sockets. The protocol has two connection modes, chosen by the first
// line a client sends:
//
//   - "query": request/response pairs, one JSON object per line each way.
//   - "reports": the server pushes update reports, one JSON object per
//     line; the client never writes.
//
// Every response and report carries the source's current sequence number,
// which feeds the warehouse's interference detection.

// netRequest is one query-mode request.
type netRequest struct {
	Op    string        `json:"op"`
	OID   oem.OID       `json:"oid,omitempty"`
	Path  pathexpr.Path `json:"path,omitempty"`
	Depth int           `json:"depth,omitempty"`
	Query string        `json:"query,omitempty"`
}

// netResponse is one query-mode response.
type netResponse struct {
	Err     string        `json:"err,omitempty"`
	Found   bool          `json:"found,omitempty"`
	OID     oem.OID       `json:"oid,omitempty"`
	Objects []*oem.Object `json:"objects,omitempty"`
	Info    *PathInfo     `json:"info,omitempty"`
	Seq     uint64        `json:"seq"`
}

// Server exposes one Source on a listener.
type Server struct {
	Src *Source

	mu      sync.Mutex
	ln      net.Listener
	streams []chan []byte
	done    chan struct{}
}

// NewServer returns a server for src. Call Serve with a listener.
func NewServer(src *Source) *Server {
	return &Server{Src: src, done: make(chan struct{})}
}

// Serve accepts connections until the listener closes. It returns the
// listener's final error (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

// Close stops accepting and disconnects report streams.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	for _, ch := range s.streams {
		close(ch)
	}
	s.streams = nil
}

// Broadcast ships update reports to every connected report stream. The
// serving application calls it with the reports returned by the source's
// mutation methods (or DrainReports).
func (s *Server) Broadcast(reports []*UpdateReport) error {
	if len(reports) == 0 {
		return nil
	}
	payloads := make([][]byte, 0, len(reports))
	for _, r := range reports {
		data, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("warehouse: encoding report: %w", err)
		}
		payloads = append(payloads, data)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.streams {
		for _, p := range payloads {
			ch <- p
		}
	}
	return nil
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	mode, err := br.ReadString('\n')
	if err != nil {
		return
	}
	switch mode {
	case "query\n":
		s.handleQueries(conn, br)
	case "reports\n":
		s.handleReports(conn)
	}
}

func (s *Server) handleQueries(conn net.Conn, br *bufio.Reader) {
	dec := json.NewDecoder(br)
	enc := json.NewEncoder(conn)
	for {
		var req netRequest
		if err := dec.Decode(&req); err != nil {
			return // disconnect or garbage: drop the connection
		}
		resp := s.dispatch(req)
		resp.Seq = s.Src.Store.Seq()
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// dispatch executes one request against the source. The source-side
// wrapper methods are used directly, but their transport charges are the
// *source's* transport; the warehouse-side client charges its own, so the
// double-entry stays separated per site.
func (s *Server) dispatch(req netRequest) netResponse {
	switch req.Op {
	case "object":
		o, err := s.Src.FetchObject(req.OID)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: true, Objects: []*oem.Object{o}}
	case "path":
		info, ok, err := s.Src.FetchPath(req.OID)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: ok, Info: info}
	case "ancestor":
		y, ok, err := s.Src.FetchAncestor(req.OID, req.Path)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: ok, OID: y}
	case "eval":
		objs, err := s.Src.FetchEval(req.OID, req.Path)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: true, Objects: objs}
	case "subtree":
		objs, err := s.Src.FetchSubtree(req.OID, req.Depth)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: true, Objects: objs}
	case "query":
		q, err := query.Parse(req.Query)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		objs, err := s.Src.FetchQuery(q)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: true, Objects: objs}
	default:
		return netResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func (s *Server) handleReports(conn net.Conn) {
	ch := make(chan []byte, 256)
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		return
	default:
	}
	s.streams = append(s.streams, ch)
	s.mu.Unlock()
	// Acknowledge registration so the dialer knows subsequent broadcasts
	// will reach this stream.
	if _, err := io.WriteString(conn, "ready\n"); err != nil {
		return
	}
	w := bufio.NewWriter(conn)
	for data := range ch {
		if _, err := w.Write(append(data, '\n')); err != nil {
			break
		}
		if err := w.Flush(); err != nil {
			break
		}
	}
}

// RemoteSource implements SourceAPI over two TCP connections to a Server.
// All traffic is charged to a local Transport with the *actual* payload
// byte counts — the simulated-transport numbers of the in-process mode can
// be validated against these.
type RemoteSource struct {
	name string
	tr   *Transport

	qmu  sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder

	rmu          sync.Mutex
	reports      []*UpdateReport
	lastSeq      uint64
	rconn        net.Conn
	streamClosed bool
}

// Dial connects to a served source at addr. The name must match the
// served source's name (reports carry it).
func Dial(name, addr string, tr *Transport) (*RemoteSource, error) {
	qconn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := io.WriteString(qconn, "query\n"); err != nil {
		qconn.Close()
		return nil, err
	}
	rconn, err := net.Dial("tcp", addr)
	if err != nil {
		qconn.Close()
		return nil, err
	}
	if _, err := io.WriteString(rconn, "reports\n"); err != nil {
		qconn.Close()
		rconn.Close()
		return nil, err
	}
	// Wait for the server's registration ack: broadcasts sent after Dial
	// returns are guaranteed to reach this stream.
	rbr := bufio.NewReader(rconn)
	if _, err := rbr.ReadString('\n'); err != nil {
		qconn.Close()
		rconn.Close()
		return nil, fmt.Errorf("warehouse: report stream handshake: %w", err)
	}
	rs := &RemoteSource{
		name:  name,
		tr:    tr,
		conn:  qconn,
		enc:   json.NewEncoder(qconn),
		dec:   json.NewDecoder(bufio.NewReader(qconn)),
		rconn: rconn,
	}
	go rs.readReportsFrom(rbr)
	return rs, nil
}

// Close disconnects both connections.
func (rs *RemoteSource) Close() {
	rs.qmu.Lock()
	_ = rs.conn.Close()
	rs.qmu.Unlock()
	_ = rs.rconn.Close()
}

func (rs *RemoteSource) readReportsFrom(r io.Reader) {
	defer func() {
		rs.rmu.Lock()
		rs.streamClosed = true
		rs.rmu.Unlock()
	}()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var r UpdateReport
		if err := json.Unmarshal(line, &r); err != nil {
			continue
		}
		rs.rmu.Lock()
		rs.reports = append(rs.reports, &r)
		if r.Update.Seq > rs.lastSeq {
			rs.lastSeq = r.Update.Seq
		}
		rs.tr.OneWay(len(line)+1, len(r.Objects))
		rs.rmu.Unlock()
	}
}

// ID implements SourceAPI.
func (rs *RemoteSource) ID() string { return rs.name }

// TransportRef implements SourceAPI.
func (rs *RemoteSource) TransportRef() *Transport { return rs.tr }

// LastKnownSeq implements SourceAPI.
func (rs *RemoteSource) LastKnownSeq() uint64 {
	rs.rmu.Lock()
	defer rs.rmu.Unlock()
	return rs.lastSeq
}

// DrainReports implements SourceAPI: reports received so far, in order.
func (rs *RemoteSource) DrainReports() []*UpdateReport {
	rs.rmu.Lock()
	defer rs.rmu.Unlock()
	out := rs.reports
	rs.reports = nil
	return out
}

// WaitReports blocks until at least n reports are buffered or the stream
// closes, then drains. Tests and pull-style integrators use it to
// synchronize with the asynchronous stream.
func (rs *RemoteSource) WaitReports(n int) []*UpdateReport {
	for {
		rs.rmu.Lock()
		if len(rs.reports) >= n {
			out := rs.reports
			rs.reports = nil
			rs.rmu.Unlock()
			return out
		}
		closed := rs.streamClosed
		rs.rmu.Unlock()
		if closed {
			return rs.DrainReports()
		}
		// The reader goroutine fills the buffer; yield briefly.
		time.Sleep(time.Millisecond)
	}
}

// roundTrip sends one request and decodes the response, charging actual
// bytes to the transport.
func (rs *RemoteSource) roundTrip(req netRequest) (netResponse, error) {
	rs.qmu.Lock()
	defer rs.qmu.Unlock()
	reqBytes, err := json.Marshal(req)
	if err != nil {
		return netResponse{}, err
	}
	if err := rs.enc.Encode(req); err != nil {
		return netResponse{}, fmt.Errorf("warehouse: sending %s: %w", req.Op, err)
	}
	var resp netResponse
	if err := rs.dec.Decode(&resp); err != nil {
		return netResponse{}, fmt.Errorf("warehouse: receiving %s: %w", req.Op, err)
	}
	respBytes, _ := json.Marshal(resp)
	rs.tr.RoundTrip(len(reqBytes)+1, len(respBytes)+1, len(resp.Objects))
	rs.rmu.Lock()
	if resp.Seq > rs.lastSeq {
		rs.lastSeq = resp.Seq
	}
	rs.rmu.Unlock()
	return resp, nil
}

// FetchObject implements SourceAPI.
func (rs *RemoteSource) FetchObject(oid oem.OID) (*oem.Object, error) {
	resp, err := rs.roundTrip(netRequest{Op: "object", OID: oid})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("warehouse: remote: %s", resp.Err)
	}
	if len(resp.Objects) == 0 {
		return nil, fmt.Errorf("warehouse: remote returned no object for %s", oid)
	}
	return resp.Objects[0], nil
}

// FetchPath implements SourceAPI.
func (rs *RemoteSource) FetchPath(n oem.OID) (*PathInfo, bool, error) {
	resp, err := rs.roundTrip(netRequest{Op: "path", OID: n})
	if err != nil {
		return nil, false, err
	}
	if resp.Err != "" {
		return nil, false, fmt.Errorf("warehouse: remote: %s", resp.Err)
	}
	return resp.Info, resp.Found, nil
}

// FetchAncestor implements SourceAPI.
func (rs *RemoteSource) FetchAncestor(n oem.OID, p pathexpr.Path) (oem.OID, bool, error) {
	resp, err := rs.roundTrip(netRequest{Op: "ancestor", OID: n, Path: p})
	if err != nil {
		return oem.NoOID, false, err
	}
	if resp.Err != "" {
		return oem.NoOID, false, fmt.Errorf("warehouse: remote: %s", resp.Err)
	}
	return resp.OID, resp.Found, nil
}

// FetchEval implements SourceAPI.
func (rs *RemoteSource) FetchEval(n oem.OID, p pathexpr.Path) ([]*oem.Object, error) {
	resp, err := rs.roundTrip(netRequest{Op: "eval", OID: n, Path: p})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("warehouse: remote: %s", resp.Err)
	}
	return resp.Objects, nil
}

// FetchSubtree implements SourceAPI.
func (rs *RemoteSource) FetchSubtree(n oem.OID, depth int) ([]*oem.Object, error) {
	resp, err := rs.roundTrip(netRequest{Op: "subtree", OID: n, Depth: depth})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("warehouse: remote: %s", resp.Err)
	}
	return resp.Objects, nil
}

// FetchQuery implements SourceAPI.
func (rs *RemoteSource) FetchQuery(q *query.Query) ([]*oem.Object, error) {
	resp, err := rs.roundTrip(netRequest{Op: "query", Query: q.String()})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("warehouse: remote: %s", resp.Err)
	}
	return resp.Objects, nil
}

var _ SourceAPI = (*RemoteSource)(nil)
