package warehouse

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gsv/internal/feed"
	"gsv/internal/obs"
	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
)

// This file makes the Figure 6 architecture genuinely distributed: a
// Server exposes a Source over TCP with a line-delimited JSON protocol,
// and RemoteSource implements SourceAPI on the warehouse side, so the
// unchanged Warehouse/Integrator machinery maintains views across real
// sockets. The protocol has three connection modes, chosen by the first
// line a client sends:
//
//   - "query": request/response pairs, one JSON object per line each way.
//   - "reports": the server pushes update reports, one JSON object per
//     line; the client never writes.
//   - "subscribe": the client sends one feedRequest line naming a view
//     (and optionally a resume cursor); the server answers a feedHello
//     and then pushes one feed.Event per line (docs/CHANGEFEED.md).
//
// Every response and report carries the source's current sequence number,
// which feeds the warehouse's interference detection.
//
// Failure handling (docs/WAREHOUSE.md "Failure model"): every query-mode
// frame is bounded by a read/write deadline, failed idempotent
// query-backs are retried under a RetryPolicy, and both connections
// redial automatically after a drop. A failed exchange closes the query
// connection instead of reusing it, so a timeout can never desync the
// encoder/decoder pair. Report-stream outages are detected as *gaps*
// (reports are broadcast only to connected streams) and surfaced through
// TakeGap, which the warehouse turns into view staleness.

// maxFrame bounds one protocol line; longer frames fail the connection
// (queries) or the decode (everything decodeFrame guards).
const maxFrame = 1 << 20

// errFrameTooLarge rejects frames longer than maxFrame.
var errFrameTooLarge = errors.New("warehouse: frame exceeds 1MiB limit")

// errClosed marks operations on a closed RemoteSource.
var errClosed = errors.New("warehouse: remote source closed")

// decodeFrame parses one line-delimited JSON frame into v. A frame is a
// single JSON object — malformed JSON, trailing data after the object,
// and oversized lines all error cleanly so a hostile peer can never
// panic the server.
func decodeFrame(line []byte, v any) error {
	if len(line) > maxFrame {
		return errFrameTooLarge
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("warehouse: bad frame: %w", err)
	}
	if dec.More() {
		return errors.New("warehouse: trailing data after frame")
	}
	return nil
}

// frameScanner wraps a reader in a line scanner bounded at maxFrame.
func frameScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 4096), maxFrame)
	return sc
}

// netRequest is one query-mode request.
type netRequest struct {
	Op    string        `json:"op"`
	OID   oem.OID       `json:"oid,omitempty"`
	Path  pathexpr.Path `json:"path,omitempty"`
	Depth int           `json:"depth,omitempty"`
	Query string        `json:"query,omitempty"`
	// View names the target view for the "members" op.
	View string `json:"view,omitempty"`
	// At pins the "queryat" op to a source sequence number: the answer
	// reflects exactly the updates with Seq <= At. Zero means current.
	At uint64 `json:"at,omitempty"`
	// BudgetMS is the client's remaining deadline budget in
	// milliseconds (deadline propagation, docs/WAREHOUSE.md "Overload &
	// graceful drain"). The server bounds its admission-queue wait by
	// it and sheds the request with ErrBudgetExpired once it elapses —
	// computing an answer the client stopped waiting for is pure waste.
	// Zero means no budget; negative means already expired on arrival.
	// Old servers ignore the field.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// DeadlineUnixMS, when positive, is the absolute deadline as a Unix
	// timestamp in milliseconds, and takes precedence over BudgetMS.
	// An absolute deadline makes time burned *upstream* of the server —
	// in kernel socket queues and the scheduler — count against the
	// budget, so dead-on-arrival requests shed instead of wasting an
	// evaluation. Only stamp it when client and server clocks are
	// disciplined (same host or NTP); RemoteSource deliberately sticks
	// to the skew-immune relative BudgetMS. Old servers ignore it.
	DeadlineUnixMS int64 `json:"deadline_unix_ms,omitempty"`
}

// netResponse is one query-mode response.
type netResponse struct {
	Err     string        `json:"err,omitempty"`
	Found   bool          `json:"found,omitempty"`
	OID     oem.OID       `json:"oid,omitempty"`
	Objects []*oem.Object `json:"objects,omitempty"`
	Info    *PathInfo     `json:"info,omitempty"`
	Stats   *StatsPayload `json:"stats,omitempty"`
	// Trace answers the "trace" op: this node's recent propagation span
	// chains (see trace.go).
	Trace *TracePayload `json:"trace,omitempty"`
	// Members answers the "members" op: the named view's full current
	// membership (base OIDs, sorted).
	Members []oem.OID `json:"members,omitempty"`
	// Shard answers the "shard" op: which partition of a federation this
	// server carries and how healthy it is (see shard.go).
	Shard *ShardPayload `json:"shard,omitempty"`
	Seq   uint64        `json:"seq"`
}

// Server exposes one Source on a listener.
type Server struct {
	Src *Source
	// Feed, when non-nil, enables the "subscribe" connection mode over
	// this hub's changefeed. Set it before Serve; the serving
	// application (cmd/gsdbserve) points it at the hub of the warehouse
	// hosting its views.
	Feed *feed.Hub
	// Obs, when non-nil, enables the "stats" query-mode request: clients
	// receive a snapshot of this registry. Set it before Serve.
	Obs *obs.Registry
	// Traces, when non-nil, attaches the most recent maintenance traces
	// to stats responses.
	Traces *obs.TraceRing
	// Chains, when non-nil, enables the "trace" query-mode request:
	// clients receive this node's recent propagation span chains. Nil
	// servers answer with an unknown-op error so old binaries stay
	// protocol-compatible. Node names this server in the payload
	// (default "primary").
	Chains *obs.ChainRing
	Node   string
	// IOTimeout, when positive, bounds every frame write the server
	// performs (query responses, report pushes, feed events) so one
	// stalled peer cannot wedge a handler goroutine forever. Set it
	// before Serve.
	IOTimeout time.Duration
	// Members, when non-nil, answers the "members" query-mode op: the
	// full current membership of a named view. Serving applications wire
	// it to their warehouse's FreshMembers (primaries) or the replica's
	// view set (replicas); nil servers answer with an unknown-op error so
	// old binaries stay protocol-compatible.
	Members func(view string) ([]oem.OID, error)
	// ReadGate, when non-nil, runs before every query-mode op. A non-nil
	// error is returned to the client instead of the op's result —
	// replicas use it to enforce the bounded-staleness guarantee
	// (rejecting data reads while lag exceeds the bound) while letting
	// "stats" through so operators can inspect a lagging node.
	ReadGate func(op string) error
	// FeedProgressInterval paces the progress heartbeat frames on
	// multi-view subscriptions; 0 means the 500ms default.
	FeedProgressInterval time.Duration
	// ShardInfo, when non-nil, answers the "shard" query-mode op: the
	// per-source federation handshake describing which partition this
	// server carries and its health (see shard.go). Nil servers answer
	// with an unknown-op error so old binaries stay protocol-compatible.
	ShardInfo func() *ShardPayload
	// Admission, when non-nil, enables overload protection: the
	// connection cap, the stream cap and the weighted read semaphore
	// (see overload.go). Set it before Serve. Nil admits everything,
	// but Drain still sheds data reads while draining.
	Admission *AdmissionController
	// IdleTimeout, when positive, bounds how long a query-mode
	// connection may sit idle between frames (and every connection's
	// initial mode line): an idle or half-dead client is disconnected
	// instead of pinning a goroutine and conn entry forever. Report and
	// subscribe streams are exempt after their handshake — they are
	// server-push, so a silent client is their normal state.
	IdleTimeout time.Duration
	// DrainGrace is how long Drain keeps answering exempt ops (and
	// shedding data reads) before waiting out in-flight work — the
	// window in which load balancers observe the 503 /readyz and stop
	// routing here. Zero means no grace window.
	DrainGrace time.Duration

	// DroppedBroadcasts counts report frames discarded because a report
	// stream's buffer was full (a slow or dead consumer). The consumer
	// observes the loss as a sequence gap and resyncs.
	DroppedBroadcasts obs.Counter

	// draining flips on when Drain starts; data reads are shed with
	// ErrDraining from then on. inflight tracks query-mode ops between
	// admission and response write, so Drain can wait them out.
	draining atomic.Bool
	inflight atomic.Int64

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	streams  []chan []byte
	feedSubs []*feed.Subscription
	done     chan struct{}
}

// NewServer returns a server for src. Call Serve with a listener.
func NewServer(src *Source) *Server {
	return &Server{Src: src, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
}

// Serve accepts connections until the listener closes. It returns the
// listener's final error (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	select {
	case <-s.done:
		// Close already ran (it found no listener to tear down): serving
		// now would squat on the address with nobody left to release it.
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	default:
	}
	s.ln = ln
	s.mu.Unlock()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Transient accept failures (fd exhaustion, ECONNABORTED)
			// must not kill the listener: back off with a doubling cap
			// and retry. Permanent errors (listener closed) still end
			// the loop.
			var ne net.Error
			if errors.As(err, &ne) && (ne.Timeout() || ne.Temporary()) {
				if s.Admission != nil {
					s.Admission.AcceptRetries.Inc()
				}
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				select {
				case <-s.done:
					return net.ErrClosed
				case <-time.After(backoff):
				}
				continue
			}
			return err
		}
		backoff = 0
		if s.Admission != nil && !s.Admission.AdmitConn() {
			// Over the connection cap: refuse at accept. An abortive
			// close is the cheapest possible signal for both sides.
			abortConn(conn)
			continue
		}
		s.mu.Lock()
		select {
		case <-s.done:
			s.mu.Unlock()
			if s.Admission != nil {
				s.Admission.ReleaseConn()
			}
			conn.Close()
			ln.Close()
			return net.ErrClosed
		default:
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Draining reports whether Drain has started: new data reads are being
// shed and /readyz should answer 503.
func (s *Server) Draining() bool { return s.draining.Load() }

// ConnCount returns the number of live tracked connections.
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Drain gracefully degrades and shuts the server down: it flips the
// draining flag (data reads shed with the retryable ErrDraining, exempt
// ops keep answering, /readyz composed with Draining turns 503), stops
// accepting by closing the listener, lingers DrainGrace so load
// balancers observe the flip, waits for in-flight ops to finish, then
// closes every connection — which is also how feed subscribers learn
// the node is gone (their redial machinery takes over). It returns
// ctx.Err when in-flight work outlives ctx (the server closes
// abortively in that case), nil on a clean drain.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.Swap(true) && s.Admission != nil {
		s.Admission.Drains.Inc()
	}
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	if s.DrainGrace > 0 {
		select {
		case <-time.After(s.DrainGrace):
		case <-ctx.Done():
		}
	}
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			s.Close()
			return ctx.Err()
		case <-tick.C:
		}
	}
	s.Close()
	return nil
}

// Close stops accepting, disconnects every open connection (query,
// report and subscribe alike — a closed server must actually be gone, so
// restart drills exercise real reconnects), and tears down feed
// subscriptions.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return
	default:
		close(s.done)
	}
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.conns = make(map[net.Conn]struct{})
	s.streams = nil
	for _, sub := range s.feedSubs {
		sub.Close()
	}
	s.feedSubs = nil
}

// Broadcast ships update reports to every connected report stream. The
// serving application calls it with the reports returned by the source's
// mutation methods (or DrainReports). A stream whose buffer is full has
// the frame dropped rather than blocking the broadcaster; the consumer
// detects the loss as a report-sequence gap and resyncs.
func (s *Server) Broadcast(reports []*UpdateReport) error {
	if len(reports) == 0 {
		return nil
	}
	payloads := make([][]byte, 0, len(reports))
	for _, r := range reports {
		data, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("warehouse: encoding report: %w", err)
		}
		payloads = append(payloads, data)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return nil
	default:
	}
	for _, ch := range s.streams {
		for _, p := range payloads {
			select {
			case ch <- p:
			default:
				s.DroppedBroadcasts.Inc()
			}
		}
	}
	return nil
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		if s.Admission != nil {
			s.Admission.ReleaseConn()
		}
	}()
	// The mode line must arrive promptly on every connection: a client
	// that dials and says nothing would otherwise hold a goroutine and
	// a conn slot forever.
	s.armRead(conn)
	br := bufio.NewReader(conn)
	mode, err := br.ReadString('\n')
	if err != nil {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	switch mode {
	case "query\n":
		s.handleQueries(conn, br)
	case "reports\n":
		s.handleReports(conn)
	case "subscribe\n":
		s.handleSubscribe(conn, br)
	}
}

// armWrite applies the server's write deadline to one frame write.
func (s *Server) armWrite(conn net.Conn) {
	if s.IOTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.IOTimeout))
	}
}

// armRead applies the server's idle read deadline ahead of one frame
// read.
func (s *Server) armRead(conn net.Conn) {
	if s.IdleTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
	}
}

func (s *Server) handleQueries(conn net.Conn, br *bufio.Reader) {
	enc := json.NewEncoder(conn)
	sc := frameScanner(br)
	for {
		s.armRead(conn)
		if !sc.Scan() {
			return
		}
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var req netRequest
		if err := decodeFrame(line, &req); err != nil {
			// A malformed frame gets an error response; the connection
			// survives because framing is still intact (line-delimited).
			s.armWrite(conn)
			if err := enc.Encode(netResponse{Err: err.Error(), Seq: s.Src.Store.Seq()}); err != nil {
				return
			}
			continue
		}
		s.inflight.Add(1)
		resp, release := s.serveOp(req)
		resp.Seq = s.Src.Store.Seq()
		s.armWrite(conn)
		err := enc.Encode(resp)
		// The admission permit spans the response write: shipping the
		// answer through a slow link is part of the request's cost.
		release()
		s.inflight.Add(-1)
		if err != nil {
			return
		}
	}
}

// serveOp runs one request through admission control and dispatch. The
// returned release function must be called after the response write
// (it returns the admission permit; a no-op when none was acquired).
func (s *Server) serveOp(req netRequest) (netResponse, func()) {
	noop := func() {}
	if ClassifyOp(req.Op) == ClassExempt {
		// Health and topology ops bypass admission entirely: they must
		// answer precisely when everything else is being shed.
		return s.dispatch(req), noop
	}
	ac := s.Admission
	if s.draining.Load() {
		if ac != nil {
			ac.ShedReads.Inc()
		}
		return netResponse{Err: ErrDraining.Error()}, noop
	}
	if req.BudgetMS < 0 {
		if ac != nil {
			ac.Expired.Inc()
		}
		return netResponse{Err: ErrBudgetExpired.Error()}, noop
	}
	if ac == nil {
		return s.dispatch(req), noop
	}
	var deadline time.Time
	switch {
	case req.DeadlineUnixMS > 0:
		deadline = time.UnixMilli(req.DeadlineUnixMS)
	case req.BudgetMS > 0:
		deadline = time.Now().Add(time.Duration(req.BudgetMS) * time.Millisecond)
	}
	// cutoff is the deadline minus the configured slack: a request past
	// it is dead on arrival or will be by the time its answer lands —
	// either way the budget burned upstream (an absolute deadline sees
	// kernel and scheduler queueing the server never would), so shed
	// before admission where it costs no queue slot.
	cutoff := deadline
	if !deadline.IsZero() {
		cutoff = deadline.Add(-ac.cfg.MinSlack)
	}
	if !cutoff.IsZero() && time.Now().After(cutoff) {
		ac.Expired.Inc()
		return netResponse{Err: ErrBudgetExpired.Error()}, noop
	}
	weight := OpWeight(req.Op)
	if err := ac.Acquire(weight, deadline); err != nil {
		return netResponse{Err: err.Error()}, noop
	}
	release := func() { ac.Release(weight) }
	if !cutoff.IsZero() && time.Now().After(cutoff) {
		// The remaining budget burned up in the admission queue: the
		// client gave up (or is about to), so don't compute a dead
		// answer.
		ac.Expired.Inc()
		return netResponse{Err: ErrBudgetExpired.Error()}, release
	}
	return s.dispatch(req), release
}

// dispatch executes one request against the source. The source-side
// wrapper methods are used directly, but their transport charges are the
// *source's* transport; the warehouse-side client charges its own, so the
// double-entry stays separated per site.
func (s *Server) dispatch(req netRequest) netResponse {
	if s.ReadGate != nil {
		if err := s.ReadGate(req.Op); err != nil {
			return netResponse{Err: err.Error()}
		}
	}
	switch req.Op {
	case "object":
		o, err := s.Src.FetchObject(req.OID)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: true, Objects: []*oem.Object{o}}
	case "path":
		info, ok, err := s.Src.FetchPath(req.OID)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: ok, Info: info}
	case "ancestor":
		y, ok, err := s.Src.FetchAncestor(req.OID, req.Path)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: ok, OID: y}
	case "eval":
		objs, err := s.Src.FetchEval(req.OID, req.Path)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: true, Objects: objs}
	case "subtree":
		objs, err := s.Src.FetchSubtree(req.OID, req.Depth)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: true, Objects: objs}
	case "query":
		q, err := query.Parse(req.Query)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		objs, err := s.Src.FetchQuery(q)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: true, Objects: objs}
	case "queryat":
		q, err := query.Parse(req.Query)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		objs, err := s.Src.FetchQueryAt(q, req.At)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: true, Objects: objs}
	case "stats":
		payload, errStr := s.statsPayload()
		if errStr != "" {
			return netResponse{Err: errStr}
		}
		return netResponse{Found: true, Stats: payload}
	case "trace":
		if s.Chains == nil {
			// Answer exactly like an old binary so clients map it to
			// ErrUnsupportedRequest.
			return netResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
		}
		return netResponse{Found: true, Trace: s.tracePayload(req.View)}
	case "members":
		if s.Members == nil {
			// Answer exactly like an old binary so clients map it to
			// ErrUnsupportedRequest.
			return netResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
		}
		members, err := s.Members(req.View)
		if err != nil {
			return netResponse{Err: err.Error()}
		}
		return netResponse{Found: true, Members: members}
	case "shard":
		if s.ShardInfo == nil {
			// Answer exactly like an old binary so clients map it to
			// ErrUnsupportedRequest.
			return netResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
		}
		return netResponse{Found: true, Shard: s.ShardInfo()}
	default:
		return netResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func (s *Server) handleReports(conn net.Conn) {
	if s.Admission != nil {
		if !s.Admission.AdmitStream() {
			// Refused before the "ready" ack: the dialer's handshake
			// fails and its redial policy retries later.
			return
		}
		defer s.Admission.ReleaseStream()
	}
	ch := make(chan []byte, 256)
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		return
	default:
	}
	s.streams = append(s.streams, ch)
	s.mu.Unlock()
	defer s.removeStream(ch)
	// Acknowledge registration so the dialer knows subsequent broadcasts
	// will reach this stream.
	s.armWrite(conn)
	if _, err := io.WriteString(conn, "ready\n"); err != nil {
		return
	}
	w := bufio.NewWriter(conn)
	for {
		select {
		case <-s.done:
			return
		case data := <-ch:
			s.armWrite(conn)
			if _, err := w.Write(append(data, '\n')); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// removeStream unregisters one report stream so broadcasts stop filling
// its buffer after the consumer is gone.
func (s *Server) removeStream(ch chan []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, c := range s.streams {
		if c == ch {
			s.streams = append(s.streams[:i], s.streams[i+1:]...)
			return
		}
	}
}

// feedRequest is the first (and only) frame a subscribe-mode client
// sends: which view to follow and how.
type feedRequest struct {
	// View names the feed to follow.
	View string `json:"view"`
	// Resume, when true, asks for replay of every event after From.
	Resume bool `json:"resume,omitempty"`
	// From is the last cursor the client consumed; meaningful only with
	// Resume.
	From uint64 `json:"from,omitempty"`
	// Snapshot requests a full-membership snapshot instead of an error
	// when the resume cursor has been evicted from the replay ring.
	Snapshot bool `json:"snapshot,omitempty"`
	// Policy selects the slow-consumer policy ("block", "drop-oldest",
	// "disconnect"); empty means the hub default.
	Policy string `json:"policy,omitempty"`
	// Buffer sizes the per-subscriber channel; 0 means the hub default.
	Buffer int `json:"buffer,omitempty"`
	// Views, when non-empty, selects the multi-view subscription mode:
	// one connection carries every named view's events plus periodic
	// progress frames (docs/REPLICA.md). ["*"] subscribes to every view
	// the hub knows. View/Resume/From are ignored; per-view resume
	// cursors travel in Froms. Old servers ignore this field and answer
	// a single-view hello for the empty View — clients detect that as a
	// version mismatch (ErrUnsupportedRequest).
	Views []string `json:"views,omitempty"`
	// Froms maps view name to the last cursor the client consumed; a
	// view listed in Views but absent here tails from the current cursor
	// (with a full snapshot when Snapshot is set).
	Froms map[string]uint64 `json:"froms,omitempty"`
}

// FeedSnapshot carries a full view membership when a resume cursor has
// expired and the client asked for snapshot fallback.
type FeedSnapshot struct {
	// Cursor is the feed position the membership corresponds to; resume
	// from it after applying Members.
	Cursor uint64 `json:"cursor"`
	// Members is the complete view membership at Cursor.
	Members []oem.OID `json:"members"`
}

// feedHello is the server's first frame in subscribe mode. Either Err is
// set (and the connection closes), or the subscription is live.
type feedHello struct {
	Err string `json:"err,omitempty"`
	// Expired marks Err as a cursor-expiry (feed.ErrCursorExpired), so
	// clients can distinguish "resubscribe with snapshot" from fatal
	// errors.
	Expired bool   `json:"expired,omitempty"`
	View    string `json:"view,omitempty"`
	// Cursor is the feed's current position at subscribe time.
	Cursor uint64 `json:"cursor"`
	// Oldest is the oldest cursor still in the replay ring.
	Oldest uint64 `json:"oldest"`
	// Snapshot is present when the resume cursor was evicted and the
	// client asked for snapshot fallback.
	Snapshot *FeedSnapshot `json:"snapshot,omitempty"`
	// Seq and Views answer multi-view subscriptions (feedRequest.Views):
	// the primary's base sequence number at subscribe time and one
	// handshake entry per subscribed view. Single-view subscriptions
	// leave them empty.
	Seq   uint64          `json:"seq,omitempty"`
	Views []FeedViewHello `json:"views,omitempty"`
}

func (s *Server) handleSubscribe(conn net.Conn, br *bufio.Reader) {
	enc := json.NewEncoder(conn)
	s.mu.Lock()
	hub := s.Feed
	s.mu.Unlock()
	if hub == nil {
		s.armWrite(conn)
		_ = enc.Encode(feedHello{Err: "warehouse: server has no feed"})
		return
	}
	sc := frameScanner(br)
	s.armRead(conn)
	if !sc.Scan() {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	var req feedRequest
	if err := decodeFrame(sc.Bytes(), &req); err != nil {
		s.armWrite(conn)
		_ = enc.Encode(feedHello{Err: err.Error()})
		return
	}
	if s.Admission != nil {
		if !s.Admission.AdmitStream() {
			s.armWrite(conn)
			_ = enc.Encode(feedHello{Err: ErrOverloaded.Error()})
			return
		}
		defer s.Admission.ReleaseStream()
	}
	if len(req.Views) > 0 {
		s.handleMultiSubscribe(conn, br, enc, hub, req)
		return
	}
	policy, err := feed.ParsePolicy(req.Policy)
	if err != nil {
		s.armWrite(conn)
		_ = enc.Encode(feedHello{Err: err.Error()})
		return
	}
	sub, err := hub.Subscribe(req.View, feed.SubOptions{
		Resume:           req.Resume,
		From:             req.From,
		Buffer:           req.Buffer,
		Policy:           policy,
		HasPolicy:        req.Policy != "",
		SnapshotOnExpire: req.Snapshot,
	})
	if err != nil {
		s.armWrite(conn)
		_ = enc.Encode(feedHello{Err: err.Error(), Expired: errors.Is(err, feed.ErrCursorExpired)})
		return
	}
	defer sub.Close()
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		return
	default:
	}
	s.feedSubs = append(s.feedSubs, sub)
	s.mu.Unlock()

	hello := feedHello{View: req.View}
	hello.Cursor, _ = hub.Cursor(req.View)
	hello.Oldest = hub.OldestRetained(req.View)
	if snap := sub.Snapshot(); snap != nil {
		hello.Snapshot = &FeedSnapshot{Cursor: snap.Cursor, Members: snap.Members}
	}
	s.armWrite(conn)
	if err := enc.Encode(hello); err != nil {
		return
	}
	// Drain the client side so a peer disconnect tears the subscription
	// down even while the event loop is idle (or blocked publishing).
	go func() {
		_, _ = io.Copy(io.Discard, br)
		sub.Close()
	}()
	for ev := range sub.Events() {
		s.armWrite(conn)
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
}

// FeedRequest configures DialFeed.
type FeedRequest struct {
	// View names the feed to follow.
	View string
	// Resume asks for replay of every event after From.
	Resume bool
	// From is the last cursor consumed; meaningful only with Resume.
	From uint64
	// Snapshot requests full-membership fallback when From has been
	// evicted from the server's replay ring.
	Snapshot bool
	// Policy selects the server-side slow-consumer policy ("block",
	// "drop-oldest", "disconnect"); empty means the server default.
	Policy string
	// Buffer sizes the server-side subscriber channel; 0 means default.
	Buffer int
}

// FeedClient follows one view's changefeed over TCP (subscribe mode).
type FeedClient struct {
	// View is the followed view's name.
	View string
	// Cursor was the feed position at subscribe time.
	Cursor uint64
	// Oldest was the oldest replayable cursor at subscribe time.
	Oldest uint64
	// Snapshot is non-nil when the server answered a resume with a full
	// membership snapshot (the requested cursor had expired).
	Snapshot *FeedSnapshot

	conn net.Conn
	sc   *bufio.Scanner
}

// DialFeed opens a subscribe-mode connection for one view. When the
// server reports that the resume cursor has expired and no snapshot was
// requested, the returned error wraps feed.ErrCursorExpired so callers
// can retry with FeedRequest.Snapshot set.
func DialFeed(addr string, req FeedRequest) (*FeedClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := io.WriteString(conn, "subscribe\n"); err != nil {
		conn.Close()
		return nil, err
	}
	frame, err := json.Marshal(feedRequest{
		View:     req.View,
		Resume:   req.Resume,
		From:     req.From,
		Snapshot: req.Snapshot,
		Policy:   req.Policy,
		Buffer:   req.Buffer,
	})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := conn.Write(append(frame, '\n')); err != nil {
		conn.Close()
		return nil, err
	}
	sc := frameScanner(conn)
	if !sc.Scan() {
		conn.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("warehouse: feed handshake: %w", err)
		}
		return nil, errors.New("warehouse: feed handshake: connection closed")
	}
	var hello feedHello
	if err := decodeFrame(sc.Bytes(), &hello); err != nil {
		conn.Close()
		return nil, err
	}
	if hello.Err != "" {
		conn.Close()
		// hello.Err already carries the hub's "feed: ..." prefix.
		if hello.Expired {
			return nil, &feedExpiredError{msg: "warehouse: " + hello.Err}
		}
		if strings.Contains(hello.Err, overloadMarker) {
			return nil, &overloadedError{msg: "warehouse: " + hello.Err}
		}
		return nil, fmt.Errorf("warehouse: %s", hello.Err)
	}
	return &FeedClient{
		View:     hello.View,
		Cursor:   hello.Cursor,
		Oldest:   hello.Oldest,
		Snapshot: hello.Snapshot,
		conn:     conn,
		sc:       sc,
	}, nil
}

// feedExpiredError carries the server's expired-cursor message while
// keeping errors.Is(err, feed.ErrCursorExpired) true across the wire,
// without repeating the sentinel's text in the rendered message.
type feedExpiredError struct{ msg string }

func (e *feedExpiredError) Error() string { return e.msg }
func (e *feedExpiredError) Unwrap() error { return feed.ErrCursorExpired }

// Next blocks for the next event. It returns io.EOF when the server
// closes the stream.
func (fc *FeedClient) Next() (feed.Event, error) {
	for fc.sc.Scan() {
		line := fc.sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev feed.Event
		if err := decodeFrame(line, &ev); err != nil {
			return feed.Event{}, err
		}
		return ev, nil
	}
	if err := fc.sc.Err(); err != nil {
		return feed.Event{}, err
	}
	return feed.Event{}, io.EOF
}

// Close disconnects the feed.
func (fc *FeedClient) Close() { _ = fc.conn.Close() }

// DialOptions configures the fault tolerance of a RemoteSource.
type DialOptions struct {
	// IOTimeout bounds each frame write and each response read on the
	// query connection (and connection handshakes). Zero means no
	// deadline.
	IOTimeout time.Duration
	// Retry governs retries of failed idempotent query-backs. Every
	// SourceAPI call is a read, so a request whose response was lost can
	// be safely re-sent on a fresh connection. The zero policy means one
	// attempt (fail fast).
	Retry RetryPolicy
	// Redial governs re-establishing the report stream after a drop.
	// The zero policy is replaced by DefaultRedialPolicy; to disable
	// redial set MaxAttempts to a negative value.
	Redial RetryPolicy
	// Seed seeds the backoff jitter so tests replay identical schedules.
	// Zero uses a fixed default seed.
	Seed int64
}

// DefaultDialOptions is what plain Dial uses: bounded frames, retried
// query-backs, and automatic report-stream redial.
func DefaultDialOptions() DialOptions {
	return DialOptions{
		IOTimeout: 10 * time.Second,
		Retry:     DefaultRetryPolicy,
		Redial:    DefaultRedialPolicy,
	}
}

// WireStats counts the client side of the wire protocol's failure
// handling. The counters are atomic; RegisterObs exposes them.
type WireStats struct {
	// BadFrames counts malformed report frames skipped by the reader.
	BadFrames obs.Counter
	// QueryReconnects counts re-established query connections.
	QueryReconnects obs.Counter
	// ReportReconnects counts re-established report streams.
	ReportReconnects obs.Counter
	// Retries counts re-sent query-back requests.
	Retries obs.Counter
	// Gaps counts detected report-stream gaps (disconnects and sequence
	// discontinuities).
	Gaps obs.Counter

	mu            sync.Mutex
	lastDecodeErr string
}

// WireSnapshot is a plain-value copy of WireStats.
type WireSnapshot struct {
	BadFrames        uint64 `json:"badFrames,omitempty"`
	QueryReconnects  uint64 `json:"queryReconnects,omitempty"`
	ReportReconnects uint64 `json:"reportReconnects,omitempty"`
	Retries          uint64 `json:"retries,omitempty"`
	Gaps             uint64 `json:"gaps,omitempty"`
	LastDecodeErr    string `json:"lastDecodeErr,omitempty"`
}

func (ws *WireStats) noteDecodeErr(err error) {
	ws.BadFrames.Inc()
	ws.mu.Lock()
	ws.lastDecodeErr = err.Error()
	ws.mu.Unlock()
}

func (ws *WireStats) snapshot() WireSnapshot {
	ws.mu.Lock()
	last := ws.lastDecodeErr
	ws.mu.Unlock()
	return WireSnapshot{
		BadFrames:        ws.BadFrames.Value(),
		QueryReconnects:  ws.QueryReconnects.Value(),
		ReportReconnects: ws.ReportReconnects.Value(),
		Retries:          ws.Retries.Value(),
		Gaps:             ws.Gaps.Value(),
		LastDecodeErr:    last,
	}
}

// RemoteSource implements SourceAPI over two TCP connections to a Server.
// All traffic is charged to a local Transport with the *actual* payload
// byte counts — the simulated-transport numbers of the in-process mode can
// be validated against these.
//
// A RemoteSource survives connection failures: query-backs retry on a
// fresh connection under DialOptions.Retry, and a dropped report stream
// redials under DialOptions.Redial. Reports broadcast while the stream
// was down are gone (the server does not replay); the loss is recorded
// as a gap that TakeGap hands to the warehouse staleness machinery.
type RemoteSource struct {
	name string
	addr string
	tr   *Transport
	opts DialOptions

	closed  atomic.Bool
	closeCh chan struct{}

	rngMu sync.Mutex
	rng   *rand.Rand

	// qmu serializes request/response exchanges; cmu guards the
	// connection fields (Close must be able to reach them while an
	// exchange is blocked on I/O).
	qmu   sync.Mutex
	cmu   sync.Mutex
	conn  net.Conn
	enc   *json.Encoder
	dec   *json.Decoder
	rconn net.Conn

	rmu           sync.Mutex
	rcond         *sync.Cond
	reports       []*UpdateReport
	lastSeq       uint64
	lastReportSeq uint64
	gapPending    bool
	gapSeq        uint64
	tailSuspect   uint64
	streamClosed  bool

	wire WireStats
}

// Dial connects to a served source at addr with DefaultDialOptions. The
// name must match the served source's name (reports carry it).
func Dial(name, addr string, tr *Transport) (*RemoteSource, error) {
	return DialWithOptions(name, addr, tr, DefaultDialOptions())
}

// DialWithOptions connects with explicit fault-tolerance options. The
// initial dial itself is not retried — callers distinguish "never
// reachable" from "failed mid-stream".
func DialWithOptions(name, addr string, tr *Transport, opts DialOptions) (*RemoteSource, error) {
	if opts.Redial.MaxAttempts == 0 && opts.Redial.BaseDelay == 0 {
		opts.Redial = DefaultRedialPolicy
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rs := &RemoteSource{
		name:    name,
		addr:    addr,
		tr:      tr,
		opts:    opts,
		closeCh: make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
	}
	rs.rcond = sync.NewCond(&rs.rmu)

	qconn, err := rs.dialMode("query")
	if err != nil {
		return nil, err
	}
	rs.conn = qconn
	rs.enc = json.NewEncoder(qconn)
	rs.dec = json.NewDecoder(bufio.NewReader(qconn))

	rbr, rconn, err := rs.dialReports()
	if err != nil {
		qconn.Close()
		return nil, err
	}
	rs.rconn = rconn
	go rs.superviseReports(rbr)
	return rs, nil
}

// dialMode opens one connection and sends the mode line.
func (rs *RemoteSource) dialMode(mode string) (net.Conn, error) {
	var d net.Dialer
	d.Timeout = rs.opts.IOTimeout
	conn, err := d.Dial("tcp", rs.addr)
	if err != nil {
		return nil, err
	}
	if conn.LocalAddr().String() == conn.RemoteAddr().String() {
		// TCP self-connection (loopback dial with no listener landing on
		// an ephemeral source port equal to the destination): the socket
		// echoes our own mode line back as a plausible handshake and
		// squats on the server's port so a restart cannot rebind it.
		// Abortive close — a TIME_WAIT here would hold the port just as
		// hostage, since dialed sockets carry no SO_REUSEADDR.
		abortConn(conn)
		return nil, fmt.Errorf("warehouse: dial %s: self-connection", rs.addr)
	}
	if rs.opts.IOTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(rs.opts.IOTimeout))
	}
	if _, err := io.WriteString(conn, mode+"\n"); err != nil {
		conn.Close()
		return nil, err
	}
	_ = conn.SetWriteDeadline(time.Time{})
	return conn, nil
}

// abortConn closes conn abortively (RST, no TIME_WAIT) when it is a TCP
// connection, gracefully otherwise.
func abortConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = conn.Close()
}

// dialReports opens a report-mode connection and waits for the server's
// registration ack: broadcasts sent after it returns are guaranteed to
// reach this stream.
func (rs *RemoteSource) dialReports() (*bufio.Reader, net.Conn, error) {
	conn, err := rs.dialMode("reports")
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReader(conn)
	if rs.opts.IOTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(rs.opts.IOTimeout))
	}
	if _, err := br.ReadString('\n'); err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("warehouse: report stream handshake: %w", err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	return br, conn, nil
}

// Close disconnects both connections and wakes every waiter.
func (rs *RemoteSource) Close() {
	if rs.closed.Swap(true) {
		return
	}
	close(rs.closeCh)
	rs.cmu.Lock()
	if rs.conn != nil {
		_ = rs.conn.Close()
	}
	if rs.rconn != nil {
		_ = rs.rconn.Close()
	}
	rs.cmu.Unlock()
	rs.rmu.Lock()
	rs.streamClosed = true
	rs.rcond.Broadcast()
	rs.rmu.Unlock()
}

// jitter returns the seeded RNG for backoff jitter (callers must not
// retain it).
func (rs *RemoteSource) jitter() *rand.Rand {
	return rs.rng
}

// sleep waits d, interruptibly. It reports false when the source closed.
func (rs *RemoteSource) sleep(d time.Duration) bool {
	if d <= 0 {
		return !rs.closed.Load()
	}
	select {
	case <-rs.closeCh:
		return false
	case <-time.After(d):
		return true
	}
}

// superviseReports owns the report stream: it reads until the connection
// breaks, records the outage as a gap (broadcasts during it are lost),
// redials under the Redial policy, and repeats. It exits when the source
// closes or redial gives up; either way streamClosed wakes any waiter.
func (rs *RemoteSource) superviseReports(br *bufio.Reader) {
	defer func() {
		rs.rmu.Lock()
		rs.streamClosed = true
		rs.rcond.Broadcast()
		rs.rmu.Unlock()
	}()
	for {
		rs.readReportsFrom(br)
		if rs.closed.Load() {
			return
		}
		// The stream broke: whatever was broadcast from now until the
		// redial lands is lost. Conservatively that is a gap — the
		// warehouse decides what to do with it (staleness + repair).
		rs.rmu.Lock()
		rs.noteGapLocked()
		rs.rmu.Unlock()
		br = rs.redialReports()
		if br == nil {
			return
		}
		rs.wire.ReportReconnects.Inc()
	}
}

// redialReports re-establishes the report stream under the Redial
// policy. It returns nil when the policy is exhausted or the source
// closed.
func (rs *RemoteSource) redialReports() *bufio.Reader {
	p := rs.opts.Redial
	if p.MaxAttempts < 0 {
		return nil
	}
	for attempt := 1; attempt <= p.attempts(); attempt++ {
		rs.rngMu.Lock()
		d := p.backoff(attempt, rs.jitter())
		rs.rngMu.Unlock()
		if !rs.sleep(d) {
			return nil
		}
		br, conn, err := rs.dialReports()
		if err != nil {
			continue
		}
		rs.cmu.Lock()
		if rs.closed.Load() {
			rs.cmu.Unlock()
			conn.Close()
			return nil
		}
		rs.rconn = conn
		rs.cmu.Unlock()
		return br
	}
	return nil
}

// noteGapLocked records a report gap at the current position. Callers
// hold rmu.
func (rs *RemoteSource) noteGapLocked() {
	if !rs.gapPending {
		rs.gapPending = true
		rs.gapSeq = rs.lastReportSeq
		rs.wire.Gaps.Inc()
	}
}

// TakeGap returns and clears the report-gap flag: the last report
// sequence number known to be received before the gap, and whether a gap
// was pending. The warehouse calls it before routing reports and marks
// every view stale when it fires (the lost reports can never be
// replayed; only a resync repairs the views).
func (rs *RemoteSource) TakeGap() (uint64, bool) {
	rs.rmu.Lock()
	defer rs.rmu.Unlock()
	if !rs.gapPending {
		return 0, false
	}
	rs.gapPending = false
	return rs.gapSeq, true
}

// CheckTail flags a report gap when the stream has silently fallen
// behind the sequence a query response already proved the source
// reached. The in-stream discontinuity check cannot see a lost
// *trailing* report — no later report ever arrives to reveal the jump —
// but every query answer (including the federation's quiet-stream
// liveness probe) carries the server's true sequence, so a persistent
// lastSeq > lastReportSeq while the stream is idle means the tail was
// dropped, not delayed. One check of grace is given before flagging:
// reports travel on a separate, possibly slower connection, so the
// first observation may just be a frame still in flight.
func (rs *RemoteSource) CheckTail() {
	rs.rmu.Lock()
	defer rs.rmu.Unlock()
	if rs.lastReportSeq == 0 || rs.lastSeq <= rs.lastReportSeq {
		rs.tailSuspect = 0
		return
	}
	if rs.tailSuspect == rs.lastSeq {
		rs.noteGapLocked()
		// Jump the report cursor forward so the same lost tail is not
		// re-flagged after the resync repairs the views.
		rs.lastReportSeq = rs.lastSeq
		rs.tailSuspect = 0
		return
	}
	rs.tailSuspect = rs.lastSeq
}

// StreamHealthy reports whether the report stream is still being
// supervised (it is false once redial gave up or the source closed).
func (rs *RemoteSource) StreamHealthy() bool {
	rs.rmu.Lock()
	defer rs.rmu.Unlock()
	return !rs.streamClosed
}

// WireStats returns a snapshot of the client-side failure counters.
func (rs *RemoteSource) WireStats() WireSnapshot { return rs.wire.snapshot() }

// RegisterObs exposes the client-side wire counters on reg, labeled by
// source.
func (rs *RemoteSource) RegisterObs(reg *obs.Registry) {
	reg.Help("gsv_remote_bad_frames_total", "malformed report frames skipped by the reader")
	reg.Help("gsv_remote_reconnects_total", "re-established connections, by connection kind")
	reg.Help("gsv_remote_retries_total", "re-sent query-back requests")
	reg.Help("gsv_remote_gaps_total", "detected report-stream gaps")
	ls := obs.L("source", rs.name)
	reg.RegisterCounter("gsv_remote_bad_frames_total", &rs.wire.BadFrames, ls)
	reg.RegisterCounter("gsv_remote_reconnects_total", &rs.wire.QueryReconnects, ls, obs.L("conn", "query"))
	reg.RegisterCounter("gsv_remote_reconnects_total", &rs.wire.ReportReconnects, ls, obs.L("conn", "reports"))
	reg.RegisterCounter("gsv_remote_retries_total", &rs.wire.Retries, ls)
	reg.RegisterCounter("gsv_remote_gaps_total", &rs.wire.Gaps, ls)
}

// readReportsFrom consumes the report stream until it breaks. Malformed
// frames are counted (gsv_remote_bad_frames_total) and the last decode
// error retained, instead of being silently skipped.
func (rs *RemoteSource) readReportsFrom(r io.Reader) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), maxFrame)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rep UpdateReport
		if err := json.Unmarshal(line, &rep); err != nil {
			rs.wire.noteDecodeErr(err)
			continue
		}
		rs.rmu.Lock()
		// A sequence discontinuity means broadcasts were lost even
		// though the connection stayed up (e.g. the server dropped
		// frames for a slow stream).
		if rs.lastReportSeq > 0 && rep.Update.Seq > rs.lastReportSeq+1 {
			rs.noteGapLocked()
		}
		rs.reports = append(rs.reports, &rep)
		if rep.Update.Seq > rs.lastReportSeq {
			rs.lastReportSeq = rep.Update.Seq
		}
		if rep.Update.Seq > rs.lastSeq {
			rs.lastSeq = rep.Update.Seq
		}
		rs.tr.OneWay(len(line)+1, len(rep.Objects))
		rs.rcond.Broadcast()
		rs.rmu.Unlock()
	}
}

// ID implements SourceAPI.
func (rs *RemoteSource) ID() string { return rs.name }

// TransportRef implements SourceAPI.
func (rs *RemoteSource) TransportRef() *Transport { return rs.tr }

// LastKnownSeq implements SourceAPI.
func (rs *RemoteSource) LastKnownSeq() uint64 {
	rs.rmu.Lock()
	defer rs.rmu.Unlock()
	return rs.lastSeq
}

// DrainReports implements SourceAPI: reports received so far, in order.
func (rs *RemoteSource) DrainReports() []*UpdateReport {
	rs.rmu.Lock()
	defer rs.rmu.Unlock()
	out := rs.reports
	rs.reports = nil
	return out
}

// WaitReports blocks until at least n reports are buffered or the stream
// closes for good, then drains. Tests and pull-style integrators use it
// to synchronize with the asynchronous stream.
func (rs *RemoteSource) WaitReports(n int) []*UpdateReport {
	out, _ := rs.WaitReportsTimeout(n, 0)
	return out
}

// WaitReportsTimeout is WaitReports with a deadline: it returns whatever
// is buffered once n reports arrived, the stream closed, or timeout
// elapsed (0 means no timeout), and reports whether n were seen.
func (rs *RemoteSource) WaitReportsTimeout(n int, timeout time.Duration) ([]*UpdateReport, bool) {
	rs.rmu.Lock()
	defer rs.rmu.Unlock()
	timedOut := false
	if timeout > 0 {
		t := time.AfterFunc(timeout, func() {
			rs.rmu.Lock()
			timedOut = true
			rs.rcond.Broadcast()
			rs.rmu.Unlock()
		})
		defer t.Stop()
	}
	for len(rs.reports) < n && !rs.streamClosed && !timedOut {
		rs.rcond.Wait()
	}
	out := rs.reports
	rs.reports = nil
	return out, len(out) >= n
}

// roundTrip sends one request and decodes the response, charging actual
// bytes to the transport. Transient failures (timeouts, drops, resets)
// close the connection — a half-finished exchange must never leave the
// encoder/decoder desynced — and retry on a fresh one under the Retry
// policy.
func (rs *RemoteSource) roundTrip(req netRequest) (netResponse, error) {
	rs.qmu.Lock()
	defer rs.qmu.Unlock()
	// Deadline propagation: stamp this client's per-exchange budget into
	// the frame so the server can shed the request once nobody is left
	// waiting for the answer. Old servers ignore the field.
	if rs.opts.IOTimeout > 0 && req.BudgetMS == 0 {
		req.BudgetMS = rs.opts.IOTimeout.Milliseconds()
	}
	reqBytes, err := json.Marshal(req)
	if err != nil {
		return netResponse{}, err
	}
	p := rs.opts.Retry
	var lastErr error
	for attempt := 1; attempt <= p.attempts(); attempt++ {
		if attempt > 1 {
			rs.wire.Retries.Inc()
			rs.rngMu.Lock()
			d := p.backoff(attempt-1, rs.jitter())
			rs.rngMu.Unlock()
			if !rs.sleep(d) {
				break
			}
		}
		if rs.closed.Load() {
			break
		}
		resp, err := rs.exchange(req)
		if err == nil {
			respBytes, _ := json.Marshal(resp)
			rs.tr.RoundTrip(len(reqBytes)+1, len(respBytes)+1, len(resp.Objects))
			rs.rmu.Lock()
			if resp.Seq > rs.lastSeq {
				rs.lastSeq = resp.Seq
			}
			rs.rmu.Unlock()
			return resp, nil
		}
		lastErr = err
	}
	if rs.closed.Load() && lastErr == nil {
		lastErr = errClosed
	}
	if p.attempts() > 1 {
		return netResponse{}, fmt.Errorf("warehouse: %s failed after %d attempts: %w", req.Op, p.attempts(), lastErr)
	}
	return netResponse{}, lastErr
}

// exchange performs one request/response pair on the current query
// connection (redialing it if absent), bounded by IOTimeout per frame.
// Any failure closes the connection so the next attempt starts clean.
func (rs *RemoteSource) exchange(req netRequest) (netResponse, error) {
	rs.cmu.Lock()
	conn, enc, dec := rs.conn, rs.enc, rs.dec
	rs.cmu.Unlock()
	if conn == nil {
		var err error
		conn, enc, dec, err = rs.redialQuery()
		if err != nil {
			return netResponse{}, fmt.Errorf("warehouse: redialing for %s: %w", req.Op, err)
		}
	}
	if t := rs.opts.IOTimeout; t > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(t))
	}
	if err := enc.Encode(req); err != nil {
		rs.dropQueryConn(conn)
		return netResponse{}, fmt.Errorf("warehouse: sending %s: %w", req.Op, err)
	}
	if t := rs.opts.IOTimeout; t > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(t))
	}
	var resp netResponse
	if err := dec.Decode(&resp); err != nil {
		rs.dropQueryConn(conn)
		return netResponse{}, fmt.Errorf("warehouse: receiving %s: %w", req.Op, err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	_ = conn.SetWriteDeadline(time.Time{})
	return resp, nil
}

// redialQuery re-establishes the query connection and installs a fresh
// encoder/decoder pair.
func (rs *RemoteSource) redialQuery() (net.Conn, *json.Encoder, *json.Decoder, error) {
	conn, err := rs.dialMode("query")
	if err != nil {
		return nil, nil, nil, err
	}
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))
	rs.cmu.Lock()
	if rs.closed.Load() {
		rs.cmu.Unlock()
		conn.Close()
		return nil, nil, nil, errClosed
	}
	rs.conn, rs.enc, rs.dec = conn, enc, dec
	rs.cmu.Unlock()
	rs.wire.QueryReconnects.Inc()
	return conn, enc, dec, nil
}

// dropQueryConn discards a failed query connection so the next exchange
// redials instead of reusing a desynced stream.
func (rs *RemoteSource) dropQueryConn(c net.Conn) {
	rs.cmu.Lock()
	if rs.conn == c {
		rs.conn, rs.enc, rs.dec = nil, nil, nil
	}
	rs.cmu.Unlock()
	_ = c.Close()
}

// FetchObject implements SourceAPI.
func (rs *RemoteSource) FetchObject(oid oem.OID) (*oem.Object, error) {
	resp, err := rs.roundTrip(netRequest{Op: "object", OID: oid})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, remoteError(resp.Err)
	}
	if len(resp.Objects) == 0 {
		return nil, fmt.Errorf("warehouse: remote returned no object for %s", oid)
	}
	return resp.Objects[0], nil
}

// FetchPath implements SourceAPI.
func (rs *RemoteSource) FetchPath(n oem.OID) (*PathInfo, bool, error) {
	resp, err := rs.roundTrip(netRequest{Op: "path", OID: n})
	if err != nil {
		return nil, false, err
	}
	if resp.Err != "" {
		return nil, false, remoteError(resp.Err)
	}
	return resp.Info, resp.Found, nil
}

// FetchAncestor implements SourceAPI.
func (rs *RemoteSource) FetchAncestor(n oem.OID, p pathexpr.Path) (oem.OID, bool, error) {
	resp, err := rs.roundTrip(netRequest{Op: "ancestor", OID: n, Path: p})
	if err != nil {
		return oem.NoOID, false, err
	}
	if resp.Err != "" {
		return oem.NoOID, false, remoteError(resp.Err)
	}
	return resp.OID, resp.Found, nil
}

// FetchEval implements SourceAPI.
func (rs *RemoteSource) FetchEval(n oem.OID, p pathexpr.Path) ([]*oem.Object, error) {
	resp, err := rs.roundTrip(netRequest{Op: "eval", OID: n, Path: p})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, remoteError(resp.Err)
	}
	return resp.Objects, nil
}

// FetchSubtree implements SourceAPI.
func (rs *RemoteSource) FetchSubtree(n oem.OID, depth int) ([]*oem.Object, error) {
	resp, err := rs.roundTrip(netRequest{Op: "subtree", OID: n, Depth: depth})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, remoteError(resp.Err)
	}
	return resp.Objects, nil
}

// FetchQuery implements SourceAPI.
func (rs *RemoteSource) FetchQuery(q *query.Query) ([]*oem.Object, error) {
	resp, err := rs.roundTrip(netRequest{Op: "query", Query: q.String()})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, remoteError(resp.Err)
	}
	return resp.Objects, nil
}

// FetchQueryAt implements SeqQuerier over the wire: the "query" op's
// sequence-pinned variant ("queryat", carrying the At field). A server
// that predates the op answers unknown-op; the client then falls back to
// a plain current-state query, which keeps the caller's replay bound
// correct, merely conservative (see fetchQueryAt).
func (rs *RemoteSource) FetchQueryAt(q *query.Query, at uint64) ([]*oem.Object, error) {
	if at == 0 {
		return rs.FetchQuery(q)
	}
	resp, err := rs.roundTrip(netRequest{Op: "queryat", Query: q.String(), At: at})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		if strings.Contains(resp.Err, "unknown op") {
			return rs.FetchQuery(q)
		}
		return nil, remoteError(resp.Err)
	}
	return resp.Objects, nil
}

// FetchMembers asks the connected server for a view's full current
// membership (the "members" op). A server that predates the op answers
// with its unknown-op error, surfaced as ErrUnsupportedRequest.
func (rs *RemoteSource) FetchMembers(view string) ([]oem.OID, error) {
	resp, err := rs.roundTrip(netRequest{Op: "members", View: view})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		if strings.Contains(resp.Err, "unknown op") {
			return nil, fmt.Errorf("%w: %s", ErrUnsupportedRequest, resp.Err)
		}
		return nil, remoteError(resp.Err)
	}
	return resp.Members, nil
}

var _ SourceAPI = (*RemoteSource)(nil)
