package warehouse

import (
	"errors"
	"strings"

	"gsv/internal/core"
)

// Sentinel errors, matched with errors.Is. The view-identity sentinels
// are shared with the core registry so a caller can test one symbol
// regardless of which layer produced the failure.
var (
	// ErrViewNotFound reports an operation on a view name the warehouse
	// does not host.
	ErrViewNotFound = core.ErrViewNotFound

	// ErrViewExists reports a DefineView for a name already taken.
	ErrViewExists = core.ErrViewExists

	// ErrNotSimple reports a view definition outside the simple class;
	// the warehouse protocol of Section 5 maintains simple views only.
	ErrNotSimple = core.ErrNotSimple

	// ErrStaleView reports a strict read against a view that is
	// quarantined (Stale or Repairing) and whose membership may lag the
	// source; see Warehouse.FreshMembers.
	ErrStaleView = errors.New("warehouse: view is stale")

	// ErrPartialResult reports a federated read served from the healthy
	// partitions only; the concrete error is a *PartialResultError naming
	// the missing partitions. Detect with errors.Is, unpack with
	// errors.As.
	ErrPartialResult = errors.New("warehouse: partial result")
)

// PartialResultError is the graceful-degradation read error: the
// federation answered from the partitions it could reach, and Missing
// names the sources whose partitions are absent from the answer. It
// matches ErrPartialResult under errors.Is.
type PartialResultError struct {
	// View is the federated view or query the read targeted.
	View string
	// Missing names the unavailable sources, sorted.
	Missing []string
	// Cause is the first per-source failure, if retained.
	Cause error
}

// Error implements error.
func (e *PartialResultError) Error() string {
	msg := "warehouse: partial result for " + e.View + " (missing: " + strings.Join(e.Missing, ", ") + ")"
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Is matches ErrPartialResult.
func (e *PartialResultError) Is(target error) bool { return target == ErrPartialResult }

// Unwrap exposes the first per-source failure.
func (e *PartialResultError) Unwrap() error { return e.Cause }
