package warehouse

import (
	"errors"

	"gsv/internal/core"
)

// Sentinel errors, matched with errors.Is. The view-identity sentinels
// are shared with the core registry so a caller can test one symbol
// regardless of which layer produced the failure.
var (
	// ErrViewNotFound reports an operation on a view name the warehouse
	// does not host.
	ErrViewNotFound = core.ErrViewNotFound

	// ErrViewExists reports a DefineView for a name already taken.
	ErrViewExists = core.ErrViewExists

	// ErrNotSimple reports a view definition outside the simple class;
	// the warehouse protocol of Section 5 maintains simple views only.
	ErrNotSimple = core.ErrNotSimple

	// ErrStaleView reports a strict read against a view that is
	// quarantined (Stale or Repairing) and whose membership may lag the
	// source; see Warehouse.FreshMembers.
	ErrStaleView = errors.New("warehouse: view is stale")
)
