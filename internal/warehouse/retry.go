package warehouse

import (
	"math/rand"
	"time"
)

// RetryPolicy is a capped exponential backoff with jitter. It governs
// both the retry of idempotent query-backs (every SourceAPI fetch is a
// read, so re-sending a request whose response was lost is safe) and the
// redial of dropped connections.
//
// The zero policy means "one attempt, no waiting": existing callers that
// never configured retries keep their fail-fast behavior.
type RetryPolicy struct {
	// MaxAttempts bounds the total number of tries; values below one are
	// treated as one (no retries).
	MaxAttempts int
	// BaseDelay is the wait before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff.
	MaxDelay time.Duration
	// Multiplier grows the delay each retry; values below 1 mean 2.
	Multiplier float64
	// Jitter spreads each delay uniformly in [d*(1-j), d*(1+j)] so
	// reconnect storms from many warehouses decorrelate. 0 disables.
	Jitter float64
}

// DefaultRetryPolicy retries query-backs a few times over ~100ms — long
// enough to ride out a dropped connection plus redial, short enough that
// a genuinely dead source fails maintenance promptly (and the staleness
// machinery takes over).
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 4,
	BaseDelay:   5 * time.Millisecond,
	MaxDelay:    250 * time.Millisecond,
	Multiplier:  2,
	Jitter:      0.2,
}

// DefaultRedialPolicy keeps re-dialing a lost report stream for roughly
// a minute before declaring it dead.
var DefaultRedialPolicy = RetryPolicy{
	MaxAttempts: 60,
	BaseDelay:   10 * time.Millisecond,
	MaxDelay:    2 * time.Second,
	Multiplier:  2,
	Jitter:      0.2,
}

// attempts returns the effective attempt bound.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the wait before retry number retry (1-based). rng may
// be nil, in which case no jitter is applied.
func (p RetryPolicy) backoff(retry int, rng *rand.Rand) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	if d < 0 {
		return 0
	}
	return time.Duration(d)
}
