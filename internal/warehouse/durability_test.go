package warehouse

import (
	"fmt"
	"math/rand"
	"testing"

	"gsv/internal/faults"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/wal"
	"gsv/internal/workload"
)

// durableFixture builds a PERSON source and a durable warehouse over dir
// with the YP view. The source outlives warehouse incarnations (it is
// the remote system); pass the same src to reopenWarehouse to restart.
func durableFixture(t testing.TB, dir string, cfg ViewConfig, o DurabilityOptions) (*Source, *Warehouse, *WView) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	tr := NewTransport(0)
	src := NewSource("persons", s, "ROOT", Level2, tr)
	src.DrainReports()
	w := New(src)
	if recovered, err := w.EnableDurability(dir, o); err != nil {
		t.Fatal(err)
	} else if recovered {
		t.Fatal("fresh directory reported recovered")
	}
	v, err := w.DefineView("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return src, w, v
}

// reopenWarehouse restarts the warehouse half: a fresh Warehouse over the
// surviving source, recovered from dir.
func reopenWarehouse(t testing.TB, src *Source, dir string, o DurabilityOptions) *Warehouse {
	t.Helper()
	w := New(src)
	recovered, err := w.EnableDurability(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	if !recovered {
		t.Fatal("expected recovery from existing state")
	}
	return w
}

// mustReports returns an unwrapper for a Source mutator's return. The
// mutators drain the pending queue themselves, so tests must hold on to
// what they return — a later DrainReports would find nothing.
func mustReports(t testing.TB) func([]*UpdateReport, error) []*UpdateReport {
	return func(rs []*UpdateReport, err error) []*UpdateReport {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
}

// oracleMembers recomputes a view's membership from scratch at the
// source — the from-scratch answer recovery must match.
func oracleMembers(t testing.TB, src *Source, q *query.Query) []oem.OID {
	t.Helper()
	objs, err := src.FetchQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]oem.OID, 0, len(objs))
	for _, o := range objs {
		out = append(out, o.OID)
	}
	return oem.SortOIDs(out)
}

func TestWarehouseDurableRestartWithoutRefetch(t *testing.T) {
	must := mustReports(t)
	dir := t.TempDir()
	cfg := ViewConfig{Cache: CacheFull, Screening: true}
	src, w1, _ := durableFixture(t, dir, cfg, DurabilityOptions{})

	// Grow the view: P2 gains an age that passes the condition.
	rs := must(src.Put(oem.NewAtom("A2", "age", oem.Int(40))))
	rs = append(rs, must(src.Insert("P2", "A2"))...)
	if err := w1.ProcessAll(rs); err != nil {
		t.Fatal(err)
	}
	want, err := w1.FreshMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	cacheSize := 0
	if v1, _ := w1.View("YP"); v1.Cache != nil {
		cacheSize = v1.Cache.Size()
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery must not touch the source: snapshot the transport before.
	before := src.Transport.Snapshot()
	w2 := reopenWarehouse(t, src, dir, DurabilityOptions{})
	if used := src.Transport.Sub(before); used.QueryBacks != 0 {
		t.Fatalf("recovery issued %d source queries; want 0", used.QueryBacks)
	}
	v2, ok := w2.View("YP")
	if !ok {
		t.Fatal("view not recovered")
	}
	if v2.State() != ViewFresh {
		t.Fatalf("recovered view state = %s, want fresh", v2.State())
	}
	got, err := w2.FreshMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, want) {
		t.Fatalf("recovered members = %v, want %v", got, want)
	}
	if v2.Cache == nil || v2.Cache.Size() != cacheSize {
		t.Fatalf("aux cache not recovered (size %d, want %d)", v2.Cache.Size(), cacheSize)
	}
	if !v2.Config.Screening {
		t.Fatal("screening config not recovered")
	}

	// Incremental maintenance resumes on the recovered state.
	if err := w2.ProcessAll(must(src.Modify("A2", oem.Int(60)))); err != nil {
		t.Fatal(err)
	}
	got, err = w2.FreshMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, oracleMembers(t, src, v2.MV.Query)) {
		t.Fatalf("post-recovery maintenance diverged: %v", got)
	}
	w2.Close()
}

func TestWarehouseDurableTailReplayAfterCrash(t *testing.T) {
	must := mustReports(t)
	dir := t.TempDir()
	// Huge checkpoint threshold: everything after DefineView's immediate
	// checkpoint lives only in the WAL tail.
	opts := DurabilityOptions{CheckpointEvery: 1 << 20}
	src, w1, v1 := durableFixture(t, dir, ViewConfig{Cache: CacheFull}, opts)

	rs := must(src.Put(oem.NewAtom("A2", "age", oem.Int(40))))
	rs = append(rs, must(src.Insert("P2", "A2"))...)
	rs = append(rs, must(src.Modify("A1", oem.Int(50)))...)
	if err := w1.ProcessAll(rs); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no final checkpoint. w1 is simply abandoned.
	_ = v1

	w2 := reopenWarehouse(t, src, dir, opts)
	got, err := w2.FreshMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := w2.View("YP")
	if want := oracleMembers(t, src, v2.MV.Query); !oem.SameMembers(got, want) {
		t.Fatalf("replayed members = %v, want %v", got, want)
	}
	w2.Close()
}

func TestWarehouseDurableRestartGapQuarantine(t *testing.T) {
	dir := t.TempDir()
	src, w1, _ := durableFixture(t, dir, ViewConfig{}, DurabilityOptions{})
	if err := w1.ProcessAll(src.DrainReports()); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	// The source moves on while the warehouse is down; its reports are
	// emitted into the void (the returned reports are dropped — nobody
	// was listening).
	if _, err := src.Put(oem.NewAtom("A2", "age", oem.Int(30))); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Insert("P2", "A2"); err != nil {
		t.Fatal(err)
	}

	w2 := reopenWarehouse(t, src, dir, DurabilityOptions{})
	if stale := w2.StaleViews(); len(stale) != 1 || stale[0] != "YP" {
		t.Fatalf("StaleViews = %v, want [YP]", stale)
	}
	if _, err := w2.FreshMembers("YP"); err == nil {
		t.Fatal("FreshMembers served a gapped view")
	}
	if _, err := w2.RepairAll(); err != nil {
		t.Fatal(err)
	}
	got, err := w2.FreshMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := w2.View("YP")
	if want := oracleMembers(t, src, v2.MV.Query); !oem.SameMembers(got, want) {
		t.Fatalf("repaired members = %v, want %v", got, want)
	}
	w2.Close()
}

func TestWarehouseDurableFeedCursorSurvivesRestart(t *testing.T) {
	must := mustReports(t)
	dir := t.TempDir()
	src, w1, _ := durableFixture(t, dir, ViewConfig{}, DurabilityOptions{})
	rs := must(src.Put(oem.NewAtom("A2", "age", oem.Int(40))))
	rs = append(rs, must(src.Insert("P2", "A2"))...)
	if err := w1.ProcessAll(rs); err != nil {
		t.Fatal(err)
	}
	c1, ok := w1.Feed.Cursor("YP")
	if !ok || c1 == 0 {
		t.Fatalf("no feed cursor after publishing (cursor %d)", c1)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := reopenWarehouse(t, src, dir, DurabilityOptions{})
	c2, ok := w2.Feed.Cursor("YP")
	if !ok || c2 < c1 {
		t.Fatalf("restored cursor = %d, want >= %d", c2, c1)
	}
	// The next published event continues the numbering instead of
	// reusing cursors a persisted subscriber may have acknowledged.
	if err := w2.ProcessAll(must(src.Modify("A2", oem.Int(60)))); err != nil {
		t.Fatal(err)
	}
	c3, _ := w2.Feed.Cursor("YP")
	if c3 <= c2 {
		t.Fatalf("cursor after new event = %d, want > %d", c3, c2)
	}
	w2.Close()
}

// TestWarehouseDurableCrashSoak is the warehouse half of the kill⟳restart
// soak: random crash points at the WAL and checkpoint boundaries fire
// while reports are processed, the process "dies" (panic, recovered), a
// fresh warehouse recovers from the directory, repairs any quarantined
// views, and the membership must equal a from-scratch recompute.
func TestWarehouseDurableCrashSoak(t *testing.T) {
	must := mustReports(t)
	points := []string{
		"wal.append", "wal.write", "wal.fsync",
		"ckpt.write", "ckpt.fsync", "ckpt.rename", "ckpt.gc",
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	cp := faults.NewCrashPoints()
	opts := DurabilityOptions{Crash: cp, CheckpointEvery: 4}

	src, w, _ := durableFixture(t, dir, ViewConfig{Cache: CacheFull}, opts)
	q := query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45")

	age := 30
	nextOID := 0
	mutate := func() []*UpdateReport {
		// Alternate membership-affecting mutations: new professors with
		// ages straddling the condition, and age flips on A1. The
		// mutators drain the pending queue, so gather what they return.
		var rs []*UpdateReport
		switch rng.Intn(3) {
		case 0:
			nextOID++
			p := oem.OID(fmt.Sprintf("PX%d", nextOID))
			a := oem.OID(fmt.Sprintf("AX%d", nextOID))
			rs = append(rs, must(src.Put(oem.NewSet(p, "professor", a)))...)
			rs = append(rs, must(src.Put(oem.NewAtom(a, "age", oem.Int(int64(20+rng.Intn(50))))))...)
			rs = append(rs, must(src.Insert("ROOT", p))...)
		case 1:
			age = 80 - age
			rs = append(rs, must(src.Modify("A1", oem.Int(int64(age))))...)
		case 2:
			nextOID++
			a := oem.OID(fmt.Sprintf("AY%d", nextOID))
			rs = append(rs, must(src.Put(oem.NewAtom(a, "age", oem.Int(int64(20+rng.Intn(50))))))...)
			rs = append(rs, must(src.Insert("P2", a))...)
		}
		return rs
	}

	const rounds = 10
	for round := 0; round < rounds; round++ {
		point := points[rng.Intn(len(points))]
		cp.Arm(point, 1+rng.Intn(4))

		// Run until the armed crash fires (or a bounded number of steps
		// pass without it).
		crashed := func() (c bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := faults.IsCrash(r); !ok {
						panic(r)
					}
					c = true
				}
			}()
			for i := 0; i < 50; i++ {
				if err := w.ProcessBatch(mutate()); err != nil {
					// A WAL append error without a crash would be a test
					// bug; surface it.
					t.Fatalf("round %d (%s): %v", round, point, err)
				}
			}
			return false
		}()
		cp.Disarm()
		if crashed {
			// The dead incarnation is abandoned; a new one recovers.
			w = reopenWarehouse(t, src, dir, opts)
			if _, err := w.RepairAll(); err != nil {
				t.Fatalf("round %d (%s): repair: %v", round, point, err)
			}
		}
		got, err := w.FreshMembers("YP")
		if err != nil {
			t.Fatalf("round %d (%s): %v", round, point, err)
		}
		if want := oracleMembers(t, src, q); !oem.SameMembers(got, want) {
			t.Fatalf("round %d (%s): members = %v, want %v (crashed=%v)", round, point, got, want, crashed)
		}
	}
	// Final clean shutdown and one more recovery for good measure.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w = reopenWarehouse(t, src, dir, opts)
	got, err := w.FreshMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleMembers(t, src, q); !oem.SameMembers(got, want) {
		t.Fatalf("final recovery members = %v, want %v", got, want)
	}
	w.Close()
}

func TestWarehouseDurableCheckpointMetrics(t *testing.T) {
	must := mustReports(t)
	dir := t.TempDir()
	m := wal.NewMetrics()
	src, w, _ := durableFixture(t, dir, ViewConfig{}, DurabilityOptions{Metrics: m, CheckpointEvery: 1})
	rs := must(src.Put(oem.NewAtom("A2", "age", oem.Int(40))))
	rs = append(rs, must(src.Insert("P2", "A2"))...)
	if err := w.ProcessAll(rs); err != nil {
		t.Fatal(err)
	}
	if m.Appends.Value() == 0 {
		t.Fatal("no WAL appends recorded")
	}
	if m.Checkpoints.Value() == 0 {
		t.Fatal("no checkpoints recorded")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWarehouseEnableDurabilityAfterDefineRejected(t *testing.T) {
	s := store.NewDefault()
	workload.PersonDB(s)
	src := NewSource("persons", s, "ROOT", Level2, NewTransport(0))
	src.DrainReports()
	w := New(src)
	if _, err := w.DefineView("YP", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"), ViewConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.EnableDurability(t.TempDir(), DurabilityOptions{}); err == nil {
		t.Fatal("EnableDurability after DefineView succeeded")
	}
}
