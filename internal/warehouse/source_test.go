package warehouse

import (
	"testing"

	"gsv/internal/core"
	"gsv/internal/dataguide"
	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

func buildGuide(t testing.TB, s *store.Store) *dataguide.Guide {
	t.Helper()
	g, err := dataguide.Build(s, "ROOT")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newPersonSource(t testing.TB, level ReportLevel) (*Source, *Transport) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	tr := NewTransport(0)
	src := NewSource("persons", s, "ROOT", level, tr)
	src.DrainReports()
	return src, tr
}

func TestSourceFetchObject(t *testing.T) {
	src, tr := newPersonSource(t, Level2)
	o, err := src.FetchObject("P1")
	if err != nil {
		t.Fatal(err)
	}
	if o.Label != "professor" {
		t.Fatalf("fetched %v", o)
	}
	if tr.QueryBacks != 1 || tr.ObjectsShipped != 1 || tr.Bytes == 0 {
		t.Fatalf("transport = %+v", tr)
	}
	if _, err := src.FetchObject("missing"); err == nil {
		t.Fatal("missing fetch succeeded")
	}
	// Failed fetches still cost a round trip.
	if tr.QueryBacks != 2 {
		t.Fatalf("QueryBacks = %d", tr.QueryBacks)
	}
}

func TestSourceFetchPathWithOIDs(t *testing.T) {
	src, _ := newPersonSource(t, Level2)
	info, ok, err := src.FetchPath("A3")
	if err != nil || !ok {
		t.Fatalf("FetchPath: %v %v", ok, err)
	}
	// A3 is reachable as student.age (direct) or professor.student.age;
	// the labels and OIDs must be consistent with each other.
	if len(info.OIDs) != len(info.Labels) {
		t.Fatalf("ragged path info: %v / %v", info.OIDs, info.Labels)
	}
	if info.OIDs[len(info.OIDs)-1] != "A3" {
		t.Fatalf("path does not end at A3: %v", info.OIDs)
	}
	if info.Labels[len(info.Labels)-1] != "age" {
		t.Fatalf("last label = %v", info.Labels)
	}
	// Unreachable object.
	if _, ok, _ := src.FetchPath("PERSON"); ok {
		t.Fatal("path to grouping object reported")
	}
	// Root itself: empty path.
	info, ok, _ = src.FetchPath("ROOT")
	if !ok || len(info.OIDs) != 0 {
		t.Fatalf("root path = %v %v", info, ok)
	}
}

func TestSourceFetchAncestorAndEval(t *testing.T) {
	src, _ := newPersonSource(t, Level2)
	y, ok, err := src.FetchAncestor("A1", pathexpr.MustParsePath("age"))
	if err != nil || !ok || y != "P1" {
		t.Fatalf("FetchAncestor = %v %v %v", y, ok, err)
	}
	objs, err := src.FetchEval("P1", pathexpr.MustParsePath("age"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].OID != "A1" {
		t.Fatalf("FetchEval = %v", objs)
	}
	if src.Stats.Queries.Value() < 2 || src.Stats.ObjectsTouched.Value() == 0 {
		t.Fatalf("wrapper stats: queries=%d objects=%d",
			src.Stats.Queries.Value(), src.Stats.ObjectsTouched.Value())
	}
}

func TestSourceFetchSubtree(t *testing.T) {
	src, _ := newPersonSource(t, Level2)
	objs, err := src.FetchSubtree("P1", 1)
	if err != nil {
		t.Fatal(err)
	}
	got := map[oem.OID]bool{}
	for _, o := range objs {
		got[o.OID] = true
	}
	for _, want := range []oem.OID{"P1", "N1", "A1", "S1", "P3"} {
		if !got[want] {
			t.Errorf("subtree missing %s", want)
		}
	}
	// Depth 1 must not include P3's children.
	if got["N3"] {
		t.Error("depth-1 subtree included grandchild")
	}
	// Depth 2 does.
	objs, _ = src.FetchSubtree("P1", 2)
	got = map[oem.OID]bool{}
	for _, o := range objs {
		got[o.OID] = true
	}
	if !got["N3"] {
		t.Error("depth-2 subtree missing grandchild")
	}
}

func TestSourceFetchQuery(t *testing.T) {
	src, _ := newPersonSource(t, Level2)
	objs, err := src.FetchQuery(query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].OID != "P1" {
		t.Fatalf("FetchQuery = %v", objs)
	}
	if _, err := src.FetchQuery(query.MustParse("SELECT MISSING.x X")); err == nil {
		t.Fatal("bad query succeeded")
	}
}

func TestSourcePutReportsCreation(t *testing.T) {
	src, _ := newPersonSource(t, Level2)
	rs, err := src.Put(oem.NewAtom("A2", "age", oem.Int(40)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Update.Kind != store.UpdateCreate {
		t.Fatalf("reports = %+v", rs)
	}
	if rs[0].Objects["A2"] == nil {
		t.Fatal("level 2 creation report missing object")
	}
}

func TestSourceMutationErrorsPropagate(t *testing.T) {
	src, _ := newPersonSource(t, Level2)
	if _, err := src.Insert("missing", "P1"); err == nil {
		t.Fatal("bad insert succeeded")
	}
	if _, err := src.Delete("ROOT", "notachild"); err == nil {
		t.Fatal("bad delete succeeded")
	}
	if _, err := src.Modify("ROOT", oem.Int(1)); err == nil {
		t.Fatal("modify of set succeeded")
	}
	if _, err := src.Put(oem.NewAtom("P1", "dup", oem.Int(1))); err == nil {
		t.Fatal("duplicate put succeeded")
	}
}

func TestAuxCacheModes(t *testing.T) {
	src, _ := newPersonSource(t, Level2)
	def, ok := core.Simplify(query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"))
	if !ok {
		t.Fatal("not simple")
	}
	full, err := NewAuxCache(def, src, CacheFull)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := NewAuxCache(def, src, CachePartial)
	if err != nil {
		t.Fatal(err)
	}
	// The mirror holds ROOT, the professors and their age atoms — not
	// names, salaries or the student subtree.
	for _, want := range []oem.OID{"ROOT", "P1", "P2", "A1"} {
		if !full.Has(want) {
			t.Errorf("full cache missing %s", want)
		}
	}
	for _, not := range []oem.OID{"N1", "S1", "P3", "P4"} {
		if full.Has(not) {
			t.Errorf("full cache mirrors off-path object %s", not)
		}
	}
	if !full.HasValues() || partial.HasValues() {
		t.Fatal("HasValues wrong")
	}
	// Partial caches strip atomic values.
	a1, err := partial.Access().Fetch("A1")
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Atom.IsZero() {
		t.Fatalf("partial cache kept a value: %v", a1.Atom)
	}
	// Full caches keep them.
	a1, _ = full.Access().Fetch("A1")
	if !a1.Atom.Equal(oem.Int(45)) {
		t.Fatalf("full cache lost the value: %v", a1.Atom)
	}
	if full.Bytes() <= partial.Bytes() {
		t.Fatalf("full (%d B) not larger than partial (%d B)", full.Bytes(), partial.Bytes())
	}
	if full.Size() != partial.Size() {
		t.Fatalf("sizes differ: %d vs %d", full.Size(), partial.Size())
	}
}

func TestAuxCacheMaintainsMirror(t *testing.T) {
	src, _ := newPersonSource(t, Level2)
	def, _ := core.Simplify(query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"))
	c, err := NewAuxCache(def, src, CacheFull)
	if err != nil {
		t.Fatal(err)
	}
	// Insert an age under P2: one report, no extra queries (the report
	// carries the object and the subtree below an atom is trivial).
	rs, err := src.Put(oem.NewAtom("A2", "age", oem.Int(40)))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if _, err := c.Apply(r, src); err != nil {
			t.Fatal(err)
		}
	}
	rs, err = src.Insert("P2", "A2")
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.Apply(rs[0], src)
	if err != nil {
		t.Fatal(err)
	}
	if q != 0 {
		t.Fatalf("level-2 atom insert cost %d cache queries", q)
	}
	if !c.Has("A2") {
		t.Fatal("new age not mirrored")
	}
	// Modify propagates.
	rs, _ = src.Modify("A2", oem.Int(41))
	if _, err := c.Apply(rs[0], src); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Access().Fetch("A2")
	if !got.Atom.Equal(oem.Int(41)) {
		t.Fatalf("mirror atom = %v", got.Atom)
	}
	// Delete detaches; Compact prunes.
	rs, _ = src.Delete("P2", "A2")
	if _, err := c.Apply(rs[0], src); err != nil {
		t.Fatal(err)
	}
	c.Compact()
	if c.Has("A2") {
		t.Fatal("detached atom survived Compact")
	}
}

func TestAuxCacheDeepSubtreeInsert(t *testing.T) {
	// A view with a two-level selection path over relation-like data; the
	// cache must absorb whole-subtree attachments (a new tuple with
	// children, and a new relation with tuples) via one FetchSubtree.
	s := store.NewDefault()
	workload.RelationLike(s, workload.RelationConfig{
		Relations: 1, TuplesPerRelation: 3, FieldsPerTuple: 2, Seed: 1,
	})
	tr := NewTransport(0)
	src := NewSource("rel", s, "REL", Level2, tr)
	src.DrainReports()
	def, _ := core.Simplify(query.MustParse("SELECT REL.r0.tuple X WHERE X.age > 30"))
	c, err := NewAuxCache(def, src, CacheFull)
	if err != nil {
		t.Fatal(err)
	}
	applyAll := func(rs []*UpdateReport, err error) int {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		queries := 0
		for _, r := range rs {
			q, err := c.Apply(r, src)
			if err != nil {
				t.Fatal(err)
			}
			queries += q
		}
		return queries
	}
	// Build a complete tuple subtree, then attach it with one insert.
	applyAll(src.Put(oem.NewAtom("AX", "age", oem.Int(50))))
	applyAll(src.Put(oem.NewAtom("FX", "f1", oem.String_("v"))))
	applyAll(src.Put(oem.NewSet("TX", "tuple", "AX", "FX")))
	db, _ := s.Get("REL")
	r0 := db.Set[0]
	q := applyAll(src.Insert(r0, "TX"))
	if q == 0 {
		t.Fatal("deep attachment needed no subtree fetch (unexpectedly free)")
	}
	if !c.Has("TX") || !c.Has("AX") {
		t.Fatal("attached subtree not mirrored")
	}
	if c.Has("FX") {
		t.Fatal("off-path field mirrored")
	}
	// The mirrored structure answers eval locally.
	got, err := c.Access().EvalCond("TX", def.CondPath, def.Cond)
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, []oem.OID{"AX"}) {
		t.Fatalf("local eval = %v", got)
	}
	// An irrelevant-label child under a mirrored tuple is edge-mirrored
	// (value exactness) but not admitted as an object.
	applyAll(src.Put(oem.NewAtom("GX", "note", oem.String_("x"))))
	applyAll(src.Insert("TX", "GX"))
	tx, _ := c.Access().Fetch("TX")
	if !tx.Contains("GX") {
		t.Fatalf("mirrored tuple value stale: %v", tx.Set)
	}
	if c.Has("GX") {
		t.Fatal("irrelevant child admitted")
	}
}

func TestLearnFromGuideMatchesScan(t *testing.T) {
	src, _ := newPersonSource(t, Level2)
	g := buildGuide(t, src.Store)
	fromGuide := LearnFromGuide(g)
	fromScan := LearnFromSource(src.Store, "ROOT")
	pairs := [][2]string{
		{"", "professor"}, {"professor", "age"}, {"student", "major"},
		{"student", "salary"}, {"secretary", "age"}, {"", "salary"},
	}
	for _, p := range pairs {
		if fromGuide.Occurs(p[0], p[1]) != fromScan.Occurs(p[0], p[1]) {
			t.Errorf("pair (%q,%q): guide %v != scan %v", p[0], p[1],
				fromGuide.Occurs(p[0], p[1]), fromScan.Occurs(p[0], p[1]))
		}
	}
}
