package warehouse

import (
	"errors"
	"fmt"
	"strings"

	"gsv/internal/obs"
)

// This file adds the "trace" request to the query-mode wire protocol:
// the client asks a node for its recent propagation span chains — where
// each stamped update's time went between ingestion at the source and
// visibility on that node — and receives them as one JSON frame.
// Chains from the primary and its replicas joined on trace_id
// reconstruct the full cross-node timeline; gsdbwatch -trace renders
// the join as a waterfall. See docs/OBSERVABILITY.md, "Propagation
// tracing".

// TracePayload is the body of a trace response.
type TracePayload struct {
	// Node names the answering node ("primary" or a replica name).
	Node string `json:"node"`
	// Chains are the retained span chains, oldest first, optionally
	// filtered to one view (a chain with an empty View — e.g. the WAL
	// ingestion span — always passes the filter, since it belongs to
	// every view's timeline).
	Chains []obs.SpanChain `json:"chains,omitempty"`
	// Total counts all chains ever recorded, including evicted ones.
	Total uint64 `json:"total"`
}

// tracePayload builds the trace response body, filtered to one view
// when view is non-empty.
func (s *Server) tracePayload(view string) *TracePayload {
	node := s.Node
	if node == "" {
		node = "primary"
	}
	chains := s.Chains.Snapshot()
	if view != "" {
		kept := chains[:0]
		for _, c := range chains {
			if c.View == "" || c.View == view {
				kept = append(kept, c)
			}
		}
		chains = kept
	}
	return &TracePayload{Node: node, Chains: chains, Total: s.Chains.Total()}
}

// FetchTrace asks the connected node for its recent propagation span
// chains, filtered to one view when view is non-empty. A server that
// predates the trace protocol (or runs with tracing off) answers with
// its unknown-op error; that is surfaced as ErrUnsupportedRequest so
// callers can degrade gracefully.
func (rs *RemoteSource) FetchTrace(view string) (*TracePayload, error) {
	resp, err := rs.roundTrip(netRequest{Op: "trace", View: view})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		if strings.Contains(resp.Err, "unknown op") {
			return nil, fmt.Errorf("%w: %s", ErrUnsupportedRequest, resp.Err)
		}
		return nil, fmt.Errorf("warehouse: remote: %s", resp.Err)
	}
	if resp.Trace == nil {
		return nil, errors.New("warehouse: trace response carried no payload")
	}
	return resp.Trace, nil
}
