package warehouse

import (
	"fmt"
	"testing"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// newWCluster builds a warehouse cluster with two overlapping views over
// the PERSON source.
func newWCluster(t testing.TB, level ReportLevel) (*Source, *Warehouse, *WCluster) {
	t.Helper()
	s := store.NewDefault()
	workload.PersonDB(s)
	tr := NewTransport(0)
	src := NewSource("persons", s, "ROOT", level, tr)
	src.DrainReports()
	w := New(src)
	wc := w.NewCluster("CL")
	if err := wc.AddView("YOUNG", query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45")); err != nil {
		t.Fatal(err)
	}
	if err := wc.AddView("NAMED", query.MustParse("SELECT ROOT.professor X WHERE EXISTS X.name")); err != nil {
		t.Fatal(err)
	}
	return src, w, wc
}

func TestWClusterInitialState(t *testing.T) {
	_, w, wc := newWCluster(t, Level2)
	young, err := wc.Cluster.Members("YOUNG")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(young, []oem.OID{"P1"}) {
		t.Fatalf("YOUNG = %v", young)
	}
	named, _ := wc.Cluster.Members("NAMED")
	if !oem.SameMembers(named, []oem.OID{"P1", "P2"}) {
		t.Fatalf("NAMED = %v", named)
	}
	// One shared delegate per member, at the warehouse.
	if wc.Cluster.DelegateCount() != 2 {
		t.Fatalf("delegates = %d", wc.Cluster.DelegateCount())
	}
	if !w.Store.Has("CL.P1") || w.Store.Has("YOUNG.P1") {
		t.Fatal("delegate placement wrong")
	}
}

func TestWClusterMaintenanceAcrossLevels(t *testing.T) {
	for _, level := range []ReportLevel{Level1, Level2, Level3} {
		t.Run(level.String(), func(t *testing.T) {
			src, w, wc := newWCluster(t, level)
			_ = w
			feed := func(rs []*UpdateReport, err error) {
				t.Helper()
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range rs {
					if err := wc.ProcessReport(r); err != nil {
						t.Fatal(err)
					}
				}
			}
			// P1 ages out of YOUNG; stays in NAMED, delegate survives.
			feed(src.Modify("A1", oem.Int(60)))
			young, _ := wc.Cluster.Members("YOUNG")
			named, _ := wc.Cluster.Members("NAMED")
			if len(young) != 0 {
				t.Fatalf("YOUNG = %v", young)
			}
			if !oem.SameMembers(named, []oem.OID{"P1", "P2"}) {
				t.Fatalf("NAMED = %v", named)
			}
			if wc.Cluster.DelegateCount() != 2 {
				t.Fatalf("delegates = %d", wc.Cluster.DelegateCount())
			}
			// Remove P1's name: out of NAMED too; delegate reclaimed.
			feed(src.Delete("P1", "N1"))
			named, _ = wc.Cluster.Members("NAMED")
			if !oem.SameMembers(named, []oem.OID{"P2"}) {
				t.Fatalf("NAMED after name removal = %v", named)
			}
			if wc.Cluster.DelegateCount() != 1 {
				t.Fatalf("delegates = %d", wc.Cluster.DelegateCount())
			}
			// A new professor enters both views through reports.
			feed(src.Put(oem.NewAtom("N9", "name", oem.String_("Ada"))))
			feed(src.Put(oem.NewAtom("A9", "age", oem.Int(30))))
			feed(src.Put(oem.NewSet("P9", "professor", "N9", "A9")))
			feed(src.Insert("ROOT", "P9"))
			young, _ = wc.Cluster.Members("YOUNG")
			named, _ = wc.Cluster.Members("NAMED")
			if !oem.SameMembers(young, []oem.OID{"P9"}) {
				t.Fatalf("YOUNG after insert = %v", young)
			}
			if !oem.SameMembers(named, []oem.OID{"P2", "P9"}) {
				t.Fatalf("NAMED after insert = %v", named)
			}
		})
	}
}

func TestWClusterCountsQueries(t *testing.T) {
	src, _, wc := newWCluster(t, Level1)
	rs, err := src.Modify("A1", oem.Int(60))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if err := wc.ProcessReport(r); err != nil {
			t.Fatal(err)
		}
	}
	if wc.Stats.Reports.Value() != 1 {
		t.Fatalf("reports = %d", wc.Stats.Reports.Value())
	}
	if wc.Stats.QueryBacks.Value() == 0 {
		t.Fatal("level-1 modify cost no query backs")
	}
}

func TestWClusterRejects(t *testing.T) {
	_, _, wc := newWCluster(t, Level2)
	if err := wc.AddView("W", query.MustParse("SELECT ROOT.* X")); err == nil {
		t.Fatal("wildcard cluster view accepted")
	}
	if err := wc.AddView("W2", query.MustParse("SELECT ROOT.professor X WITHIN PERSON")); err == nil {
		t.Fatal("WITHIN cluster view accepted")
	}
	if err := wc.AddView("YOUNG", query.MustParse("SELECT ROOT.professor X")); err == nil {
		t.Fatal("duplicate cluster view accepted")
	}
}

// TestPropertyWClusterMatchesFreshEval replays a random stream through a
// warehouse cluster and cross-checks every member view against fresh
// source evaluation.
func TestPropertyWClusterMatchesFreshEval(t *testing.T) {
	for _, level := range []ReportLevel{Level1, Level2, Level3} {
		for seed := int64(0); seed < 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", level, seed), func(t *testing.T) {
				s := store.NewDefault()
				db := workload.RelationLike(s, workload.RelationConfig{
					Relations: 1, TuplesPerRelation: 5, FieldsPerTuple: 2, Seed: seed,
				})
				tr := NewTransport(0)
				src := NewSource("rel", s, "REL", level, tr)
				src.DrainReports()
				w := New(src)
				wc := w.NewCluster("CL")
				queries := map[string]string{
					"Q40": "SELECT REL.r0.tuple X WHERE X.age > 40",
					"Q20": "SELECT REL.r0.tuple X WHERE X.age > 20",
				}
				for name, qs := range queries {
					if err := wc.AddView(name, query.MustParse(qs)); err != nil {
						t.Fatal(err)
					}
				}
				var sets, atoms []oem.OID
				sets = append(sets, db.Relations[0].OID)
				sets = append(sets, db.Relations[0].Tuples...)
				for _, tu := range db.Relations[0].Tuples {
					kids, _ := s.Children(tu)
					atoms = append(atoms, kids...)
				}
				stream := workload.NewStream(s, workload.StreamConfig{
					Seed: seed + 5, Mix: workload.Mix{Insert: 3, Delete: 2, Modify: 5}, ValueRange: 60,
				}, sets, atoms)
				for step := 0; step < 60; step++ {
					if _, ok := stream.Next(); !ok {
						break
					}
					for _, r := range src.DrainReports() {
						if err := wc.ProcessReport(r); err != nil {
							t.Fatal(err)
						}
					}
					if step%10 != 0 {
						continue
					}
					for name, qs := range queries {
						fresh, err := query.NewEvaluator(s).Eval(query.MustParse(qs))
						if err != nil {
							t.Fatal(err)
						}
						got, err := wc.Cluster.Members(oem.OID(name))
						if err != nil {
							t.Fatal(err)
						}
						if !oem.SameMembers(got, fresh) {
							t.Fatalf("step %d %s: cluster %v != fresh %v", step, name, got, fresh)
						}
					}
				}
			})
		}
	}
}
