package warehouse

import (
	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/store"
)

// CacheMode selects the Section 5.2 auxiliary caching strategy for one
// warehouse view.
type CacheMode int

const (
	// CacheNone keeps only the materialized view; every helper function
	// evaluation queries the source.
	CacheNone CacheMode = iota
	// CachePartial caches the structure reachable from the entry along
	// prefixes of sel_path.cond_path — labels and edges but not atomic
	// values ("the warehouse may choose to cache part of the above
	// structure, e.g., without the values of atomic nodes"). Condition
	// tests still query the source.
	CachePartial
	// CacheFull caches the structure including atomic values: maintenance
	// becomes fully local for reported updates.
	CacheFull
)

// String names the mode.
func (m CacheMode) String() string {
	switch m {
	case CacheNone:
		return "none"
	case CachePartial:
		return "partial"
	case CacheFull:
		return "full"
	default:
		return "cache?"
	}
}

// AuxCache mirrors, at the warehouse, every source object reachable from
// the view's entry along prefixes of sel_path.cond_path (Example 10's
// auxiliary structure). It is itself a small GSDB store maintained from
// update reports; the helper functions of Algorithm 1 are then answered by
// a CentralAccess over the mirror instead of by source queries.
type AuxCache struct {
	Mode CacheMode
	Def  core.SimpleDef

	store  *store.Store
	access *core.CentralAccess
	// labelsOnPath[i] is the set of labels acceptable at depth i+1 from
	// the entry (exactly full[i], since simple views have constant paths).
	full pathexpr.Path
}

// NewAuxCache builds the cache by walking the source store along the
// view's paths. The initial build is charged to the transport as one
// subtree fetch per path level batch — in a real system it would piggyback
// on the initial view materialization.
func NewAuxCache(def core.SimpleDef, src SourceAPI, mode CacheMode) (*AuxCache, error) {
	c := &AuxCache{
		Mode: mode,
		Def:  def,
		store: store.New(store.Options{
			ParentIndex: true, LabelIndex: true, AllowDangling: true,
		}),
		full: def.FullPath(),
	}
	c.access = core.NewCentralAccess(c.store)
	objs, err := src.FetchSubtree(def.Entry, len(c.full))
	if err != nil {
		return nil, err
	}
	byOID := make(map[oem.OID]*oem.Object, len(objs))
	for _, o := range objs {
		byOID[o.OID] = o
	}
	root := byOID[def.Entry]
	if root == nil {
		return c, nil
	}
	// Admit only objects lying on prefix paths of full; FetchSubtree
	// returns the whole depth-bounded subtree, which may be wider.
	type frame struct {
		oid   oem.OID
		depth int
	}
	admitted := map[oem.OID]bool{def.Entry: true}
	queue := []frame{{def.Entry, 0}}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		o := byOID[f.oid]
		if o == nil || !o.IsSet() || f.depth >= len(c.full) {
			continue
		}
		for _, ch := range o.Set {
			co := byOID[ch]
			if co == nil || co.Label != c.full[f.depth] {
				continue
			}
			if !admitted[ch] {
				admitted[ch] = true
				queue = append(queue, frame{ch, f.depth + 1})
			}
		}
	}
	for oid := range admitted {
		c.admit(byOID[oid])
	}
	return c, nil
}

// admit stores a copy of the object in the mirror, stripping atomic values
// under CachePartial.
func (c *AuxCache) admit(o *oem.Object) {
	if o == nil || c.store.Has(o.OID) {
		return
	}
	cp := o.Clone()
	if c.Mode == CachePartial && cp.IsAtomic() {
		cp.Atom = oem.Atom{}
	}
	c.store.MustPut(cp)
}

// Size returns the number of mirrored objects.
func (c *AuxCache) Size() int { return c.store.Len() }

// Bytes estimates the cache's memory footprint.
func (c *AuxCache) Bytes() int {
	n := 0
	c.store.ForEach(func(o *oem.Object) { n += o.EncodedSize() })
	return n
}

// Has reports whether the cache mirrors an object.
func (c *AuxCache) Has(oid oem.OID) bool { return c.store.Has(oid) }

// HasValues reports whether atomic values are trustworthy in the mirror.
func (c *AuxCache) HasValues() bool { return c.Mode == CacheFull }

// Access returns a BaseAccess over the mirror for locally answerable
// helper calls.
func (c *AuxCache) Access() *core.CentralAccess { return c.access }

// Apply maintains the mirror under one update report. It returns the
// number of source queries it had to issue (through src) to stay complete:
// zero for most updates; one subtree fetch when an insert attaches
// structure the report does not carry.
func (c *AuxCache) Apply(r *UpdateReport, src SourceAPI) (queries int, err error) {
	u := r.Update
	switch u.Kind {
	case store.UpdateCreate:
		// Nothing to do until an insert attaches the object; admission
		// happens then, with the attached position known.
		return 0, nil
	case store.UpdateModify:
		if !c.store.Has(u.N1) || c.Mode == CachePartial {
			return 0, nil
		}
		if r.Level >= Level2 {
			if o := r.Objects[u.N1]; o != nil && o.IsAtomic() {
				return 0, c.store.Modify(u.N1, o.Atom)
			}
		}
		if !u.New.IsZero() {
			return 0, c.store.Modify(u.N1, u.New)
		}
		// Level 1 withholds the value; fetch it.
		o, err := src.FetchObject(u.N1)
		if err != nil {
			return 1, err
		}
		return 1, c.store.Modify(u.N1, o.Atom)
	case store.UpdateDelete:
		if !c.store.Has(u.N1) {
			return 0, nil
		}
		if cur, err := c.store.Get(u.N1); err != nil || !cur.Contains(u.N2) {
			return 0, nil
		}
		// The detached subtree is NOT reclaimed here: Algorithm 1's delete
		// case still needs to evaluate within it. The warehouse calls
		// Compact after maintenance completes.
		return 0, c.store.Delete(u.N1, u.N2)
	case store.UpdateInsert:
		return c.applyInsert(r, src)
	default:
		return 0, nil
	}
}

// applyInsert admits newly reachable structure.
func (c *AuxCache) applyInsert(r *UpdateReport, src SourceAPI) (int, error) {
	u := r.Update
	parent := u.N1
	if !c.store.Has(parent) {
		return 0, nil // outside the mirrored region
	}
	// Mirror the edge unconditionally: set values of mirrored objects must
	// stay exact so the warehouse can build delegates from the cache; an
	// irrelevant-label child simply dangles in the mirror.
	if err := c.store.Insert(parent, u.N2); err != nil {
		return 0, err
	}
	depth := c.depthOf(parent)
	if depth < 0 || depth >= len(c.full) {
		return 0, nil
	}
	wantLabel := c.full[depth]
	// Does the child carry a relevant label? Level >= 2 knows from the
	// report; Level 1 must fetch the object to find out.
	queries := 0
	var childObj *oem.Object
	if r.Level >= Level2 {
		childObj = r.Objects[u.N2]
	}
	if childObj == nil {
		o, err := src.FetchObject(u.N2)
		if err != nil {
			return 1, nil // dangling child: nothing to mirror
		}
		childObj = o
		queries++
	}
	if childObj.Label != wantLabel {
		return queries, nil
	}
	// Admit the child and, if deeper levels remain, the subtree below it
	// along the remaining path — one subtree fetch.
	c.admit(childObj)
	remaining := len(c.full) - depth - 1
	if remaining > 0 && childObj.IsSet() {
		objs, err := src.FetchSubtree(u.N2, remaining)
		if err != nil {
			return queries + 1, err
		}
		queries++
		byOID := make(map[oem.OID]*oem.Object, len(objs))
		for _, o := range objs {
			byOID[o.OID] = o
		}
		type frame struct {
			oid oem.OID
			d   int
		}
		queue := []frame{{u.N2, depth + 1}}
		for len(queue) > 0 {
			f := queue[0]
			queue = queue[1:]
			o := byOID[f.oid]
			if o == nil || !o.IsSet() || f.d >= len(c.full) {
				continue
			}
			for _, ch := range o.Set {
				co := byOID[ch]
				if co == nil || co.Label != c.full[f.d] {
					continue
				}
				c.admit(co)
				if !c.store.Has(f.oid) {
					continue
				}
				if cur, err := c.store.Get(f.oid); err == nil && !cur.Contains(ch) {
					if err := c.store.Insert(f.oid, ch); err != nil {
						return queries, err
					}
				}
				queue = append(queue, frame{ch, f.d + 1})
			}
		}
	}
	return queries, nil
}

// Compact reclaims mirrored objects no longer reachable from the entry.
// The warehouse calls it after view maintenance for each report, so that
// Algorithm 1's delete case can still evaluate within detached subtrees.
func (c *AuxCache) Compact() {
	c.store.CollectGarbage(c.Def.Entry)
}

// depthOf returns the path depth of a mirrored object below the entry, or
// -1 if it is not on a mirrored path. Depth 0 is the entry itself.
func (c *AuxCache) depthOf(oid oem.OID) int {
	if oid == c.Def.Entry {
		return 0
	}
	p, ok, err := c.access.Path(c.Def.Entry, oid)
	if err != nil || !ok {
		return -1
	}
	return len(p)
}

// PathKnowledge is the Section 5.2 closing idea: static knowledge of which
// parent-label → child-label pairs occur at the source (a DataGuide-like
// "schema"). The warehouse screens reported updates against it: an insert
// whose (parent label, child label) pair can never lie on the view's path
// is discarded without any query.
type PathKnowledge struct {
	// pairs maps parent label -> set of child labels that occur. The
	// virtual parent label "" stands for the root.
	pairs map[string]map[string]bool
}

// LearnFromGuide builds path knowledge from a strong DataGuide — the
// [GW97] "schema" the paper points at. The guide enumerates exactly the
// label pairs that occur, so the knowledge is as precise as a full scan
// at a fraction of the cost on structurally regular data.
func LearnFromGuide(g interface {
	Paths(maxLen int) []pathexpr.Path
}) *PathKnowledge {
	pk := &PathKnowledge{pairs: map[string]map[string]bool{}}
	for _, p := range g.Paths(16) {
		parent := ""
		if len(p) > 1 {
			parent = p[len(p)-2]
		}
		pk.Observe(parent, p[len(p)-1])
	}
	return pk
}

// LearnFromSource builds path knowledge by scanning a source store.
func LearnFromSource(s *store.Store, root oem.OID) *PathKnowledge {
	pk := &PathKnowledge{pairs: map[string]map[string]bool{}}
	s.ForEach(func(o *oem.Object) {
		if !o.IsSet() || oem.IsGroupingLabel(o.Label) {
			return
		}
		plbl := o.Label
		if o.OID == root {
			plbl = ""
		}
		for _, c := range o.Set {
			lbl, err := s.Label(c)
			if err != nil {
				continue
			}
			m := pk.pairs[plbl]
			if m == nil {
				m = map[string]bool{}
				pk.pairs[plbl] = m
			}
			m[lbl] = true
		}
	})
	return pk
}

// Observe records a parent→child label pair seen in a report, keeping the
// knowledge sound as the source evolves.
func (pk *PathKnowledge) Observe(parentLabel, childLabel string) {
	m := pk.pairs[parentLabel]
	if m == nil {
		m = map[string]bool{}
		pk.pairs[parentLabel] = m
	}
	m[childLabel] = true
}

// Occurs reports whether the pair is known to occur.
func (pk *PathKnowledge) Occurs(parentLabel, childLabel string) bool {
	return pk.pairs[parentLabel][childLabel]
}

// PairCount returns the number of known pairs, a proxy for knowledge size.
func (pk *PathKnowledge) PairCount() int {
	n := 0
	for _, m := range pk.pairs {
		n += len(m)
	}
	return n
}
