package warehouse

import (
	"errors"
	"fmt"
	"strings"

	"gsv/internal/obs"
)

// This file adds the "stats" request to the query-mode wire protocol:
// the client asks the server for its observability state and receives a
// registry snapshot plus the most recent maintenance traces as one JSON
// frame. The request is answered from atomic instrument reads, so it can
// run while updates are in flight; see docs/OBSERVABILITY.md.

// StatsPayload is the body of a stats response: a point-in-time snapshot
// of the server's metrics registry and the recent maintenance traces.
type StatsPayload struct {
	Registry obs.Snapshot `json:"registry"`
	Traces   []obs.Trace  `json:"traces,omitempty"`
	// RemoteWire is filled in client-side by FetchStats: the local
	// RemoteSource's failure counters (reconnects, retries, gaps, bad
	// frames and the last report decode error). It never travels on the
	// wire — the server knows nothing about this client's failures.
	RemoteWire *WireSnapshot `json:"-"`
}

// ErrUnsupportedRequest marks a request the connected server does not
// implement — e.g. a stats request against a server that predates the
// stats protocol. Detect it with errors.Is.
var ErrUnsupportedRequest = errors.New("warehouse: server does not support this request")

// errNoStatsRegistry answers stats requests on a server that was never
// given a registry (observability off).
const errNoStatsRegistry = "warehouse: server has no stats registry"

// statsPayload builds the stats response body from the server's registry
// and trace ring. It returns an error string for the wire when the
// server has no registry.
func (s *Server) statsPayload() (*StatsPayload, string) {
	if s.Obs == nil {
		return nil, errNoStatsRegistry
	}
	return &StatsPayload{
		Registry: s.Obs.Snapshot(),
		Traces:   s.Traces.Snapshot(),
	}, ""
}

// FetchStats asks the connected server for its metrics snapshot and
// recent maintenance traces. A server that predates the stats protocol
// answers with its unknown-op error; that is surfaced as
// ErrUnsupportedRequest so callers can degrade gracefully.
func (rs *RemoteSource) FetchStats() (*StatsPayload, error) {
	resp, err := rs.roundTrip(netRequest{Op: "stats"})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		if strings.Contains(resp.Err, "unknown op") {
			return nil, fmt.Errorf("%w: %s", ErrUnsupportedRequest, resp.Err)
		}
		return nil, fmt.Errorf("warehouse: remote: %s", resp.Err)
	}
	if resp.Stats == nil {
		return nil, errors.New("warehouse: stats response carried no payload")
	}
	wire := rs.wire.snapshot()
	resp.Stats.RemoteWire = &wire
	return resp.Stats, nil
}
