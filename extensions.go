package gsv

import (
	"fmt"
	"io"
	"os"

	"gsv/internal/core"
	"gsv/internal/pathexpr"
	"gsv/internal/store"
)

// This file exposes the Section 6 extension features through the facade:
// aggregate views, partially materialized views, bulk updates with intent
// screening, and snapshot persistence.

// AggOp re-exports the aggregate operators.
type AggOp = core.AggOp

// Aggregate operators.
const (
	AggCount = core.AggCount
	AggSum   = core.AggSum
	AggMin   = core.AggMin
	AggMax   = core.AggMax
	AggAvg   = core.AggAvg
)

// BulkUpdate re-exports the bulk-update intent descriptor.
type BulkUpdate = core.BulkUpdate

// BulkOutcome re-exports the per-view bulk-maintenance outcome.
type BulkOutcome = core.BulkOutcome

// extra is a maintainer fed by DB.Sync outside the registry (aggregates
// and partial views keep their delegates in side stores).
type extra interface {
	Apply(u store.Update) error
}

// DefineAggregate registers an incrementally maintained aggregate view:
// op over the numeric atoms at valuePath below each member of the simple
// view defined by baseQuery. The result is read with AggregateValue.
func (db *DB) DefineAggregate(name string, op AggOp, baseQuery, valuePath string) error {
	if _, ok := db.aggs[name]; ok {
		return fmt.Errorf("gsv: aggregate %s already defined", name)
	}
	q, err := ParseQuery(baseQuery)
	if err != nil {
		return err
	}
	def, ok := core.Simplify(q)
	if !ok {
		return fmt.Errorf("gsv: aggregate base %q is not a simple view", baseQuery)
	}
	vp, err := pathexpr.ParsePath(valuePath)
	if err != nil {
		return err
	}
	db.ensureSideStore()
	a, err := core.NewAggregateView(OID(name), core.AggDef{Base: def, ValuePath: vp, Op: op}, db.Store, db.side)
	if err != nil {
		return err
	}
	db.aggs[name] = a
	db.extras = append(db.extras, a)
	db.markSynced()
	return nil
}

// AggregateValue returns the current value of a registered aggregate.
func (db *DB) AggregateValue(name string) (Atom, error) {
	db.Sync()
	a, ok := db.aggs[name]
	if !ok {
		return Atom{}, fmt.Errorf("gsv: aggregate %s not defined", name)
	}
	return a.Value()
}

// DefinePartial registers a partially materialized view: delegates for the
// members of baseQuery and for their descendants down to depth levels,
// with frontier values left as pointers back to base data (Section 6).
func (db *DB) DefinePartial(name, baseQuery string, depth int) (*core.PartialView, error) {
	if _, ok := db.partials[name]; ok {
		return nil, fmt.Errorf("gsv: partial view %s already defined", name)
	}
	q, err := ParseQuery(baseQuery)
	if err != nil {
		return nil, err
	}
	def, ok := core.Simplify(q)
	if !ok {
		return nil, fmt.Errorf("gsv: partial view base %q is not a simple view", baseQuery)
	}
	// Each partial view owns its store: pruning garbage-collects it.
	pstore := store.New(store.Options{ParentIndex: true, LabelIndex: true, AllowDangling: true})
	p, err := core.NewPartialView(OID(name), def, depth, db.Store, pstore)
	if err != nil {
		return nil, err
	}
	db.partials[name] = p
	db.extras = append(db.extras, p)
	db.markSynced()
	return p, nil
}

// Partial returns a registered partial view.
func (db *DB) Partial(name string) (*core.PartialView, bool) {
	p, ok := db.partials[name]
	return p, ok
}

// ApplyBulk executes a bulk update described by intent and maintains all
// views: registry views are screened by the intent (assumeStable extends
// screening to disjoint selectors — see core.ScreenBulkUpdate for the
// facts it asserts); aggregates and partial views process the individual
// updates as usual.
func (db *DB) ApplyBulk(b BulkUpdate, transform func(Atom) Atom, assumeStable bool) ([]BulkOutcome, error) {
	out, err := db.Views.ApplyBulk(b, transform, assumeStable)
	// The registry maintained its views inside ApplyBulk; suppress the
	// watch buffer for those updates, then let Sync feed the extras.
	db.Views.SkipThrough(db.Store.Seq())
	db.Sync()
	return out, err
}

// Save writes a snapshot of the base data to w (view machinery objects are
// included when views live in the base store; Load restores them as plain
// objects — redefine views after loading).
func (db *DB) Save(w io.Writer) error { return db.Store.Save(w) }

// SaveFile writes a snapshot to a file.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := db.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile opens a snapshot file into a fresh DB.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Load reads a snapshot into a fresh DB.
func Load(r io.Reader) (*DB, error) {
	s := store.NewDefault()
	if err := s.Load(r); err != nil {
		return nil, err
	}
	return OpenWith(s), nil
}

// ensureSideStore lazily creates the store holding aggregate results.
func (db *DB) ensureSideStore() {
	if db.side == nil {
		db.side = store.New(store.Options{ParentIndex: true, AllowDangling: true})
	}
}

// markSynced records that extras are current through the present sequence
// number (used right after registering a new extra, whose initial state
// already reflects the store).
func (db *DB) markSynced() { db.extraSeq = db.Store.Seq() }

// syncExtras feeds base updates the extras have not seen yet.
func (db *DB) syncExtras() {
	if len(db.extras) == 0 {
		db.extraSeq = db.Store.Seq()
		return
	}
	updates := db.Store.LogSince(db.extraSeq)
	for _, u := range updates {
		db.extraSeq = u.Seq
		if db.Views.IsViewObject(u.N1) {
			continue
		}
		if _, _, isDelegate := core.SplitDelegateOID(u.N1); isDelegate {
			continue
		}
		for _, e := range db.extras {
			if err := e.Apply(u); err != nil {
				db.maintErrs = append(db.maintErrs, err)
			}
		}
	}
}
