package gsv_test

// One benchmark per experiment table (E1–E7; see DESIGN.md §4 and
// EXPERIMENTS.md), plus micro-benchmarks for the core operations. The
// experiment benchmarks measure the per-update maintenance cost of the
// configuration named in the benchmark; the full sweep tables are printed
// by cmd/benchviews.

import (
	"fmt"
	"testing"

	"gsv/internal/core"
	"gsv/internal/dataguide"
	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/relstore"
	"gsv/internal/store"
	"gsv/internal/warehouse"
	"gsv/internal/workload"
)

const benchView = "SELECT REL.r0.tuple X WHERE X.age > 30"

func benchFixture(b *testing.B, tuples int) (*store.Store, []oem.OID, []oem.OID) {
	b.Helper()
	s := store.NewDefault()
	db := workload.RelationLike(s, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: tuples, FieldsPerTuple: 3, Seed: 7,
	})
	var sets, atoms []oem.OID
	for _, r := range db.Relations {
		sets = append(sets, r.OID)
		sets = append(sets, r.Tuples...)
		for _, tu := range r.Tuples {
			kids, _ := s.Children(tu)
			atoms = append(atoms, kids...)
		}
	}
	return s, sets, atoms
}

// BenchmarkE1IncrementalMaintenance measures Algorithm 1's per-update cost
// (the incremental side of E1).
func BenchmarkE1IncrementalMaintenance(b *testing.B) {
	for _, tuples := range []int{100, 1000} {
		b.Run(fmt.Sprintf("tuples=%d", tuples), func(b *testing.B) {
			s, sets, atoms := benchFixture(b, tuples)
			vstore := store.New(store.Options{ParentIndex: true, AllowDangling: true})
			mv, err := core.Materialize("V", query.MustParse(benchView), s, vstore)
			if err != nil {
				b.Fatal(err)
			}
			m, err := core.NewSimpleMaintainer(mv, core.NewCentralAccess(s))
			if err != nil {
				b.Fatal(err)
			}
			stream := workload.NewStream(s, workload.StreamConfig{Seed: 9, ValueRange: 60}, sets, atoms)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				us, ok := stream.Next()
				if !ok {
					b.Fatal("stream exhausted")
				}
				for _, u := range us {
					if err := m.Apply(u); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkE1Recompute measures the full-recomputation baseline of E1.
func BenchmarkE1Recompute(b *testing.B) {
	for _, tuples := range []int{100, 1000} {
		b.Run(fmt.Sprintf("tuples=%d", tuples), func(b *testing.B) {
			s, sets, atoms := benchFixture(b, tuples)
			vstore := store.New(store.Options{ParentIndex: true, AllowDangling: true})
			mv, err := core.Materialize("V", query.MustParse(benchView), s, vstore)
			if err != nil {
				b.Fatal(err)
			}
			stream := workload.NewStream(s, workload.StreamConfig{Seed: 9, ValueRange: 60}, sets, atoms)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := stream.Next(); !ok {
					b.Fatal("stream exhausted")
				}
				if err := mv.Recompute(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2PathAncestor measures the E2 helper functions with and
// without the parent index on a deep chain.
func BenchmarkE2PathAncestor(b *testing.B) {
	for _, idx := range []bool{true, false} {
		for _, depth := range []int{16, 64} {
			b.Run(fmt.Sprintf("index=%v/depth=%d", idx, depth), func(b *testing.B) {
				opts := store.DefaultOptions()
				opts.ParentIndex = idx
				s := store.New(opts)
				root, leaf := workload.DeepChain(s, depth, 4)
				a := core.NewCentralAccess(s)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok, err := a.Path(root, leaf); err != nil || !ok {
						b.Fatalf("path failed: %v %v", ok, err)
					}
				}
			})
		}
	}
}

// BenchmarkE3RelationalIVM measures the relational counting baseline's
// per-update cost (the comparison side of E3).
func BenchmarkE3RelationalIVM(b *testing.B) {
	for _, tuples := range []int{100, 1000} {
		b.Run(fmt.Sprintf("tuples=%d", tuples), func(b *testing.B) {
			s, sets, atoms := benchFixture(b, tuples)
			def, ok := core.Simplify(query.MustParse(benchView))
			if !ok {
				b.Fatal("not simple")
			}
			rel, err := relstore.NewGSDBView(s, def)
			if err != nil {
				b.Fatal(err)
			}
			stream := workload.NewStream(s, workload.StreamConfig{Seed: 9, ValueRange: 60}, sets, atoms)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				us, ok := stream.Next()
				if !ok {
					b.Fatal("stream exhausted")
				}
				for _, u := range us {
					rel.Apply(u)
				}
			}
		})
	}
}

// benchWarehouse drives one warehouse configuration; reported as
// time/op = per-source-update maintenance cost including query backs.
func benchWarehouse(b *testing.B, level warehouse.ReportLevel, cfg warehouse.ViewConfig) {
	s := store.NewDefault()
	db := workload.RelationLike(s, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: 200, FieldsPerTuple: 3, Seed: 7,
	})
	tr := warehouse.NewTransport(0)
	src := warehouse.NewSource("rel", s, "REL", level, tr)
	src.DrainReports()
	w := warehouse.New(src)
	if _, err := w.DefineView("SEL", query.MustParse(benchView), cfg); err != nil {
		b.Fatal(err)
	}
	var sets, atoms []oem.OID
	for _, r := range db.Relations {
		sets = append(sets, r.OID)
		sets = append(sets, r.Tuples...)
		for _, tu := range r.Tuples {
			kids, _ := s.Children(tu)
			atoms = append(atoms, kids...)
		}
	}
	stream := workload.NewStream(s, workload.StreamConfig{Seed: 9, ValueRange: 60}, sets, atoms)
	setup := tr.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := stream.Next(); !ok {
			b.Fatal("stream exhausted")
		}
		if err := w.ProcessAll(src.DrainReports()); err != nil {
			b.Fatal(err)
		}
	}
	used := tr.Sub(setup)
	b.ReportMetric(float64(used.QueryBacks)/float64(b.N), "queries/op")
}

// BenchmarkE4ReportingLevels measures warehouse maintenance per update at
// each reporting level (E4), without caching.
func BenchmarkE4ReportingLevels(b *testing.B) {
	for _, level := range []warehouse.ReportLevel{warehouse.Level1, warehouse.Level2, warehouse.Level3} {
		b.Run(level.String(), func(b *testing.B) {
			benchWarehouse(b, level, warehouse.ViewConfig{Screening: level >= warehouse.Level2})
		})
	}
}

// BenchmarkE5Caching measures warehouse maintenance per update under the
// Section 5.2 cache modes (E5), at Level 2 with screening.
func BenchmarkE5Caching(b *testing.B) {
	for _, mode := range []warehouse.CacheMode{warehouse.CacheNone, warehouse.CachePartial, warehouse.CacheFull} {
		b.Run(mode.String(), func(b *testing.B) {
			benchWarehouse(b, warehouse.Level2, warehouse.ViewConfig{Cache: mode, Screening: true})
		})
	}
}

// BenchmarkE6SwizzledQuery measures WITHIN-view query evaluation on
// swizzled vs unswizzled materialized views (E6).
func BenchmarkE6SwizzledQuery(b *testing.B) {
	for _, swizzled := range []bool{false, true} {
		b.Run(fmt.Sprintf("swizzled=%v", swizzled), func(b *testing.B) {
			s := store.NewDefault()
			count := 0
			var build func(d int) oem.OID
			build = func(d int) oem.OID {
				oid := oem.OID(fmt.Sprintf("e%d", count))
				count++
				if d == 0 {
					s.MustPut(oem.NewAtom(oid, "badge", oem.Int(int64(count))))
					return oid
				}
				kids := make([]oem.OID, 0, 3)
				for i := 0; i < 3; i++ {
					kids = append(kids, build(d-1))
				}
				s.MustPut(oem.NewSet(oid, "person", kids...))
				return oid
			}
			build(6)
			mv, err := core.Materialize("MV", query.MustParse("SELECT e0.* X"), s, s)
			if err != nil {
				b.Fatal(err)
			}
			if swizzled {
				if err := mv.Swizzle(); err != nil {
					b.Fatal(err)
				}
			}
			q := query.MustParse("SELECT MV.person.person X WITHIN MV")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mv.QueryView(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7GeneralMaintainer measures the generalized maintainer on the
// wildcard view only it (and recomputation) can maintain (E7).
func BenchmarkE7GeneralMaintainer(b *testing.B) {
	s, sets, atoms := benchFixture(b, 100)
	mv, err := core.Materialize("V", query.MustParse("SELECT REL.* X WHERE X.age > 30"), s, s)
	if err != nil {
		b.Fatal(err)
	}
	g, err := core.NewGeneralMaintainer(mv)
	if err != nil {
		b.Fatal(err)
	}
	stream := workload.NewStream(s, workload.StreamConfig{Seed: 9, ValueRange: 60}, sets, atoms)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := s.Seq()
		if _, ok := stream.Next(); !ok {
			b.Fatal("stream exhausted")
		}
		for _, u := range s.LogSince(before) {
			if _, _, isDel := core.SplitDelegateOID(u.N1); isDel || u.N1 == "V" {
				continue
			}
			if err := g.Apply(u); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkQueryEvaluation measures plain query evaluation (wildcard and
// constant paths) on a mid-size database.
func BenchmarkQueryEvaluation(b *testing.B) {
	s, _, _ := benchFixture(b, 500)
	ev := query.NewEvaluator(s)
	for _, qs := range []string{
		"SELECT REL.r0.tuple X WHERE X.age > 30",
		"SELECT REL.* X WHERE X.age > 30",
	} {
		b.Run(qs[:14], func(b *testing.B) {
			q := query.MustParse(qs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Eval(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreUpdates measures raw store mutation throughput.
func BenchmarkStoreUpdates(b *testing.B) {
	s, _, atoms := benchFixture(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := atoms[i%len(atoms)]
		if err := s.Modify(target, oem.Int(int64(i%100))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaterialize measures initial view materialization.
func BenchmarkMaterialize(b *testing.B) {
	s, _, _ := benchFixture(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vstore := store.New(store.Options{ParentIndex: true, AllowDangling: true})
		if _, err := core.Materialize("V", query.MustParse(benchView), s, vstore); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8BulkScreening measures a bulk raise with intent screening on
// versus off (E8): the off case processes every individual update in every
// view.
func BenchmarkE8BulkScreening(b *testing.B) {
	for _, screening := range []bool{false, true} {
		b.Run(fmt.Sprintf("screening=%v", screening), func(b *testing.B) {
			s := store.NewDefault()
			var people []oem.OID
			for i := 0; i < 200; i++ {
				name := "Mark"
				if i%2 == 1 {
					name = "John"
				}
				nm := oem.OID(fmt.Sprintf("N%d", i))
				sal := oem.OID(fmt.Sprintf("S%d", i))
				s.MustPut(oem.NewAtom(nm, "name", oem.String_(name)))
				s.MustPut(oem.NewTypedAtom(sal, "salary", "dollar", oem.Int(int64(40000+i))))
				p := oem.OID(fmt.Sprintf("P%d", i))
				s.MustPut(oem.NewSet(p, "person", nm, sal))
				people = append(people, p)
			}
			s.MustPut(oem.NewSet("ROOT", "people", people...))
			r := core.NewRegistry(s)
			if _, err := r.Define("define mview JOHNS as: SELECT ROOT.person X WHERE X.name = 'John'"); err != nil {
				b.Fatal(err)
			}
			bu := core.BulkUpdate{
				Selector: core.SimpleDef{
					Entry:    "ROOT",
					SelPath:  pathexpr.MustParsePath("person"),
					CondPath: pathexpr.MustParsePath("name"),
					Cond:     core.CondTest{Op: query.OpEq, Literal: oem.String_("Mark")},
				},
				EffectPath: pathexpr.MustParsePath("salary"),
			}
			raise := func(v oem.Atom) oem.Atom { return oem.Int(v.I + 1) }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if screening {
					if _, err := r.ApplyBulk(bu, raise, true); err != nil {
						b.Fatal(err)
					}
				} else {
					before := s.Seq()
					if _, err := core.ApplyBulk(s, bu, raise); err != nil {
						b.Fatal(err)
					}
					if err := r.ApplyAll(s.LogSince(before)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkE9ClusterMaintenance measures per-update maintenance of four
// overlapping views through one cluster (E9).
func BenchmarkE9ClusterMaintenance(b *testing.B) {
	s, sets, atoms := benchFixture(b, 200)
	cl := core.NewCluster("CL", s, s)
	for i, qs := range []string{
		"SELECT REL.r0.tuple X WHERE X.age >= 0",
		"SELECT REL.r0.tuple X WHERE X.age >= 30",
		"SELECT REL.r0.tuple X WHERE X.age >= 60",
		"SELECT REL.r0.tuple X WHERE X.age >= 90",
	} {
		if err := cl.AddView(oem.OID(fmt.Sprintf("CV%d", i)), query.MustParse(qs)); err != nil {
			b.Fatal(err)
		}
	}
	stream := workload.NewStream(s, workload.StreamConfig{Seed: 9, ValueRange: 100}, sets, atoms)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := s.Seq()
		if _, ok := stream.Next(); !ok {
			b.Fatal("stream exhausted")
		}
		for _, u := range s.LogSince(before) {
			if _, _, isDel := core.SplitDelegateOID(u.N1); isDel {
				continue
			}
			if err := cl.Apply(u); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE10DataGuideEval measures wildcard path evaluation on the
// DataGuide versus on the data (E10).
func BenchmarkE10DataGuideEval(b *testing.B) {
	s, _, _ := benchFixture(b, 500)
	g, err := dataguide.Build(s, "REL")
	if err != nil {
		b.Fatal(err)
	}
	e := pathexpr.MustParse("*.age")
	b.Run("guide", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(g.Eval(e)) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("data", func(b *testing.B) {
		a := core.NewCentralAccess(s)
		for i := 0; i < b.N; i++ {
			got, err := a.EvalCond("REL", pathexpr.MustParsePath("r0.tuple.age"), core.CondTest{Always: true})
			if err != nil || len(got) == 0 {
				b.Fatal("empty")
			}
		}
	})
}
