package gsv

import (
	"errors"
	"fmt"
	"testing"
)

func personDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.MustPutSet("ROOT", "root")
	for i := 1; i <= 3; i++ {
		p := OID(fmt.Sprintf("P%d", i))
		a := OID(fmt.Sprintf("A%d", i))
		db.MustPutSet(p, "person", a)
		db.MustPutAtom(a, "age", Int(int64(30+i*10)))
		if err := db.Insert("ROOT", p); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestReadTxnIsolation pins the core MVCC contract at the facade: a read
// transaction keeps answering from its version while the database moves on.
func TestReadTxnIsolation(t *testing.T) {
	db := personDB(t)

	txn, err := db.ReadTxn()
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Close()
	pinned := txn.Seq()

	if err := db.Modify("A1", Int(99)); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("ROOT", "P3"); err != nil {
		t.Fatal(err)
	}

	// The transaction still sees the pre-mutation world.
	o, err := txn.Get("A1")
	if err != nil || !o.Atom.Equal(Int(40)) {
		t.Fatalf("txn Get(A1) = %v, %v; want 40", o, err)
	}
	got, err := txn.Query("SELECT ROOT.person X WHERE X.age <= 60")
	if err != nil || len(got) != 3 {
		t.Fatalf("txn Query = %v, %v; want 3 members", got, err)
	}
	if txn.Seq() != pinned {
		t.Fatalf("txn Seq moved: %d -> %d", pinned, txn.Seq())
	}

	// Live reads see the new world.
	cur, err := db.Query("SELECT ROOT.person X WHERE X.age <= 60")
	if err != nil || len(cur) != 1 || cur[0] != "P2" {
		t.Fatalf("live Query = %v, %v; want [P2]", cur, err)
	}
}

// TestReadTxnViews reads a materialized view's membership at a pinned
// version while maintenance keeps changing it.
func TestReadTxnViews(t *testing.T) {
	db := personDB(t)
	if _, err := db.Define("define mview YOUNG as: SELECT ROOT.person X WHERE X.age <= 50"); err != nil {
		t.Fatal(err)
	}

	txn, err := db.ReadTxn()
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Close()

	if err := db.Modify("A1", Int(80)); err != nil { // P1 leaves YOUNG
		t.Fatal(err)
	}

	pinnedMembers, err := txn.ViewMembers("YOUNG")
	if err != nil {
		t.Fatal(err)
	}
	if len(pinnedMembers) != 2 || pinnedMembers[0] != "P1" || pinnedMembers[1] != "P2" {
		t.Fatalf("pinned view members = %v; want [P1 P2]", pinnedMembers)
	}
	liveMembers, err := db.ViewMembers("YOUNG")
	if err != nil {
		t.Fatal(err)
	}
	if len(liveMembers) != 1 || liveMembers[0] != "P2" {
		t.Fatalf("live view members = %v; want [P2]", liveMembers)
	}

	// Virtual views evaluate against the snapshot too.
	if _, err := db.Define("define view VYOUNG as: SELECT ROOT.person X WHERE X.age <= 50"); err != nil {
		t.Fatal(err)
	}
	txn2, err := db.ReadTxn()
	if err != nil {
		t.Fatal(err)
	}
	defer txn2.Close()
	v, err := txn2.ViewMembers("VYOUNG")
	if err != nil || len(v) != 1 || v[0] != "P2" {
		t.Fatalf("virtual view at txn2 = %v, %v; want [P2]", v, err)
	}
	if _, err := txn2.ViewMembers("NOPE"); !errors.Is(err, ErrViewNotFound) {
		t.Fatalf("unknown view error = %v", err)
	}
}

// TestReadTxnAt pins historical versions by sequence number and checks
// the error taxonomy at both ends of the retained range.
func TestReadTxnAt(t *testing.T) {
	db := personDB(t)
	preSeq := db.Store.Seq()
	if err := db.Modify("A2", Int(70)); err != nil {
		t.Fatal(err)
	}

	txn, err := db.ReadTxn(preSeq)
	if err != nil {
		t.Fatal(err)
	}
	o, err := txn.Get("A2")
	if err != nil || !o.Atom.Equal(Int(50)) {
		t.Fatalf("historical Get(A2) = %v, %v; want 50", o, err)
	}
	txn.Close()
	if _, err := txn.Get("A2"); !errors.Is(err, ErrSnapshotReclaimed) {
		t.Fatalf("read after Close = %v; want ErrSnapshotReclaimed", err)
	}

	if _, err := db.ReadTxn(db.Store.Seq() + 100); !errors.Is(err, ErrFutureSeq) {
		t.Fatalf("future pin error = %v; want ErrFutureSeq", err)
	}
}

// TestWithRetainVersions bounds the history ring through the facade
// option: pins below the horizon fail with ErrSnapshotReclaimed.
func TestWithRetainVersions(t *testing.T) {
	db := Open(WithRetainVersions(2))
	db.MustPutSet("ROOT", "root")
	for i := 0; i < 10; i++ {
		db.MustPutAtom(OID(fmt.Sprintf("A%d", i)), "age", Int(int64(i)))
	}
	if _, err := db.ReadTxn(1); !errors.Is(err, ErrSnapshotReclaimed) {
		t.Fatalf("below-horizon pin error = %v; want ErrSnapshotReclaimed", err)
	}
	// The newest retained versions stay pinnable.
	cur := db.Store.Seq()
	txn, err := db.ReadTxn(cur)
	if err != nil {
		t.Fatal(err)
	}
	txn.Close()
}
