// Accesscontrol reproduces the paper's query-filtering motivation: "a
// parent may wish to restrict access by his children to a particular
// subset of Web pages. For this he can define a virtual view that contains
// the allowed Web pages" — with user queries automatically expanded to
// ANS INT (or WITHIN) clauses for the union of authorized views
// (Section 3.1).
package main

import (
	"fmt"

	"gsv"
	"gsv/internal/core"
	"gsv/internal/query"
)

func main() {
	db := gsv.Open()

	// The family web: an encyclopedia, a games site and an auction site.
	pages := []struct {
		name, topic string
		rating      int64 // 0 = fine for kids ... 10 = adults only
	}{
		{"encyclopedia", "reference", 0},
		{"dinosaurs", "reference", 0},
		{"kartgame", "games", 2},
		{"auction", "shopping", 8},
		{"casino", "games", 10},
	}
	var all []gsv.OID
	for _, p := range pages {
		topicOID := gsv.OID("topic_" + p.name)
		ratingOID := gsv.OID("rating_" + p.name)
		db.MustPutAtom(topicOID, "topic", gsv.String(p.topic))
		db.MustPutAtom(ratingOID, "rating", gsv.Int(p.rating))
		db.MustPutSet(gsv.OID("page_"+p.name), "page", topicOID, ratingOID)
		all = append(all, gsv.OID("page_"+p.name))
	}
	db.MustPutSet("WEB", "site", all...)

	// The parent defines the allowed set as a view: pages rated <= 3.
	_, err := db.Define("define view KIDSAFE as: SELECT WEB.page X WHERE X.rating <= 3")
	must(err)
	members, err := db.ViewMembers("KIDSAFE")
	must(err)
	fmt.Printf("KIDSAFE view: %v\n", members)

	// The authorizer rewrites every query the kid submits.
	auth := core.NewAuthorizer(db.Store, core.AuthzAnsInt)
	auth.Grant("kid", "KIDSAFE")

	kidAsks := "SELECT WEB.page X"
	q := query.MustParse(kidAsks)
	expanded, err := auth.Expand("kid", q)
	must(err)
	fmt.Printf("\nkid submits:  %s\n", kidAsks)
	fmt.Printf("system runs:  %s\n", expanded)
	got, err := auth.Run("kid", q)
	must(err)
	fmt.Printf("kid sees:     %v\n", got)

	// A parent sees everything (no expansion).
	parentSees, err := db.Query(kidAsks)
	must(err)
	fmt.Printf("parent sees:  %v\n", parentSees)

	// "Since views can be changed, it is easy to dynamically modify the
	// privilege of a user": tightening the rating threshold needs only a
	// data change — the view re-evaluates on the next query.
	fmt.Println("\n-- the kart game gets re-rated to 6 --")
	must(db.Modify("rating_kartgame", gsv.Int(6)))
	_, err = db.ViewMembers("KIDSAFE") // refresh the virtual view object
	must(err)
	got, err = auth.Run("kid", query.MustParse(kidAsks))
	must(err)
	fmt.Printf("kid now sees: %v\n", got)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
