// Webcache reproduces the paper's introductory motivation: "a user is
// interested in all Web pages containing the word 'flower' and would like
// to copy them to his local disk for faster access. ... a user will be
// able to define a materialized view to select the objects that should be
// copied. When the original objects change, the materialized view needs to
// be updated."
//
// Pages are set objects whose children are a text atom and link objects
// (the URLs in the page); the materialized view FLOWERS is the local
// cache, maintained incrementally as pages are edited, created and
// unlinked.
package main

import (
	"fmt"

	"gsv"
)

func main() {
	db := gsv.Open()

	// A tiny web: the portal links to every page; pages link to each other.
	addPage(db, "home", "Welcome to the botanical society", "flora", "shop")
	addPage(db, "flora", "A catalogue of flower species", "shop")
	addPage(db, "shop", "Buy seeds and gardening tools")
	addPage(db, "news", "Club news and meeting notes")
	db.MustPutSet("WEB", "site", "page_home", "page_flora", "page_shop", "page_news")

	// The cache: every page whose text mentions "flower".
	_, err := db.Define("define mview FLOWERS as: SELECT WEB.page X WHERE X.text CONTAINS 'flower'")
	must(err)
	show(db, "initial crawl")

	// The shop rewrites its copy to chase the trend.
	fmt.Println("\n-- shop page now advertises flower seeds --")
	must(db.Modify("text_shop", gsv.String("Buy flower seeds and gardening tools")))
	show(db, "after edit")

	// A new page appears and is linked from the site.
	fmt.Println("\n-- a new 'guide' page is published --")
	addPage(db, "guide", "How to grow a flower from seed")
	must(db.Insert("WEB", "page_guide"))
	show(db, "after publish")

	// The flora page is retired.
	fmt.Println("\n-- the flora page is unlinked --")
	must(db.Delete("WEB", "page_flora"))
	show(db, "after unlink")

	// The cached copies are real objects: read one without touching WEB.
	d, err := db.Get("FLOWERS.page_guide")
	must(err)
	fmt.Printf("\ncached copy: %v\n", d)
	fmt.Println("each cached page is a delegate object <FLOWERS.page_*, ...> that")
	fmt.Println("the maintenance algorithm keeps in sync with the live site.")
}

// addPage creates a page object with a text atom; extra arguments name
// pages this one links to.
func addPage(db *gsv.DB, name, text string, linksTo ...string) {
	textOID := gsv.OID("text_" + name)
	db.MustPutAtom(textOID, "text", gsv.String(text))
	kids := []gsv.OID{textOID}
	for _, l := range linksTo {
		kids = append(kids, gsv.OID("page_"+l))
	}
	db.MustPutSet(gsv.OID("page_"+name), "page", kids...)
}

func show(db *gsv.DB, when string) {
	members, err := db.ViewMembers("FLOWERS")
	must(err)
	fmt.Printf("%s: cached pages = %v\n", when, members)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
