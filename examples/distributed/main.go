// Distributed runs the Figure 6 warehouse architecture over real TCP: the
// source is served on a loopback listener, the warehouse connects through
// the wire protocol, update reports stream across the socket, and the
// warehouse maintains its materialized view with genuine query-backs —
// every byte counted on the client's transport.
package main

import (
	"fmt"
	"net"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/warehouse"
	"gsv/internal/workload"
)

func main() {
	// ---- Source site -----------------------------------------------------
	base := store.NewDefault()
	workload.PersonDB(base)
	src := warehouse.NewSource("persons", base, "ROOT", warehouse.Level2, warehouse.NewTransport(0))
	src.DrainReports()
	server := warehouse.NewServer(src)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	go func() { _ = server.Serve(ln) }()
	defer server.Close()
	fmt.Printf("source 'persons' serving on %s (level 2 reports)\n", ln.Addr())

	// ---- Warehouse site --------------------------------------------------
	tr := warehouse.NewTransport(0)
	remote, err := warehouse.Dial("persons", ln.Addr().String(), tr)
	must(err)
	defer remote.Close()
	w := warehouse.New(remote)
	v, err := w.DefineView("YP",
		query.MustParse("SELECT ROOT.professor X WHERE X.age <= 45"),
		warehouse.ViewConfig{Screening: true})
	must(err)
	printMembers(v, "initial materialization over TCP")

	// ---- Updates happen at the source; reports stream to the warehouse ---
	apply := func(what string, mutate func() ([]*warehouse.UpdateReport, error)) {
		reports, err := mutate()
		must(err)
		must(server.Broadcast(reports))
		must(w.ProcessAll(remote.WaitReports(len(reports))))
		if what != "" {
			printMembers(v, what)
		}
	}

	apply("", func() ([]*warehouse.UpdateReport, error) {
		return src.Put(oem.NewAtom("A2", "age", oem.Int(40)))
	})
	apply("insert(P2, A2) — Example 5", func() ([]*warehouse.UpdateReport, error) {
		return src.Insert("P2", "A2")
	})
	apply("modify(A1, 50) — P1 ages out", func() ([]*warehouse.UpdateReport, error) {
		return src.Modify("A1", oem.Int(50))
	})
	apply("delete(ROOT, P2)", func() ([]*warehouse.UpdateReport, error) {
		return src.Delete("ROOT", "P2")
	})

	fmt.Println()
	fmt.Printf("client-side wire traffic: %s\n", tr)
	fmt.Println("(queries, objects and bytes are actual JSON payload sizes,")
	fmt.Println("not simulation estimates — compare with examples/warehouse)")
}

func printMembers(v *warehouse.WView, when string) {
	members, err := v.MV.Members()
	must(err)
	fmt.Printf("%-32s value(YP) = %v\n", when+":", members)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
