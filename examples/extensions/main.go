// Extensions walks through the paper's Section 6 open problems as
// implemented by this library: aggregate views, partially materialized
// views, DAG bases, and bulk updates with known intent.
package main

import (
	"fmt"

	"gsv"
	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/workload"
)

func main() {
	aggregates()
	partialViews()
	dagBases()
	bulkUpdates()
}

func aggregates() {
	fmt.Println("== Aggregate views (Section 6: 'the value of one delegate")
	fmt.Println("   object is obtained from more than one base objects') ==")
	db := gsv.Open()
	workload.PersonDB(db.Store)
	db.Sync()
	must(db.DefineAggregate("PAYROLL", gsv.AggSum,
		"SELECT ROOT.professor X WHERE X.age <= 45", "salary"))
	show := func(when string) {
		v, err := db.AggregateValue("PAYROLL")
		must(err)
		fmt.Printf("%-28s PAYROLL = %s\n", when, v)
	}
	show("initially:")
	db.MustPutAtom("A2", "age", gsv.Int(40))
	db.MustPutAtom("S2", "salary", gsv.Int(80000))
	must(db.Insert("P2", "S2"))
	must(db.Insert("P2", "A2"))
	show("P2 joins (80k):")
	must(db.Modify("S1", gsv.Int(110000)))
	show("P1's raise to 110k:")
	must(db.Modify("A1", gsv.Int(60)))
	show("P1 ages out:")
	fmt.Println()
}

func partialViews() {
	fmt.Println("== Partially materialized views (Section 6: 'materialize a few")
	fmt.Println("   levels of objects and leave the rest as pointers back') ==")
	db := gsv.Open()
	workload.PersonDB(db.Store)
	db.Sync()
	p, err := db.DefinePartial("PV", "SELECT ROOT.professor X WHERE X.age <= 45", 1)
	must(err)
	fmt.Printf("depth 1 mirrors %d objects (member P1 + its children)\n", p.MirroredCount())
	d, err := p.Delegate("P1")
	must(err)
	fmt.Printf("member delegate (swizzled):   %v\n", d)
	p3, err := p.Delegate("P3")
	must(err)
	fmt.Printf("frontier delegate (pointers): %v\n", p3)
	fmt.Println()
}

func dagBases() {
	fmt.Println("== DAG bases (Section 6: 'there may be more than one path")
	fmt.Println("   between two objects') ==")
	s := store.NewDefault()
	// Two departments share an employee.
	s.MustPut(oem.NewAtom("AG", "age", oem.Int(30)))
	s.MustPut(oem.NewSet("E", "emp", "AG"))
	s.MustPut(oem.NewSet("D1", "dept", "E"))
	s.MustPut(oem.NewSet("D2", "dept", "E"))
	s.MustPut(oem.NewSet("ORG", "org", "D1", "D2"))
	vstore := store.New(store.Options{ParentIndex: true, AllowDangling: true})
	mv, err := core.Materialize("DV", query.MustParse("SELECT ORG.dept.emp X WHERE X.age < 50"), s, vstore)
	must(err)
	m, err := core.NewDagMaintainer(mv, core.NewCentralAccess(s))
	must(err)
	report := func(when string) {
		ms, err := mv.Members()
		must(err)
		fmt.Printf("%-30s members = %v\n", when, ms)
	}
	report("E shared by D1 and D2:")
	apply := func(mut func() error) {
		before := s.Seq()
		must(mut())
		for _, u := range s.LogSince(before) {
			must(m.Apply(u))
		}
	}
	apply(func() error { return s.Delete("D1", "E") })
	report("after delete(D1,E):") // still a member via D2
	apply(func() error { return s.Delete("D2", "E") })
	report("after delete(D2,E):") // gone
	fmt.Println()
}

func bulkUpdates() {
	fmt.Println("== Update intent (Section 6: 'the salary of each person named")
	fmt.Println("   Mark was increased ... a view over Johns should be unaffected') ==")
	db := gsv.Open()
	db.MustPutSet("ROOT", "people", "M", "J")
	db.MustPutSet("M", "person", "MN", "MS")
	db.MustPutAtom("MN", "name", gsv.String("Mark"))
	db.MustPutAtom("MS", "salary", gsv.Int(50000))
	db.MustPutSet("J", "person", "JN", "JS")
	db.MustPutAtom("JN", "name", gsv.String("John"))
	db.MustPutAtom("JS", "salary", gsv.Int(60000))
	_, err := db.Define("define mview JOHNS as: SELECT ROOT.person X WHERE X.name = 'John'")
	must(err)
	_, err = db.Define("define mview RICH as: SELECT ROOT.person X WHERE X.salary > 55000")
	must(err)
	raise := gsv.BulkUpdate{
		Selector: core.SimpleDef{
			Entry:    "ROOT",
			SelPath:  pathexpr.MustParsePath("person"),
			CondPath: pathexpr.MustParsePath("name"),
			Cond:     core.CondTest{Op: query.OpEq, Literal: oem.String_("Mark")},
		},
		EffectPath: pathexpr.MustParsePath("salary"),
	}
	outcomes, err := db.ApplyBulk(raise, func(v gsv.Atom) gsv.Atom {
		return gsv.Int(v.I + 10000)
	}, true)
	must(err)
	for _, oc := range outcomes {
		fmt.Printf("view %-6s reason=%-18s individual updates processed: %d\n",
			oc.View, oc.Reason, oc.Applied)
	}
	rich, _ := db.ViewMembers("RICH")
	fmt.Printf("RICH after Mark's raise: %v\n", rich)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
