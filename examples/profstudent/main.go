// Profstudent reproduces the views-on-views construction of Section 3.1
// (expression 3.4): starting from a database where professors and students
// appear at arbitrary depth, two stacked views build a clean
// professor–student hierarchy —
//
//	define view PROF    as: SELECT ROOT.*.professor X
//	define view STUDENT as: SELECT PROF.?.student X
//
// "A student who is not a subobject of some professor would not be
// included in STUDENT." Queries then use the views as starting points or
// as ANS INT filters.
package main

import (
	"fmt"

	"gsv"
	"gsv/internal/workload"
)

func main() {
	db := gsv.Open()
	workload.PersonDB(db.Store)
	db.Sync()

	// An extra department layer shows that *.professor really reaches any
	// depth: a professor nested under a department object.
	db.MustPutAtom("N5", "name", gsv.String("Rivera"))
	db.MustPutSet("P5", "professor", "N5", "P6")
	db.MustPutSet("P6", "student", "N6")
	db.MustPutAtom("N6", "name", gsv.String("Kim"))
	db.MustPutSet("DEPT", "department", "P5")
	must(db.Insert("ROOT", "DEPT"))

	_, err := db.Define("define view PROF as: SELECT ROOT.*.professor X")
	must(err)
	prof, err := db.ViewMembers("PROF")
	must(err)
	fmt.Printf("PROF    = %v\n", prof) // P1, P2 and the nested P5

	_, err = db.Define("define view STUDENT as: SELECT PROF.?.student X")
	must(err)
	student, err := db.ViewMembers("STUDENT")
	must(err)
	fmt.Printf("STUDENT = %v\n", student) // P3 (under P1) and P6 (under P5)

	// P3 is also a direct child of ROOT — but STUDENT includes it because
	// of its professor derivation, not that one. A student with no
	// professor stays out:
	db.MustPutSet("P7", "student")
	must(db.Insert("ROOT", "P7"))
	student, err = db.ViewMembers("STUDENT")
	must(err)
	fmt.Printf("after adding a professor-less student P7: STUDENT = %v\n", student)

	// Views as query starting points (follow-on queries, Section 3.1):
	names, err := db.Query("SELECT STUDENT.?.name X")
	must(err)
	fmt.Printf("names of students of professors: %v\n", names)

	// Views as answer filters (expression 3.3): professors among the
	// direct children of ROOT.
	rootProfs, err := db.Query("SELECT ROOT.? X ANS INT PROF")
	must(err)
	fmt.Printf("top-level professors only: %v\n", rootProfs)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
