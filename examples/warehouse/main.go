// Warehouse reproduces the Section 5 architecture (Figure 6): base objects
// live at an autonomous source whose monitor reports updates at a chosen
// level of detail; the materialized view lives at the warehouse, which
// runs the same Algorithm 1 as the centralized case but answers the
// helper functions path/ancestor/eval from update reports, auxiliary
// caches, or query-backs to the source. The example replays one update
// sequence under all three reporting levels and under the Section 5.2
// caching modes, printing the communication cost of each configuration.
package main

import (
	"fmt"
	"time"

	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
	"gsv/internal/warehouse"
	"gsv/internal/workload"
)

func main() {
	fmt.Println("Scenario: view SEL = SELECT REL.r0.tuple X WHERE X.age > 30,")
	fmt.Println("maintained at a warehouse over a remote source (2ms RTT).")
	fmt.Println()
	fmt.Println("Per-update communication for 60 source updates:")
	fmt.Printf("%-34s %12s %12s %12s %14s\n",
		"configuration", "queries/upd", "bytes/upd", "virt time", "view correct?")

	configs := []struct {
		name  string
		level warehouse.ReportLevel
		vcfg  warehouse.ViewConfig
	}{
		{"level 1 (OIDs only)", warehouse.Level1, warehouse.ViewConfig{}},
		{"level 2 (+values, screening)", warehouse.Level2, warehouse.ViewConfig{Screening: true}},
		{"level 3 (+paths, screening)", warehouse.Level3, warehouse.ViewConfig{Screening: true}},
		{"level 2 + partial cache", warehouse.Level2, warehouse.ViewConfig{Screening: true, Cache: warehouse.CachePartial}},
		{"level 2 + full cache (Ex. 10)", warehouse.Level2, warehouse.ViewConfig{Screening: true, Cache: warehouse.CacheFull}},
	}
	for _, c := range configs {
		run(c.name, c.level, c.vcfg)
	}

	fmt.Println()
	fmt.Println("Shapes to notice (Section 5): richer reports and caches cut the")
	fmt.Println("query-backs; with the full auxiliary structure cached, maintenance")
	fmt.Println("is fully local — 'the warehouse can maintain the view locally, for")
	fmt.Println("any base update' (Example 10).")
}

func run(name string, level warehouse.ReportLevel, vcfg warehouse.ViewConfig) {
	// Source side: a relation-like GSDB (Figure 5) plus a monitor.
	s := store.NewDefault()
	db := workload.RelationLike(s, workload.RelationConfig{
		Relations: 2, TuplesPerRelation: 40, FieldsPerTuple: 3, Seed: 11,
	})
	tr := warehouse.NewTransport(2 * time.Millisecond)
	src := warehouse.NewSource("rel", s, "REL", level, tr)
	src.DrainReports()

	// Warehouse side: define the view; initial content is fetched once.
	w := warehouse.New(src)
	v, err := w.DefineView("SEL", query.MustParse("SELECT REL.r0.tuple X WHERE X.age > 30"), vcfg)
	must(err)

	// Drive a deterministic update stream at the source, shipping each
	// report to the warehouse as it happens.
	var sets, atoms []oem.OID
	for _, r := range db.Relations {
		sets = append(sets, r.OID)
		sets = append(sets, r.Tuples...)
		for _, tu := range r.Tuples {
			kids, _ := s.Children(tu)
			atoms = append(atoms, kids...)
		}
	}
	stream := workload.NewStream(s, workload.StreamConfig{Seed: 5, ValueRange: 60}, sets, atoms)
	start := tr.Snapshot()
	updates := 0
	for i := 0; i < 60; i++ {
		if _, ok := stream.Next(); !ok {
			break
		}
		reports := src.DrainReports()
		must(w.ProcessAll(reports))
		updates += len(reports)
	}
	used := tr.Sub(start)

	// Verify against a fresh evaluation at the source.
	fresh, err := query.NewEvaluator(s).Eval(v.MV.Query)
	must(err)
	got, err := v.MV.Members()
	must(err)
	correct := oem.SameMembers(got, fresh)

	fmt.Printf("%-34s %12.2f %12.1f %12s %14v\n",
		name,
		float64(used.QueryBacks)/float64(updates),
		float64(used.Bytes)/float64(updates),
		used.VirtualTime.Round(time.Millisecond),
		correct)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
