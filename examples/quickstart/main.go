// Quickstart walks through the paper's running example: the PERSON
// database of Figure 2, the YP view of Example 5 (professors aged <= 45),
// and the incremental maintenance steps of Example 6 — all through the
// public gsv API.
package main

import (
	"fmt"

	"gsv"
)

func main() {
	db := gsv.Open()

	// Build the Figure 2 database by hand (the workload package has a
	// one-call builder; spelling it out shows the API).
	db.MustPutSet("ROOT", "person", "P1", "P2", "P3", "P4")
	db.MustPutSet("P1", "professor", "N1", "A1", "S1", "P3")
	db.MustPutAtom("N1", "name", gsv.String("John"))
	db.MustPutAtom("A1", "age", gsv.Int(45))
	db.MustPutAtom("S1", "salary", gsv.Int(100000))
	db.MustPutSet("P3", "student", "N3", "A3", "M3")
	db.MustPutAtom("N3", "name", gsv.String("John"))
	db.MustPutAtom("A3", "age", gsv.Int(20))
	db.MustPutAtom("M3", "major", gsv.String("education"))
	db.MustPutSet("P2", "professor", "N2", "ADD2")
	db.MustPutAtom("N2", "name", gsv.String("Sally"))
	db.MustPutAtom("ADD2", "address", gsv.String("Palo Alto"))
	db.MustPutSet("P4", "secretary", "N4", "A4")
	db.MustPutAtom("N4", "name", gsv.String("Tom"))
	db.MustPutAtom("A4", "age", gsv.Int(40))

	fmt.Println("== Querying (Section 2) ==")
	ans, err := db.Query("SELECT ROOT.professor X WHERE X.age > 40")
	must(err)
	fmt.Printf("professors older than 40: %v\n", ans) // [P1]

	ans, err = db.Query("SELECT ROOT.* X WHERE X.name = 'John'")
	must(err)
	fmt.Printf("persons named John (any depth): %v\n", ans) // [P1 P3]

	fmt.Println("\n== Example 5: materialized view YP ==")
	_, err = db.Define("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45")
	must(err)
	printView(db, "YP") // [P1] — Figure 4, left

	fmt.Println("\n== Example 5/6: insert(P2, A2) with <A2, age, 40> ==")
	db.MustPutAtom("A2", "age", gsv.Int(40))
	must(db.Insert("P2", "A2"))
	printView(db, "YP") // [P1 P2] — Figure 4, right
	d, err := db.Get("YP.P2")
	must(err)
	fmt.Printf("new delegate: %v\n", d)

	fmt.Println("\n== Example 6: delete(ROOT, P1) ==")
	must(db.Delete("ROOT", "P1"))
	printView(db, "YP") // [P2]

	fmt.Println("\n== modify(A2, 40, 60): P2 ages out ==")
	must(db.Modify("A2", gsv.Int(60)))
	printView(db, "YP") // []

	fmt.Println("\nEvery change above was applied to the view incrementally")
	fmt.Println("by Algorithm 1 — no view recomputation happened.")
}

func printView(db *gsv.DB, name string) {
	members, err := db.ViewMembers(name)
	must(err)
	fmt.Printf("value(%s) = %v\n", name, members)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
