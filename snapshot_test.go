package gsv_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"gsv"
	"gsv/internal/oem"
	"gsv/internal/workload"
)

func TestSaveDBRoundTripsViews(t *testing.T) {
	db := buildPerson(t)
	if _, err := db.Define("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Define("define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.SaveDB(&buf); err != nil {
		t.Fatal(err)
	}
	// The object section must not contain view machinery.
	if strings.Contains(buf.String(), "YP.P1") {
		t.Fatal("snapshot contains delegates")
	}

	restored, err := gsv.LoadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	members, err := restored.ViewMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(members, []gsv.OID{"P1"}) {
		t.Fatalf("restored YP = %v", members)
	}
	vj, err := restored.ViewMembers("VJ")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(vj, []gsv.OID{"P1", "P3"}) {
		t.Fatalf("restored VJ = %v", vj)
	}
	// The restored view is live: maintenance continues.
	restored.MustPutAtom("A2", "age", gsv.Int(40))
	if err := restored.Insert("P2", "A2"); err != nil {
		t.Fatal(err)
	}
	members, _ = restored.ViewMembers("YP")
	if !oem.SameMembers(members, []gsv.OID{"P1", "P2"}) {
		t.Fatalf("restored YP not live: %v", members)
	}
}

func TestSaveDBPreservesStrategy(t *testing.T) {
	db := buildPerson(t)
	if _, err := db.Define("define mview W as: SELECT ROOT.* X WHERE X.name = 'John'"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.SaveDB(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := gsv.LoadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := restored.Views.Get("W")
	if !ok {
		t.Fatal("view W lost")
	}
	if v.Strategy.String() != "general" {
		t.Fatalf("strategy = %v, want general", v.Strategy)
	}
}

func TestSaveDBFileRoundTrip(t *testing.T) {
	db := buildPerson(t)
	if _, err := db.Define("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.gsv")
	if err := db.SaveDBFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := gsv.LoadDBFile(path)
	if err != nil {
		t.Fatal(err)
	}
	members, _ := restored.ViewMembers("YP")
	if !oem.SameMembers(members, []gsv.OID{"P1"}) {
		t.Fatalf("restored = %v", members)
	}
	if _, err := gsv.LoadDBFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestLoadDBRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"wrong header\n",
		"gsv-db-v1\nnot json\n",
		"gsv-db-v1\n{\"oid\":\"\",\"label\":\"x\",\"kind\":1,\"type\":\"set\"}\n",
		"gsv-db-v1\n----views----\nnot json\n",
		"gsv-db-v1\n----views----\n{\"name\":\"V\",\"materialized\":true,\"query\":\"garbage\"}\n",
	}
	for _, c := range cases {
		if _, err := gsv.LoadDB(strings.NewReader(c)); err == nil {
			t.Errorf("LoadDB(%q) succeeded", c)
		}
	}
}

func TestSaveDBOmitsWorkloadDatabaseObjectSafely(t *testing.T) {
	// Database grouping objects are ordinary data and must survive.
	db := gsv.Open()
	workload.PersonDB(db.Store)
	db.Sync()
	var buf bytes.Buffer
	if err := db.SaveDB(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := gsv.LoadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Store.Has("PERSON") {
		t.Fatal("database object lost")
	}
	if restored.Store.Len() != db.Store.Len() {
		t.Fatalf("restored %d objects, want %d", restored.Store.Len(), db.Store.Len())
	}
}
