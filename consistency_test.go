package gsv_test

// The capstone cross-strategy consistency test: every maintenance
// implementation in the repository — Algorithm 1, the generalized
// maintainer, the DAG variant, full recomputation, the relational
// counting baseline, a view cluster member, a partial view, a count
// aggregate, and the warehouse at every (report level × cache) setting
// including over real TCP — observes the same update stream, and all of
// them must agree on the view membership at every checkpoint.

import (
	"fmt"
	"net"
	"testing"

	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/relstore"
	"gsv/internal/store"
	"gsv/internal/warehouse"
	"gsv/internal/workload"
)

const consistencyView = "SELECT REL.r0.tuple X WHERE X.age > 40"

// strategy is one maintained implementation under test.
type strategy struct {
	name    string
	apply   func(u store.Update) error
	members func() ([]oem.OID, error)
}

func TestAllStrategiesAgree(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base := store.NewDefault()
			db := workload.RelationLike(base, workload.RelationConfig{
				Relations: 2, TuplesPerRelation: 5, FieldsPerTuple: 2, Seed: seed,
			})
			def, ok := core.Simplify(query.MustParse(consistencyView))
			if !ok {
				t.Fatal("not simple")
			}

			var strategies []strategy
			addMV := func(name string, mk func(mv *core.MaterializedView) (core.Maintainer, error)) {
				vstore := store.New(store.Options{ParentIndex: true, LabelIndex: true, AllowDangling: true})
				mv, err := core.Materialize(oem.OID(name), query.MustParse(consistencyView), base, vstore)
				if err != nil {
					t.Fatal(err)
				}
				m, err := mk(mv)
				if err != nil {
					t.Fatal(err)
				}
				strategies = append(strategies, strategy{
					name:    name,
					apply:   m.Apply,
					members: mv.Members,
				})
			}
			addMV("simple", func(mv *core.MaterializedView) (core.Maintainer, error) {
				return core.NewSimpleMaintainer(mv, core.NewCentralAccess(base))
			})
			addMV("general", func(mv *core.MaterializedView) (core.Maintainer, error) {
				mv.Base = base
				return core.NewGeneralMaintainer(mv)
			})
			addMV("dag", func(mv *core.MaterializedView) (core.Maintainer, error) {
				return core.NewDagMaintainer(mv, core.NewCentralAccess(base))
			})
			addMV("recompute", func(mv *core.MaterializedView) (core.Maintainer, error) {
				mv.Base = base
				return recomputeAdapter{mv}, nil
			})

			// Relational counting baseline.
			rel, err := relstore.NewGSDBView(base, def)
			if err != nil {
				t.Fatal(err)
			}
			strategies = append(strategies, strategy{
				name:    "relational",
				apply:   func(u store.Update) error { rel.Apply(u); return nil },
				members: func() ([]oem.OID, error) { return rel.MemberOIDs(), nil },
			})

			// Cluster member (shares delegates with a second view).
			clStore := store.New(store.Options{ParentIndex: true, LabelIndex: true, AllowDangling: true})
			cl := core.NewClusterWith("CL", clStore, core.ClusterBackend{
				Evaluate: func(q *query.Query) ([]oem.OID, error) {
					return query.NewEvaluator(base).Eval(q)
				},
				Fetch:  base.Get,
				Access: core.NewCentralAccess(base),
			})
			if err := cl.AddView("CV", query.MustParse(consistencyView)); err != nil {
				t.Fatal(err)
			}
			if err := cl.AddView("CV2", query.MustParse("SELECT REL.r0.tuple X WHERE X.age > 10")); err != nil {
				t.Fatal(err)
			}
			strategies = append(strategies, strategy{
				name:    "cluster",
				apply:   cl.Apply,
				members: func() ([]oem.OID, error) { return cl.Members("CV") },
			})

			// Partial view (depth 1): membership must match.
			pvStore := store.New(store.Options{ParentIndex: true, LabelIndex: true, AllowDangling: true})
			pv, err := core.NewPartialView("PV", def, 1, base, pvStore)
			if err != nil {
				t.Fatal(err)
			}
			strategies = append(strategies, strategy{
				name:    "partial",
				apply:   pv.Apply,
				members: pv.Members,
			})

			// Warehouse configurations over the simulated transport.
			var warehouses []*warehouse.Warehouse
			var sources []*warehouse.Source
			for _, level := range []warehouse.ReportLevel{warehouse.Level1, warehouse.Level2, warehouse.Level3} {
				for _, mode := range []warehouse.CacheMode{warehouse.CacheNone, warehouse.CacheFull} {
					name := fmt.Sprintf("wh-%s-%s", level, mode)
					src := warehouse.NewSource(name, base, "REL", level, warehouse.NewTransport(0))
					src.DrainReports()
					w := warehouse.New(src)
					v, err := w.DefineView("WV", query.MustParse(consistencyView),
						warehouse.ViewConfig{Screening: level >= warehouse.Level2, Cache: mode})
					if err != nil {
						t.Fatal(err)
					}
					warehouses = append(warehouses, w)
					sources = append(sources, src)
					strategies = append(strategies, strategy{
						name:    name,
						apply:   nil, // fed via reports below
						members: v.MV.Members,
					})
				}
			}

			// Warehouse over real TCP.
			tcpSrc := warehouse.NewSource("tcp", base, "REL", warehouse.Level2, warehouse.NewTransport(0))
			tcpSrc.DrainReports()
			server := warehouse.NewServer(tcpSrc)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go func() { _ = server.Serve(ln) }()
			defer server.Close()
			remote, err := warehouse.Dial("tcp", ln.Addr().String(), warehouse.NewTransport(0))
			if err != nil {
				t.Fatal(err)
			}
			defer remote.Close()
			tcpW := warehouse.New(remote)
			tcpV, err := tcpW.DefineView("WV", query.MustParse(consistencyView),
				warehouse.ViewConfig{Screening: true})
			if err != nil {
				t.Fatal(err)
			}
			strategies = append(strategies, strategy{
				name:    "wh-tcp",
				members: tcpV.MV.Members,
			})

			// Aggregate count: must equal the membership cardinality.
			aggStore := store.New(store.Options{ParentIndex: true, AllowDangling: true})
			agg, err := core.NewAggregateView("AGG",
				core.AggDef{Base: def, Op: core.AggCount}, base, aggStore)
			if err != nil {
				t.Fatal(err)
			}

			var sets, atoms []oem.OID
			for _, r := range db.Relations {
				sets = append(sets, r.OID)
				sets = append(sets, r.Tuples...)
				for _, tu := range r.Tuples {
					kids, _ := base.Children(tu)
					atoms = append(atoms, kids...)
				}
			}
			stream := workload.NewStream(base, workload.StreamConfig{
				Seed: seed + 13, Mix: workload.Mix{Insert: 3, Delete: 2, Modify: 5}, ValueRange: 90,
			}, sets, atoms)

			for step := 0; step < 60; step++ {
				before := base.Seq()
				if _, ok := stream.Next(); !ok {
					break
				}
				updates := base.LogSince(before)
				for _, u := range updates {
					for _, st := range strategies {
						if st.apply == nil {
							continue
						}
						if err := st.apply(u); err != nil {
							t.Fatalf("step %d %s %s: %v", step, st.name, u, err)
						}
					}
					if err := agg.Apply(u); err != nil {
						t.Fatalf("step %d aggregate: %v", step, err)
					}
				}
				for i, w := range warehouses {
					if err := w.ProcessAll(sources[i].DrainReports()); err != nil {
						t.Fatalf("step %d %v: %v", step, sources[i].ID(), err)
					}
				}
				raw := tcpSrc.DrainReports()
				if err := server.Broadcast(raw); err != nil {
					t.Fatal(err)
				}
				if err := tcpW.ProcessAll(remote.WaitReports(len(raw))); err != nil {
					t.Fatalf("step %d tcp warehouse: %v", step, err)
				}

				if step%6 != 0 && step != 59 {
					continue
				}
				want, err := query.NewEvaluator(base).Eval(query.MustParse(consistencyView))
				if err != nil {
					t.Fatal(err)
				}
				for _, st := range strategies {
					got, err := st.members()
					if err != nil {
						t.Fatalf("step %d %s members: %v", step, st.name, err)
					}
					if !oem.SameMembers(got, want) {
						t.Fatalf("step %d: strategy %s diverged:\n got %v\nwant %v",
							step, st.name, got, want)
					}
				}
				count, err := agg.Value()
				if err != nil {
					t.Fatal(err)
				}
				if !count.Equal(oem.Int(int64(len(want)))) {
					t.Fatalf("step %d: aggregate count %v != |view| %d", step, count, len(want))
				}
			}
		})
	}
}

type recomputeAdapter struct{ mv *core.MaterializedView }

func (r recomputeAdapter) Apply(store.Update) error { return r.mv.Recompute() }
