module gsv

go 1.22
