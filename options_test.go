package gsv_test

import (
	"errors"
	"testing"

	"gsv"
	"gsv/internal/store"
)

func TestOpenDefaults(t *testing.T) {
	db := gsv.Open()
	if db.Store == nil || db.Views == nil {
		t.Fatal("Open() returned an unwired DB")
	}
	if got := db.Views.Parallelism(); got != 1 {
		t.Fatalf("default parallelism = %d, want 1 (serial)", got)
	}
	if db.Views.DefaultStrategy() != gsv.StrategyAuto {
		t.Fatalf("default strategy = %v", db.Views.DefaultStrategy())
	}
}

func TestOpenWithOptions(t *testing.T) {
	s := store.NewDefault()
	var batches int
	db := gsv.Open(
		gsv.WithStore(s),
		gsv.WithStrategy(gsv.StrategyRecompute),
		gsv.WithParallelism(4),
		gsv.WithScreening(false),
		gsv.WithBatchObserver(func(view gsv.OID, last gsv.Update, n int, d gsv.Deltas) {
			batches++
		}),
	)
	if db.Store != s {
		t.Fatal("WithStore ignored")
	}
	if got := db.Views.Parallelism(); got != 4 {
		t.Fatalf("parallelism = %d", got)
	}
	if db.Views.DefaultStrategy() != gsv.StrategyRecompute {
		t.Fatalf("strategy = %v", db.Views.DefaultStrategy())
	}

	db.MustPutAtom("A", "age", gsv.Int(40))
	db.MustPutSet("P", "person", "A")
	db.MustPutSet("ROOT", "root", "P")
	if _, err := db.Define("define mview M as: SELECT ROOT.person X WHERE X.age > 30"); err != nil {
		t.Fatal(err)
	}
	v, _ := db.Views.Get("M")
	if v.Strategy != gsv.StrategyRecompute {
		t.Fatalf("view strategy = %v, want the DB default", v.Strategy)
	}
	if err := db.Modify("A", gsv.Int(20)); err != nil {
		t.Fatal(err)
	}
	if batches == 0 {
		t.Fatal("batch observer never fired")
	}
	ms, err := db.ViewMembers("M")
	if err != nil || len(ms) != 0 {
		t.Fatalf("members = %v, %v", ms, err)
	}
}

func TestOpenWithShim(t *testing.T) {
	s := store.NewDefault()
	db := gsv.OpenWith(s)
	if db.Store != s {
		t.Fatal("OpenWith did not adopt the store")
	}
}

func TestSentinelErrors(t *testing.T) {
	db := gsv.Open()
	db.MustPutSet("ROOT", "root")

	if _, err := db.ViewMembers("missing"); !errors.Is(err, gsv.ErrViewNotFound) {
		t.Fatalf("ViewMembers err = %v, want ErrViewNotFound", err)
	}
	if _, err := db.Define("define view V as: SELECT ROOT.x X"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Define("define view V as: SELECT ROOT.y X"); !errors.Is(err, gsv.ErrViewExists) {
		t.Fatalf("redefine err = %v, want ErrViewExists", err)
	}
}

// TestParallelOpenEquivalence drives the same mutations through a serial
// DB and a parallel screened DB and expects identical view memberships.
func TestParallelOpenEquivalence(t *testing.T) {
	build := func(opts ...gsv.Option) *gsv.DB {
		db := gsv.Open(opts...)
		db.MustPutSet("ROOT", "root")
		for i, age := range []int64{10, 35, 60, 80} {
			a := gsv.OID(rune('A' + i))
			db.MustPutAtom(a, "age", gsv.Int(age))
			db.MustPutSet("P"+a, "person", a)
			if err := db.Insert("ROOT", "P"+a); err != nil {
				t.Fatal(err)
			}
		}
		for _, stmt := range []string{
			"define mview OLD as: SELECT ROOT.person X WHERE X.age > 30",
			"define mview VERYOLD as: SELECT ROOT.person X WHERE X.age > 70",
		} {
			if _, err := db.Define(stmt); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Modify("A", gsv.Int(90)); err != nil {
			t.Fatal(err)
		}
		if err := db.Modify("D", gsv.Int(5)); err != nil {
			t.Fatal(err)
		}
		return db
	}
	serial := build(gsv.WithParallelism(1), gsv.WithScreening(false))
	parallel := build(gsv.WithParallelism(8), gsv.WithScreening(true))
	for _, name := range []string{"OLD", "VERYOLD"} {
		a, err := serial.ViewMembers(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.ViewMembers(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: serial %v != parallel %v", name, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: serial %v != parallel %v", name, a, b)
			}
		}
	}
}
