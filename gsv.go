// Package gsv is a Go implementation of graph structured views and their
// incremental maintenance, reproducing Zhuge and Garcia-Molina's ICDE 1998
// paper of the same name.
//
// A graph structured database (GSDB) is a collection of OEM objects
// <OID, label, type, value>: atomic objects carry a single value, set
// objects carry a set of OIDs of other objects, and the set values give the
// database its graph structure. Views over a GSDB are defined by queries
// of the form
//
//	SELECT OBJ.sel_path X WHERE cond(X.cond_path) [WITHIN DB] [ANS INT DB]
//
// and are themselves ordinary GSDB objects, so views can be queried and
// stacked. Materialized views store delegate objects with semantic OIDs
// (MV.P1) and are maintained incrementally: Algorithm 1 for simple views, a
// generalized maintainer for wildcard/multi-condition views, and a
// warehouse protocol (Section 5 of the paper) when the base data lives at
// remote sources that only export update reports.
//
// This package is the public facade: it bundles a store with a view
// registry under a small API. The building blocks live in internal/
// packages (oem, store, pathexpr, query, core, relstore, warehouse,
// workload) and are exercised by the examples and cmd tools.
//
// # Quick start
//
//	db := gsv.Open()
//	db.MustPutSet("ROOT", "person", "P1")
//	db.MustPutAtom("N1", "name", gsv.String("John"))
//	...
//	view, _ := db.Define("define mview MVJ as: SELECT ROOT.* X WHERE X.name = 'John'")
//	members, _ := db.ViewMembers("MVJ")   // stays fresh as the base changes
package gsv

import (
	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/query"
	"gsv/internal/store"
)

// Re-exported core types. The facade deliberately exposes the internal
// packages' types directly (aliases, not wrappers) so code can grow into
// the full API without translation layers.
type (
	// OID is a universally unique object identifier.
	OID = oem.OID
	// Object is one OEM object.
	Object = oem.Object
	// Atom is the value of an atomic object.
	Atom = oem.Atom
	// Update is one logged base update.
	Update = store.Update
	// Store is a GSDB storage engine.
	Store = store.Store
	// Query is a parsed query.
	Query = query.Query
	// View is a registered (virtual or materialized) view.
	View = core.View
	// MaterializedView is a stored view with delegate objects.
	MaterializedView = core.MaterializedView
	// Registry manages views over one base store.
	Registry = core.Registry
	// Strategy selects how a materialized view is maintained.
	Strategy = core.Strategy
	// Deltas holds the membership changes one maintenance step applied.
	Deltas = core.Deltas
	// DeltaObserver is notified per applied base update that changed a view.
	DeltaObserver = core.DeltaObserver
	// BatchObserver is notified once per view per batch with coalesced deltas.
	BatchObserver = core.BatchObserver
)

// Maintenance strategies, re-exported for WithStrategy.
const (
	// StrategyAuto picks Algorithm 1 for simple views, general otherwise.
	StrategyAuto = core.StrategyAuto
	// StrategySimple forces Algorithm 1.
	StrategySimple = core.StrategySimple
	// StrategyGeneral forces the generalized maintainer.
	StrategyGeneral = core.StrategyGeneral
	// StrategyRecompute rebuilds the view from scratch on every update.
	StrategyRecompute = core.StrategyRecompute
	// StrategyDag forces the Section 6 DAG variant of Algorithm 1.
	StrategyDag = core.StrategyDag
)

// Sentinel errors, surfaced through errors.Is from DB, Registry and view
// operations.
var (
	// ErrViewNotFound reports an operation on an unregistered view name.
	ErrViewNotFound = core.ErrViewNotFound
	// ErrViewExists reports a Define for a name already taken.
	ErrViewExists = core.ErrViewExists
	// ErrNotSimple reports a definition outside the paper's simple-view class.
	ErrNotSimple = core.ErrNotSimple
)

// Atom constructors.
var (
	// Int returns an integer atom.
	Int = oem.Int
	// Float returns a real-valued atom.
	Float = oem.Float
	// String returns a string atom.
	String = oem.String_
	// Bool returns a boolean atom.
	Bool = oem.Bool
)

// NewAtomObject returns an atomic object.
func NewAtomObject(oid OID, label string, a Atom) *Object { return oem.NewAtom(oid, label, a) }

// NewSetObject returns a set object.
func NewSetObject(oid OID, label string, members ...OID) *Object {
	return oem.NewSet(oid, label, members...)
}

// ParseQuery parses a SELECT query.
func ParseQuery(s string) (*Query, error) { return query.Parse(s) }

// DB bundles a base store with a view registry and keeps every registered
// materialized view maintained incrementally as the base changes.
//
// A DB represents one session and is not safe for concurrent use: the
// maintenance pipeline between a mutation and its Sync is single-threaded
// (the underlying Store is independently thread-safe for direct use).
type DB struct {
	// Store is the underlying GSDB store; mutate it through the DB methods
	// (or call Sync after direct store mutations) so views stay current.
	Store *Store
	// Views is the registry of defined views.
	Views *Registry

	maintErrs []error

	// dur is the durability state when the DB was opened with
	// WithDurability; nil otherwise. See durability.go.
	dur *durability

	// Extension machinery (see extensions.go): aggregates and partial
	// views keep their objects in side stores and are fed base updates by
	// Sync.
	side     *store.Store
	aggs     map[string]*core.AggregateView
	partials map[string]*core.PartialView
	extras   []extra
	extraSeq uint64
}

func open(s *Store) *DB {
	db := &DB{
		Store:    s,
		Views:    core.NewRegistry(s),
		aggs:     map[string]*core.AggregateView{},
		partials: map[string]*core.PartialView{},
		extraSeq: s.Seq(),
	}
	db.Views.Watch(func(err error) { db.maintErrs = append(db.maintErrs, err) })
	return db
}

// PutAtom creates an atomic object.
func (db *DB) PutAtom(oid OID, label string, a Atom) error {
	return db.put(oem.NewAtom(oid, label, a))
}

// MustPutAtom is PutAtom for construction code.
func (db *DB) MustPutAtom(oid OID, label string, a Atom) {
	if err := db.PutAtom(oid, label, a); err != nil {
		panic(err)
	}
}

// PutSet creates a set object.
func (db *DB) PutSet(oid OID, label string, members ...OID) error {
	return db.put(oem.NewSet(oid, label, members...))
}

// MustPutSet is PutSet for construction code.
func (db *DB) MustPutSet(oid OID, label string, members ...OID) {
	if err := db.PutSet(oid, label, members...); err != nil {
		panic(err)
	}
}

func (db *DB) put(o *Object) error {
	err := db.Store.Put(o)
	db.Sync()
	return err
}

// Insert applies insert(N1,N2) and maintains all views.
func (db *DB) Insert(n1, n2 OID) error {
	err := db.Store.Insert(n1, n2)
	db.Sync()
	return err
}

// Delete applies delete(N1,N2) and maintains all views.
func (db *DB) Delete(n1, n2 OID) error {
	err := db.Store.Delete(n1, n2)
	db.Sync()
	return err
}

// Modify applies modify(N,newv) and maintains all views.
func (db *DB) Modify(n OID, v Atom) error {
	err := db.Store.Modify(n, v)
	db.Sync()
	return err
}

// NewDatabase creates a database object grouping the given members.
func (db *DB) NewDatabase(oid OID, members ...OID) error {
	err := db.Store.NewDatabase(oid, "database", members...)
	db.Sync()
	return err
}

// Sync drains pending maintenance work — the write-ahead log first (for
// durable databases), then registry views, then aggregates and partial
// views. DB mutation methods call it automatically; call it manually
// after mutating Store directly. It returns the maintenance (and
// durability) errors accumulated since the previous Sync.
func (db *DB) Sync() []error {
	durErrs := db.syncDurability()
	db.Views.Drain()
	db.syncExtras()
	durErrs = append(durErrs, db.maybeCheckpoint()...)
	errs := append(durErrs, db.maintErrs...)
	db.maintErrs = nil
	return errs
}

// Query evaluates a query string and returns the sorted member OIDs.
// The evaluation runs against a snapshot pinned for the call, so a
// traversal never observes a concurrent mutation mid-query; use ReadTxn
// to hold several reads at one version.
func (db *DB) Query(q string) ([]OID, error) {
	parsed, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	snap := db.Store.Snapshot()
	defer snap.Close()
	return query.NewEvaluator(snap).Eval(parsed)
}

// Define parses and registers a view definition statement
// (define view V as: ... / define mview MV as: ...). On a durable DB a
// successful Define checkpoints immediately: view definitions live in
// checkpoints, not the WAL, so a definition is only crash-safe once a
// checkpoint carries it.
func (db *DB) Define(stmt string) (*View, error) {
	v, err := db.Views.Define(stmt)
	db.Sync()
	if err == nil && db.dur != nil {
		if cerr := db.Checkpoint(); cerr != nil {
			return v, cerr
		}
	}
	return v, err
}

// ViewMembers returns the current members of a view (base OIDs for
// materialized views, fresh evaluation for virtual ones).
func (db *DB) ViewMembers(name string) ([]OID, error) {
	db.Sync()
	return db.Views.Evaluate(name)
}

// Get returns a copy of an object.
func (db *DB) Get(oid OID) (*Object, error) { return db.Store.Get(oid) }
