package gsv_test

import (
	"fmt"
	"testing"

	"gsv"
	"gsv/internal/oem"
	"gsv/internal/workload"
)

// buildPerson loads the paper's PERSON example through the facade.
func buildPerson(t testing.TB) *gsv.DB {
	t.Helper()
	db := gsv.Open()
	workload.PersonDB(db.Store)
	if errs := db.Sync(); len(errs) != 0 {
		t.Fatalf("sync errors: %v", errs)
	}
	return db
}

func TestFacadeQuickstartFlow(t *testing.T) {
	db := gsv.Open()
	db.MustPutSet("ROOT", "person")
	db.MustPutSet("P1", "professor")
	db.MustPutAtom("N1", "name", gsv.String("John"))
	db.MustPutAtom("A1", "age", gsv.Int(45))
	if err := db.Insert("ROOT", "P1"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("P1", "N1"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("P1", "A1"); err != nil {
		t.Fatal(err)
	}
	got, err := db.Query("SELECT ROOT.professor X WHERE X.age > 40")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, []gsv.OID{"P1"}) {
		t.Fatalf("query = %v", got)
	}
}

func TestFacadeViewMaintainedThroughMutations(t *testing.T) {
	db := buildPerson(t)
	if _, err := db.Define("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45"); err != nil {
		t.Fatal(err)
	}
	members, err := db.ViewMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(members, []gsv.OID{"P1"}) {
		t.Fatalf("YP = %v", members)
	}
	// The Example 5 update, through the facade: views stay fresh without
	// explicit maintenance calls.
	db.MustPutAtom("A2", "age", gsv.Int(40))
	if err := db.Insert("P2", "A2"); err != nil {
		t.Fatal(err)
	}
	members, err = db.ViewMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(members, []gsv.OID{"P1", "P2"}) {
		t.Fatalf("YP after insert = %v", members)
	}
	if err := db.Modify("A1", gsv.Int(50)); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("P2", "A2"); err != nil {
		t.Fatal(err)
	}
	members, _ = db.ViewMembers("YP")
	if len(members) != 0 {
		t.Fatalf("YP after exits = %v", members)
	}
}

func TestFacadeVirtualView(t *testing.T) {
	db := buildPerson(t)
	if err := db.NewDatabase("D", "ROOT", "P1", "P2", "P3", "P4"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Define("define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON"); err != nil {
		t.Fatal(err)
	}
	members, err := db.ViewMembers("VJ")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(members, []gsv.OID{"P1", "P3"}) {
		t.Fatalf("VJ = %v", members)
	}
	// Follow-on query using the view as an entry point.
	got, err := db.Query("SELECT VJ.?.age X")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, []gsv.OID{"A1", "A3"}) {
		t.Fatalf("ages = %v", got)
	}
}

func TestFacadeGet(t *testing.T) {
	db := buildPerson(t)
	o, err := db.Get("P1")
	if err != nil {
		t.Fatal(err)
	}
	if o.Label != "professor" {
		t.Fatalf("P1 = %v", o)
	}
	if _, err := db.Get("missing"); err == nil {
		t.Fatal("Get(missing) succeeded")
	}
}

func TestFacadeParseQuery(t *testing.T) {
	q, err := gsv.ParseQuery("SELECT ROOT.professor X WHERE X.age > 40")
	if err != nil {
		t.Fatal(err)
	}
	if q.String() == "" {
		t.Fatal("empty String")
	}
	if _, err := gsv.ParseQuery("garbage"); err == nil {
		t.Fatal("bad query parsed")
	}
}

// TestFacadeViewChurnUnderStream interleaves view definition and removal
// with a base update stream: surviving views must equal fresh evaluation
// at every checkpoint, and dropped views must leave no residue.
func TestFacadeViewChurnUnderStream(t *testing.T) {
	db := gsv.Open()
	workload.RelationLike(db.Store, workload.RelationConfig{
		Relations: 1, TuplesPerRelation: 6, FieldsPerTuple: 2, Seed: 3,
	})
	db.Sync()
	rel, _ := db.Get("REL")
	r0 := rel.Set[0]
	tuples, _ := db.Store.Children(r0)
	var atoms []gsv.OID
	for _, tu := range tuples {
		kids, _ := db.Store.Children(tu)
		atoms = append(atoms, kids...)
	}
	stream := workload.NewStream(db.Store, workload.StreamConfig{Seed: 5, ValueRange: 90},
		append([]gsv.OID{r0}, tuples...), atoms)

	const stable = "define mview STABLE as: SELECT REL.r0.tuple X WHERE X.age > 40"
	if _, err := db.Define(stable); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		churn := fmt.Sprintf("define mview CHURN as: SELECT REL.r0.tuple X WHERE X.age > %d", 10*round)
		if _, err := db.Define(churn); err != nil {
			t.Fatalf("round %d define: %v", round, err)
		}
		for i := 0; i < 10; i++ {
			stream.Next()
		}
		if errs := db.Sync(); len(errs) != 0 {
			t.Fatalf("round %d sync errors: %v", round, errs)
		}
		for _, name := range []string{"STABLE", "CHURN"} {
			got, err := db.ViewMembers(name)
			if err != nil {
				t.Fatal(err)
			}
			v, _ := db.Views.Get(name)
			want, err := db.Query(v.Query.String())
			if err != nil {
				t.Fatal(err)
			}
			if !oem.SameMembers(got, want) {
				t.Fatalf("round %d %s: view %v != fresh %v", round, name, got, want)
			}
		}
		if err := db.Views.Drop("CHURN"); err != nil {
			t.Fatalf("round %d drop: %v", round, err)
		}
		if db.Store.Has("CHURN") {
			t.Fatalf("round %d: dropped view object survived", round)
		}
	}
}

func TestFacadeObjectConstructors(t *testing.T) {
	a := gsv.NewAtomObject("A", "age", gsv.Int(1))
	if !a.IsAtomic() {
		t.Fatal("atom not atomic")
	}
	s := gsv.NewSetObject("S", "set", "A")
	if !s.Contains("A") {
		t.Fatal("set missing member")
	}
	if gsv.Float(1.5).Kind != oem.AtomFloat || !gsv.Bool(true).B {
		t.Fatal("constructors wrong")
	}
}
