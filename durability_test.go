package gsv_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gsv"
	"gsv/internal/faults"
	"gsv/internal/oem"
	"gsv/internal/wal"
	"gsv/internal/workload"
)

// openDurable opens a durable DB over dir, failing the test on error.
func openDurable(t testing.TB, dir string, opts ...gsv.Option) *gsv.DB {
	t.Helper()
	db, err := gsv.TryOpen(append([]gsv.Option{gsv.WithDurability(dir, gsv.SyncAlways)}, opts...)...)
	if err != nil {
		t.Fatalf("TryOpen(%s): %v", dir, err)
	}
	return db
}

func TestDurableRestartRecoversDataAndViews(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	workload.PersonDB(db.Store)
	if errs := db.Sync(); len(errs) != 0 {
		t.Fatalf("sync errors: %v", errs)
	}
	if _, err := db.Define("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45"); err != nil {
		t.Fatal(err)
	}
	// Mutations after the Define checkpoint live only in the WAL.
	db.MustPutSet("P9", "professor")
	db.MustPutAtom("A9", "age", gsv.Int(30))
	if err := db.Insert("P9", "A9"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("ROOT", "P9"); err != nil {
		t.Fatal(err)
	}
	want, err := db.ViewMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir)
	defer db2.Close()
	got, err := db2.ViewMembers("YP")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, want) {
		t.Fatalf("recovered YP = %v, want %v", got, want)
	}
	if !oem.SameMembers(got, []gsv.OID{"P1", "P9"}) {
		t.Fatalf("recovered YP = %v, want [P1 P9]", got)
	}
	// The recovered DB keeps maintaining.
	if err := db2.Delete("ROOT", "P9"); err != nil {
		t.Fatal(err)
	}
	got, _ = db2.ViewMembers("YP")
	if !oem.SameMembers(got, []gsv.OID{"P1"}) {
		t.Fatalf("post-recovery maintenance broken: YP = %v", got)
	}
}

func TestDurableRestartWithoutCheckpointTail(t *testing.T) {
	// Crash (no Close, no checkpoint flush beyond Define) and recover
	// purely from WAL replay.
	dir := t.TempDir()
	db := openDurable(t, dir)
	db.MustPutSet("ROOT", "db")
	for i := 0; i < 20; i++ {
		oid := gsv.OID(fmt.Sprintf("X%d", i))
		db.MustPutAtom(oid, "item", gsv.Int(int64(i)))
		if err := db.Insert("ROOT", oid); err != nil {
			t.Fatal(err)
		}
	}
	// Simulated crash: drop the DB without Close. SyncAlways means every
	// synced update is already durable.
	db2 := openDurable(t, dir)
	defer db2.Close()
	got, err := db2.Query("SELECT ROOT.item X WHERE X > 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("recovered query returned %d members: %v", len(got), got)
	}
}

func TestDurableOIDCountersSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	a := db.Store.GenOID("obj")
	db.MustPutAtom(a, "x", gsv.Int(1))
	b := db.Store.GenOID("obj")
	db.MustPutAtom(b, "x", gsv.Int(2))
	db.Close()

	db2 := openDurable(t, dir)
	defer db2.Close()
	next := db2.Store.GenOID("obj")
	if next == a || next == b {
		t.Fatalf("GenOID reissued %s after restart", next)
	}
}

// TestDurableRecoveryEquivalenceProperty is the recovery-equivalence
// property test: for random update sequences, crashing at a random point
// (checkpoint + WAL tail replay) must yield a byte-identical store
// snapshot to never crashing at all.
func TestDurableRecoveryEquivalenceProperty(t *testing.T) {
	seeds := []int64{1, 7, 42, 99, 12345}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			steps := 120 + rng.Intn(120)
			ckptAt := rng.Intn(steps)                      // forced checkpoint here
			crashAt := ckptAt + 1 + rng.Intn(steps-ckptAt) // crash (stop) here

			dir := t.TempDir()
			// Large auto-checkpoint threshold: the only mid-run
			// checkpoints are Define's and the forced one, so the crash
			// point genuinely exercises tail replay.
			durable := openDurable(t, dir, gsv.WithCheckpointEvery(1<<20))
			control := gsv.Open()

			mutate := newScriptedMutator(rng)
			for i := 0; i < steps; i++ {
				mutate(t, durable, control, i)
				if i == ckptAt {
					if err := durable.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
				if i == crashAt {
					break // crash: no Close, no flush beyond Sync
				}
			}
			// Recover and finish the run on the recovered DB.
			recovered := openDurable(t, dir, gsv.WithCheckpointEvery(1<<20))
			defer recovered.Close()
			start := crashAt + 1
			if crashAt >= steps {
				start = steps
			}
			for i := start; i < steps; i++ {
				mutate(t, recovered, control, i)
			}

			var a, b bytes.Buffer
			if err := recovered.Store.Save(&a); err != nil {
				t.Fatal(err)
			}
			if err := control.Store.Save(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("seed %d: recovered snapshot differs from never-crashed control (crash at step %d, checkpoint at %d)", seed, crashAt, ckptAt)
			}
		})
	}
}

// newScriptedMutator returns a deterministic step function that applies
// the same random mutation to two DBs — the durable one and the
// never-crashing control. Mutations are scripted from the step index and
// the seeded rng, so replaying steps i..n on a recovered DB matches the
// control's history exactly.
func newScriptedMutator(rng *rand.Rand) func(t *testing.T, a, b *gsv.DB, step int) {
	type op struct {
		kind   int
		n1, n2 gsv.OID
		v      int64
	}
	var objs []gsv.OID
	script := func(step int) op {
		o := op{kind: rng.Intn(10)}
		switch {
		case o.kind < 3 || len(objs) < 4: // put atom
			o.kind = 0
			o.n1 = gsv.OID(fmt.Sprintf("O%d", step))
			o.v = int64(rng.Intn(100))
			objs = append(objs, o.n1)
		case o.kind < 6: // insert
			o.kind = 1
			o.n1 = "ROOT"
			o.n2 = objs[rng.Intn(len(objs))]
		case o.kind < 8: // delete
			o.kind = 2
			o.n1 = "ROOT"
			o.n2 = objs[rng.Intn(len(objs))]
		default: // modify
			o.kind = 3
			o.n1 = objs[rng.Intn(len(objs))]
			o.v = int64(rng.Intn(100))
		}
		return o
	}
	var ops []op
	apply := func(t *testing.T, db *gsv.DB, o op) {
		t.Helper()
		switch o.kind {
		case 0:
			db.MustPutAtom(o.n1, "item", gsv.Int(o.v))
		case 1:
			_ = db.Insert(o.n1, o.n2) // duplicate inserts may error; both DBs agree
		case 2:
			_ = db.Delete(o.n1, o.n2)
		case 3:
			_ = db.Modify(o.n1, gsv.Int(o.v))
		}
	}
	return func(t *testing.T, a, b *gsv.DB, step int) {
		t.Helper()
		if step == 0 {
			a.MustPutSet("ROOT", "db")
			b.MustPutSet("ROOT", "db")
			if _, err := a.Define("define mview MV as: SELECT ROOT.item X WHERE X >= 50"); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Define("define mview MV as: SELECT ROOT.item X WHERE X >= 50"); err != nil {
				t.Fatal(err)
			}
			return
		}
		// Generate each step exactly once; replay from the script when a
		// recovered DB re-runs later steps.
		for len(ops) < step {
			ops = append(ops, script(len(ops)))
		}
		o := ops[step-1]
		apply(t, a, o)
		apply(t, b, o)
	}
}

// TestDurableCrashSoak is the kill-and-restart soak: run scripted
// mutations, kill the process at injected crash points (between WAL
// append, fsync and checkpoint rename), restart, and require that
// recovered view memberships equal a from-scratch recompute of the same
// surviving base data.
func TestDurableCrashSoak(t *testing.T) {
	points := []string{"wal.append", "wal.write", "wal.fsync", "ckpt.write", "ckpt.fsync", "ckpt.rename", "ckpt.gc"}
	rng := rand.New(rand.NewSource(20260806))
	dir := t.TempDir()
	rounds := 12
	if testing.Short() {
		rounds = 4
	}
	for round := 0; round < rounds; round++ {
		cp := faults.NewCrashPoints()
		db, err := gsv.TryOpen(
			gsv.WithDurability(dir, gsv.SyncAlways),
			gsv.WithCheckpointEvery(16),
			gsv.WithCrashPoints(cp),
			gsv.WithParallelism(4),
		)
		if err != nil {
			t.Fatalf("round %d: recovery failed: %v", round, err)
		}
		if round == 0 {
			db.MustPutSet("ROOT", "db")
			if _, err := db.Define("define mview MV as: SELECT ROOT.item X WHERE X >= 50"); err != nil {
				t.Fatal(err)
			}
		}
		// Arm a crash a few hits ahead at a random durability boundary.
		point := points[rng.Intn(len(points))]
		cp.Arm(point, 1+rng.Intn(5))

		crashed := runUntilCrash(t, db, rng, round)
		if !crashed {
			// The armed point may fire inside Close's final checkpoint —
			// still a crash, still recovered below.
			func() {
				defer func() {
					if v := recover(); v != nil {
						if _, ok := faults.IsCrash(v); !ok {
							panic(v)
						}
					}
				}()
				_ = db.Close()
			}()
		}
		// "Restart": recover and compare every view's membership to a
		// from-scratch recompute over the recovered base.
		cp.Disarm()
		re, err := gsv.TryOpen(gsv.WithDurability(dir, gsv.SyncAlways), gsv.WithCheckpointEvery(16))
		if err != nil {
			t.Fatalf("round %d (crash at %s): recovery failed: %v", round, point, err)
		}
		members, err := re.ViewMembers("MV")
		if err != nil {
			t.Fatalf("round %d: recovered view: %v", round, err)
		}
		oracle, err := re.Query("SELECT ROOT.item X WHERE X >= 50")
		if err != nil {
			t.Fatal(err)
		}
		if !oem.SameMembers(members, oracle) {
			t.Fatalf("round %d (crash at %s): recovered MV = %v, recompute = %v", round, point, members, oracle)
		}
		re.Close()
	}
}

// runUntilCrash applies random mutations until an injected crash fires
// (returning true) or the budget runs out (false).
func runUntilCrash(t *testing.T, db *gsv.DB, rng *rand.Rand, round int) (crashed bool) {
	defer func() {
		if v := recover(); v != nil {
			if _, ok := faults.IsCrash(v); !ok {
				panic(v)
			}
			crashed = true
		}
	}()
	for i := 0; i < 60; i++ {
		oid := gsv.OID(fmt.Sprintf("R%dI%d", round, i))
		switch rng.Intn(3) {
		case 0:
			db.MustPutAtom(oid, "item", gsv.Int(int64(rng.Intn(100))))
			_ = db.Insert("ROOT", oid)
		case 1:
			_ = db.Delete("ROOT", gsv.OID(fmt.Sprintf("R%dI%d", round, rng.Intn(i+1))))
		case 2:
			_ = db.Modify(gsv.OID(fmt.Sprintf("R%dI%d", round, rng.Intn(i+1))), gsv.Int(int64(rng.Intn(100))))
		}
	}
	return false
}

func TestDurableMetricsRegister(t *testing.T) {
	dir := t.TempDir()
	m := wal.NewMetrics()
	db := openDurable(t, dir, gsv.WithDurabilityMetrics(m))
	db.MustPutSet("ROOT", "db")
	db.MustPutAtom("A", "item", gsv.Int(1))
	if err := db.Insert("ROOT", "A"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Appends.Value() == 0 {
		t.Fatal("no WAL appends counted")
	}
	if m.Checkpoints.Value() == 0 {
		t.Fatal("no checkpoints counted")
	}
	if m.Recoveries.Value() != 1 {
		t.Fatalf("Recoveries = %d, want 1", m.Recoveries.Value())
	}
}

func TestNonDurableCloseCheckpointNoop(t *testing.T) {
	db := gsv.Open()
	if db.Durable() {
		t.Fatal("plain Open reports durable")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
