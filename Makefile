# Development entry points for gsv. Everything is stdlib Go; no external
# tools are required beyond the Go toolchain.

GO ?= go

.PHONY: all build test race cover bench experiments examples fuzz fmt vet clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

# The paper-reproduction tables (EXPERIMENTS.md records a run).
experiments:
	$(GO) run ./cmd/benchviews -updates 300

examples:
	@for e in quickstart webcache accesscontrol profstudent warehouse extensions distributed; do \
		echo "=== examples/$$e ==="; \
		$(GO) run ./examples/$$e || exit 1; \
	done

# Short fuzz sessions on every fuzz target (seed corpora also run under
# plain `make test`).
fuzz:
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s ./internal/query/
	$(GO) test -fuzz='^FuzzParsePathExpr$$' -fuzztime=30s ./internal/query/
	$(GO) test -fuzz='^FuzzLoad$$' -fuzztime=30s ./internal/store/

clean:
	rm -f cover.out test_output.txt bench_output.txt
