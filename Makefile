# Development entry points for gsv. Everything is stdlib Go; no external
# tools are required beyond the Go toolchain.

GO ?= go

.PHONY: all build test race chaos shard-chaos crash cover bench bench-json bench-parallel bench-mvcc bench-overload bench-gate experiments examples fuzz fmt vet ci demo-feed demo-replica trace-smoke overload-smoke clean

all: build vet test

# Exactly what .github/workflows/ci.yml runs.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; fi
	$(GO) test -race ./...
	$(MAKE) trace-smoke
	$(MAKE) overload-smoke
	$(MAKE) shard-chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fault-injection drills (CI's chaos-smoke job): kill/restart soak,
# wire reconnect/gap tests and the follow-reconnect test, all with
# fixed seeds under the race detector.
chaos:
	$(GO) test -race -count=3 -run 'TestChaosSoak|TestNetQuerySurvives|TestNetReportStreamReconnect|TestFollowFeedSurvives|TestReplicaChaosSoak' -v ./internal/warehouse/ ./cmd/gsdbwatch/ ./internal/replica/

# The federation fault drill (CI's shard-chaos job): one of four source
# shards is killed and restarted mid-workload under seeded connection
# faults; healthy partitions must keep serving, spanning reads must
# degrade to typed partial results, and repair must converge
# byte-identically to the all-healthy oracle (docs/WAREHOUSE.md).
shard-chaos:
	$(GO) test -race -count=2 -run 'TestShardChaosSoak|TestFederationPartialResultAndRecovery|TestFederationRootedViewOnDeadShard' -v ./internal/warehouse/

# The durability drills (CI's crash-smoke job): seeded kill/restart
# soaks at the WAL and checkpoint crash points, the recovery-equivalence
# property (checkpoint + tail replay == never crashing, byte for byte)
# and the WAL/checkpoint torn-write tests, all under the race detector
# (docs/DURABILITY.md).
crash:
	$(GO) test -race -count=2 -run 'TestDurableCrashSoak|TestDurableRecoveryEquivalenceProperty|TestWarehouseDurableCrashSoak|TestWALCrashPoints|TestCheckpointCrashPoints' -v . ./internal/warehouse/ ./internal/wal/

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark report: experiment tables plus the E1
# maintenance micro-benchmarks, written to BENCH_<timestamp>.json
# (schema documented in EXPERIMENTS.md). CI uploads one per run.
bench-json:
	$(GO) run ./cmd/benchviews -e E1 -updates 300 -json

# Serial-vs-parallel batched maintenance benchmark (experiment E12,
# docs/API.md): the scheduler must beat the literal per-update x
# per-view loop on a multi-view workload. CI runs this as the
# bench-parallel job and uploads the JSON report.
bench-parallel:
	$(GO) run ./cmd/benchviews -e E12 -updates 400 -json

# MVCC reads-vs-maintenance interference benchmark (experiment E16,
# docs/MVCC.md): read p99 while ApplyBatch churns, batch-RWMutex
# serving baseline vs per-read snapshot pins. CI floors the
# interference ratio at 2x in bench-gate.
bench-mvcc:
	$(GO) run ./cmd/benchviews -e E16 -updates 300 -json

# Overload shedding benchmark (experiment E17, docs/WAREHOUSE.md
# "Overload & graceful drain"): goodput and p99 at 1x/4x/16x offered
# load, raw vs admission-controlled. CI floors the 16x goodput speedup
# at 2x and ceilings the shed p99 in bench-gate.
bench-overload:
	$(GO) run ./cmd/benchviews -e E17 -updates 300 -json

# Benchmark regression gate (CI's bench-gate job): regenerate the
# E12-E17 report with the baseline's configuration and compare
# the machine-independent ratios (speedup, scaling,
# recompute/incremental) against the committed baseline in bench/.
# Enforced: E14 replica scaling, E15 federated shard scaling and the E1
# recompute/incremental ratios, whose margins dwarf run-to-run noise;
# the short-wall-clock E12/E13 speedups and E14 p99 propagation
# latencies swing too much between runs to gate relatively and print as
# informational lines instead. The absolute bounds carry the headline
# claims regardless of baseline drift: 4 shards must hold at least 2x
# the 1-shard maintenance throughput (-floor), and replica propagation
# p99 must stay under the 25ms freshness SLO (-ceiling), and the E16
# MVCC interference ratio must hold at least 2x (-floor), and at 16x
# offered load the admission-controlled server's goodput must hold at
# least 2x the unprotected baseline's with shed p99 under 120ms
# (E17 -floor/-ceiling; the budget is latency-calibrated, so the claim
# transfers across hosts).
bench-gate:
	GOMAXPROCS=4 $(GO) run ./cmd/benchviews -e E12,E13,E14,E15,E16,E17 -updates 300 -json -out bench-current.json
	$(GO) run ./cmd/benchgate -baseline bench/BENCH_20260808.json -current bench-current.json -tolerance 0.4 -gate '^(E14.*scaling|E15|bench)' -floor 'E15\[shards=4\]\.scaling=2' -floor 'E16.*\.speedup=2' -floor 'E17\[run=16x-shed\]\.speedup=2' -ceiling 'E14.*\.p99=25' -ceiling 'E17\[run=16x-shed\]\.p99=120'

# The paper-reproduction tables (EXPERIMENTS.md records a run).
experiments:
	$(GO) run ./cmd/benchviews -updates 300

examples:
	@for e in quickstart webcache accesscontrol profstudent warehouse extensions distributed; do \
		echo "=== examples/$$e ==="; \
		$(GO) run ./examples/$$e || exit 1; \
	done

# Short fuzz sessions on every fuzz target (seed corpora also run under
# plain `make test`).
fuzz:
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s ./internal/query/
	$(GO) test -fuzz='^FuzzParsePathExpr$$' -fuzztime=30s ./internal/query/
	$(GO) test -fuzz='^FuzzLoad$$' -fuzztime=30s ./internal/store/
	$(GO) test -fuzz='^FuzzNetFrame$$' -fuzztime=30s ./internal/warehouse/
	$(GO) test -fuzz='^FuzzDecodeRecord$$' -fuzztime=30s ./internal/wal/

# End-to-end changefeed demo: gsdbserve hosts a view and drives updates;
# gsdbwatch -follow tails its delta feed (docs/CHANGEFEED.md). Built
# binaries, not `go run`, so the server can be killed by pid.
demo-feed:
	@mkdir -p bin
	@$(GO) build -o bin/gsdbserve ./cmd/gsdbserve
	@$(GO) build -o bin/gsdbwatch ./cmd/gsdbwatch
	@./bin/gsdbserve -addr 127.0.0.1:7071 -sample relations -tuples 20 \
		-updates 60 -interval 100ms \
		-feed 'HOT=SELECT REL.r0.tuple X WHERE X.age > 30' & \
	SERVE=$$!; sleep 1; \
	./bin/gsdbwatch -addr 127.0.0.1:7071 -follow HOT -from 0 -for 8s; \
	kill $$SERVE 2>/dev/null || true

# End-to-end replica demo (CI's replica-smoke job): gsdbserve hosts a
# view and drives updates; gsdbreplica bootstraps from a snapshot, tails
# the multi-view changefeed and serves reads; gsdbwatch follows the
# REPLICA's republished feed and then renders the replica's own stats —
# including the gsv_replica_* staleness gauges (docs/REPLICA.md).
demo-replica:
	@mkdir -p bin
	@$(GO) build -o bin/gsdbserve ./cmd/gsdbserve
	@$(GO) build -o bin/gsdbreplica ./cmd/gsdbreplica
	@$(GO) build -o bin/gsdbwatch ./cmd/gsdbwatch
	@./bin/gsdbserve -addr 127.0.0.1:7081 -sample relations -tuples 20 \
		-updates 80 -interval 100ms \
		-feed 'HOT=SELECT REL.r0.tuple X WHERE X.age > 30' & \
	SERVE=$$!; sleep 1; \
	./bin/gsdbreplica -primary 127.0.0.1:7081 -addr 127.0.0.1:7082 \
		-name demo -max-lag-age 5s & \
	REPL=$$!; sleep 1; \
	./bin/gsdbwatch -addr 127.0.0.1:7082 -follow HOT -from 0 -snapshot -for 6s; \
	./bin/gsdbwatch -addr 127.0.0.1:7082 -stats -for 2s; \
	kill $$REPL $$SERVE 2>/dev/null || true

# Trace smoke (CI's trace-smoke job): a durable primary under live
# updates plus one replica, then assert the observability tentpole end
# to end — span waterfalls render from BOTH nodes over the trace wire
# op, and both /readyz probes answer healthy while in bounds.
trace-smoke:
	@mkdir -p bin
	@$(GO) build -o bin/gsdbserve ./cmd/gsdbserve
	@$(GO) build -o bin/gsdbreplica ./cmd/gsdbreplica
	@$(GO) build -o bin/gsdbwatch ./cmd/gsdbwatch
	@rm -rf /tmp/gsv-trace-smoke && mkdir -p /tmp/gsv-trace-smoke
	@./bin/gsdbserve -addr 127.0.0.1:7083 -sample relations -tuples 20 \
		-updates 120 -interval 25ms -data /tmp/gsv-trace-smoke \
		-feed 'HOT=SELECT REL.r0.tuple X WHERE X.age > 30' \
		-debugaddr 127.0.0.1:8083 & \
	SERVE=$$!; sleep 1; \
	./bin/gsdbreplica -primary 127.0.0.1:7083 -addr 127.0.0.1:7084 \
		-name smoke -max-lag-age 30s -debugaddr 127.0.0.1:8084 & \
	REPL=$$!; sleep 4; \
	rc=0; \
	./bin/gsdbwatch -addr 127.0.0.1:7083 -trace -last 0 | tee /tmp/gsv-trace-smoke/primary.out; \
	grep -q 'maintain' /tmp/gsv-trace-smoke/primary.out || \
		{ echo "trace-smoke: no maintain span on primary" >&2; rc=1; }; \
	grep -q ' wal ' /tmp/gsv-trace-smoke/primary.out || \
		{ echo "trace-smoke: no WAL span on primary" >&2; rc=1; }; \
	./bin/gsdbwatch -addr 127.0.0.1:7084 -trace -last 0 | tee /tmp/gsv-trace-smoke/replica.out; \
	grep -q ' apply ' /tmp/gsv-trace-smoke/replica.out || \
		{ echo "trace-smoke: no apply span on replica" >&2; rc=1; }; \
	grep -oh 'trace [^ ]*' /tmp/gsv-trace-smoke/primary.out | sort -u > /tmp/gsv-trace-smoke/pids; \
	grep -oh 'trace [^ ]*' /tmp/gsv-trace-smoke/replica.out | sort -u > /tmp/gsv-trace-smoke/rids; \
	comm -12 /tmp/gsv-trace-smoke/pids /tmp/gsv-trace-smoke/rids | grep -q . || \
		{ echo "trace-smoke: no trace id joins across primary and replica" >&2; rc=1; }; \
	curl -fsS -o /tmp/gsv-trace-smoke/p-ready http://127.0.0.1:8083/readyz && \
	grep -q ready /tmp/gsv-trace-smoke/p-ready || \
		{ echo "trace-smoke: primary /readyz unhealthy" >&2; rc=1; }; \
	curl -fsS -o /tmp/gsv-trace-smoke/r-ready http://127.0.0.1:8084/readyz && \
	grep -q ready /tmp/gsv-trace-smoke/r-ready || \
		{ echo "trace-smoke: replica /readyz unhealthy" >&2; rc=1; }; \
	curl -fsS -o /tmp/gsv-trace-smoke/p-metrics http://127.0.0.1:8083/metrics && \
	grep -q 'gsv_propagation_seconds' /tmp/gsv-trace-smoke/p-metrics || \
		{ echo "trace-smoke: no propagation histogram on primary" >&2; rc=1; }; \
	curl -fsS -o /tmp/gsv-trace-smoke/r-metrics http://127.0.0.1:8084/metrics && \
	grep -q 'gsv_view_watermark_seconds' /tmp/gsv-trace-smoke/r-metrics || \
		{ echo "trace-smoke: no watermark gauge on replica" >&2; rc=1; }; \
	kill $$REPL $$SERVE 2>/dev/null || true; \
	exit $$rc

# Overload smoke (CI's overload-smoke job): gsdbserve runs with the
# weighted admission semaphore while gsdbload drives 16x offered load of
# budget-stamped CPU-bound queries; the server must shed (typed
# retryable errors) yet keep recording goodput — and goodput is
# by definition within the 20ms budget, so admitted-read latency is
# bounded by construction. Then the OVERLOAD stats section must render
# over the wire and SIGTERM must exit 0 through the graceful drain
# (docs/WAREHOUSE.md, "Overload & graceful drain").
overload-smoke:
	@mkdir -p bin
	@$(GO) build -o bin/gsdbserve ./cmd/gsdbserve
	@$(GO) build -o bin/gsdbload ./cmd/gsdbload
	@$(GO) build -o bin/gsdbwatch ./cmd/gsdbwatch
	@./bin/gsdbserve -addr 127.0.0.1:7085 -sample relations -tuples 400 \
		-max-inflight 4 -max-queue 8 -queue-timeout 10ms -min-slack 10ms \
		-idle-timeout 5s -drain-timeout 5s -debugaddr 127.0.0.1:8085 & \
	SERVE=$$!; sleep 1; \
	rc=0; \
	./bin/gsdbload -addr 127.0.0.1:7085 -clients 64 -duration 2s \
		-budget 20ms -shed-backoff 80ms -require-sheds \
		-query 'SELECT REL.r0.tuple X WHERE X.age > 100000' || \
		{ echo "overload-smoke: load run failed" >&2; rc=1; }; \
	./bin/gsdbwatch -addr 127.0.0.1:7085 -stats | tee /tmp/gsv-overload-smoke.out; \
	grep -q 'OVERLOAD' /tmp/gsv-overload-smoke.out || \
		{ echo "overload-smoke: no OVERLOAD stats section" >&2; rc=1; }; \
	kill -TERM $$SERVE 2>/dev/null; \
	wait $$SERVE; st=$$?; \
	[ $$st -eq 0 ] || { echo "overload-smoke: SIGTERM drain exited $$st, want 0" >&2; rc=1; }; \
	exit $$rc

clean:
	rm -rf bin
	rm -f cover.out test_output.txt bench_output.txt
