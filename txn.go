package gsv

import (
	"gsv/internal/query"
	"gsv/internal/store"
)

// Seq is a store sequence number: the version a committed update produced.
type Seq = uint64

// Snapshot is a pinned, immutable version of the store. Reads against a
// snapshot take no locks and never observe later mutations; Close releases
// the pin. See docs/MVCC.md for the version lifecycle.
type Snapshot = store.Snapshot

// Snapshot errors, surfaced through errors.Is.
var (
	// ErrSnapshotReclaimed reports a read through a closed snapshot
	// handle, or a SnapshotAt/ReadTxn pin below the version ring's
	// horizon (see WithRetainVersions).
	ErrSnapshotReclaimed = store.ErrSnapshotReclaimed
	// ErrFutureSeq reports a pin at a sequence number the store has not
	// reached yet.
	ErrFutureSeq = store.ErrFutureSeq
)

// Snapshot pins the store's current version and returns the handle. The
// caller must Close it; until then the version (and every object version
// it references) stays reachable.
func (db *DB) Snapshot() *Snapshot { return db.Store.Snapshot() }

// SnapshotAt pins the newest version at or below sequence number at.
// It fails with ErrFutureSeq beyond the current version and with
// ErrSnapshotReclaimed below the retained-history horizon.
func (db *DB) SnapshotAt(at Seq) (*Snapshot, error) { return db.Store.SnapshotAt(at) }

// ReadTxn is a read-only transaction: every read — object, ad-hoc query,
// view membership — answers from one pinned version of the database,
// unaffected by concurrent maintenance. It replaces the deprecated
// pattern of reading db.Store directly between mutations (docs/API.md
// lists the migration table).
//
// A ReadTxn holds a snapshot pin until Close; long-lived transactions
// keep old versions reachable, so close them when done.
type ReadTxn struct {
	db   *DB
	snap *Snapshot
}

// ReadTxn opens a read transaction. With no argument it pins the current
// version after draining pending maintenance, so registered views are
// consistent with the base data it sees. With a sequence number it pins
// the newest version at or below it (same errors as SnapshotAt) — views
// are then read as of that historical version.
func (db *DB) ReadTxn(at ...Seq) (*ReadTxn, error) {
	if len(at) > 0 {
		snap, err := db.Store.SnapshotAt(at[0])
		if err != nil {
			return nil, err
		}
		return &ReadTxn{db: db, snap: snap}, nil
	}
	db.Sync()
	return &ReadTxn{db: db, snap: db.Store.Snapshot()}, nil
}

// Seq returns the sequence number of the pinned version.
func (t *ReadTxn) Seq() Seq { return t.snap.Seq() }

// Close releases the snapshot pin. Reads after Close fail with
// ErrSnapshotReclaimed. Close is idempotent.
func (t *ReadTxn) Close() { t.snap.Close() }

// Get returns a copy of an object as of the pinned version.
func (t *ReadTxn) Get(oid OID) (*Object, error) { return t.snap.Get(oid) }

// Has reports whether an object existed in the pinned version.
func (t *ReadTxn) Has(oid OID) bool { return t.snap.Has(oid) }

// Query evaluates a query string against the pinned version and returns
// the sorted member OIDs.
func (t *ReadTxn) Query(q string) ([]OID, error) {
	parsed, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return query.NewEvaluator(t.snap).Eval(parsed)
}

// ViewMembers returns the members of a registered view as of the pinned
// version: materialized views read their stored delegates from the
// snapshot, virtual views evaluate against it.
func (t *ReadTxn) ViewMembers(name string) ([]OID, error) {
	return t.db.Views.EvaluateAt(name, t.snap)
}
