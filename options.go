package gsv

import (
	"runtime"

	"gsv/internal/core"
	"gsv/internal/store"
)

// Option configures Open. Options replace the old constructor-per-knob
// pattern (OpenWith and ad-hoc setters); see docs/API.md for the
// migration notes.
type Option func(*openConfig)

type openConfig struct {
	store       *Store
	strategy    Strategy
	parallelism int
	screening   *bool
	observer    DeltaObserver
	batchObs    BatchObserver
}

// WithStore opens the database over an existing store instead of a fresh
// one with default indexing.
func WithStore(s *Store) Option {
	return func(c *openConfig) { c.store = s }
}

// WithStrategy sets the maintenance strategy Define uses for every view
// registered through this DB (default StrategyAuto: Algorithm 1 for
// simple views, the general maintainer otherwise).
func WithStrategy(s Strategy) Option {
	return func(c *openConfig) { c.strategy = s }
}

// WithParallelism bounds the maintenance worker pool that fans batched
// updates out across views. n <= 0 means runtime.NumCPU(); the default
// is 1 (serial maintenance on the syncing goroutine). Observers
// installed with WithObserver or WithBatchObserver must be safe for
// concurrent use when n > 1.
func WithParallelism(n int) Option {
	return func(c *openConfig) {
		if n <= 0 {
			n = runtime.NumCPU()
		}
		c.parallelism = n
	}
}

// WithScreening toggles the registry's label screening index (default
// on). Screening only skips provably no-op maintainer calls; results
// are identical either way, so turning it off is mainly for baselines
// and debugging.
func WithScreening(on bool) Option {
	return func(c *openConfig) { c.screening = &on }
}

// WithObserver installs a per-update delta observer: it fires once for
// every applied base update that changed a view, exactly as maintainers
// report them.
func WithObserver(fn DeltaObserver) Option {
	return func(c *openConfig) { c.observer = fn }
}

// WithBatchObserver installs a batch delta observer: it fires once per
// view per synced batch with the coalesced membership change (see
// Registry.SetBatchObserver and feed.Hub.BatchObserver).
func WithBatchObserver(fn BatchObserver) Option {
	return func(c *openConfig) { c.batchObs = fn }
}

// Open returns a database configured by the given options; with none it
// is an empty database with default indexing, serial maintenance and
// screening on.
func Open(opts ...Option) *DB {
	var c openConfig
	for _, o := range opts {
		o(&c)
	}
	s := c.store
	if s == nil {
		s = store.NewDefault()
	}
	db := open(s)
	if c.strategy != core.StrategyAuto {
		db.Views.SetDefaultStrategy(c.strategy)
	}
	if c.parallelism > 0 {
		db.Views.SetParallelism(c.parallelism)
	}
	if c.screening != nil {
		db.Views.SetScreening(*c.screening)
	}
	if c.observer != nil {
		db.Views.SetObserver(c.observer)
	}
	if c.batchObs != nil {
		db.Views.SetBatchObserver(c.batchObs)
	}
	return db
}

// OpenWith wraps an existing store.
//
// Deprecated: use Open(WithStore(s)).
func OpenWith(s *Store) *DB { return Open(WithStore(s)) }
