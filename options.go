package gsv

import (
	"runtime"
	"time"

	"gsv/internal/core"
	"gsv/internal/faults"
	"gsv/internal/store"
	"gsv/internal/wal"
)

// Option configures Open. Options replace the old constructor-per-knob
// pattern (OpenWith and ad-hoc setters); see docs/API.md for the
// migration notes.
type Option func(*openConfig)

type openConfig struct {
	store          *Store
	retainVersions int
	strategy       Strategy
	parallelism    int
	screening      *bool
	observer       DeltaObserver
	batchObs       BatchObserver

	// Durability (see durability.go).
	durDir          string
	durPolicy       SyncPolicy
	durInterval     time.Duration
	durSegmentBytes int64
	durMetrics      *wal.Metrics
	durCrash        *faults.CrashPoints
	ckptEvery       int
}

// WithStore opens the database over an existing store instead of a fresh
// one with default indexing.
func WithStore(s *Store) Option {
	return func(c *openConfig) { c.store = s }
}

// WithRetainVersions bounds the MVCC version-history ring of the store
// Open creates: how many committed versions stay addressable by
// SnapshotAt and ReadTxn(at) (default store.DefaultRetainVersions).
// Pinned snapshots are never invalidated by eviction — the ring only
// limits how far back new pins can reach. Ignored with WithStore; an
// existing store keeps its own setting.
func WithRetainVersions(n int) Option {
	return func(c *openConfig) { c.retainVersions = n }
}

// WithStrategy sets the maintenance strategy Define uses for every view
// registered through this DB (default StrategyAuto: Algorithm 1 for
// simple views, the general maintainer otherwise).
func WithStrategy(s Strategy) Option {
	return func(c *openConfig) { c.strategy = s }
}

// WithParallelism bounds the maintenance worker pool that fans batched
// updates out across views. n <= 0 means runtime.NumCPU(); the default
// is 1 (serial maintenance on the syncing goroutine). Observers
// installed with WithObserver or WithBatchObserver must be safe for
// concurrent use when n > 1.
func WithParallelism(n int) Option {
	return func(c *openConfig) {
		if n <= 0 {
			n = runtime.NumCPU()
		}
		c.parallelism = n
	}
}

// WithScreening toggles the registry's label screening index (default
// on). Screening only skips provably no-op maintainer calls; results
// are identical either way, so turning it off is mainly for baselines
// and debugging.
func WithScreening(on bool) Option {
	return func(c *openConfig) { c.screening = &on }
}

// WithObserver installs a per-update delta observer: it fires once for
// every applied base update that changed a view, exactly as maintainers
// report them.
func WithObserver(fn DeltaObserver) Option {
	return func(c *openConfig) { c.observer = fn }
}

// WithBatchObserver installs a batch delta observer: it fires once per
// view per synced batch with the coalesced membership change (see
// Registry.SetBatchObserver and feed.Hub.BatchObserver).
func WithBatchObserver(fn BatchObserver) Option {
	return func(c *openConfig) { c.batchObs = fn }
}

// WithDurability makes the database durable: dir receives a write-ahead
// log of base updates (flushed per policy) plus periodic checkpoints,
// and opening the same directory again recovers the database — newest
// checkpoint, then WAL tail replay — instead of starting empty. See
// docs/DURABILITY.md. Open panics if recovery fails; use TryOpen to
// handle the error.
func WithDurability(dir string, policy SyncPolicy) Option {
	return func(c *openConfig) {
		c.durDir = dir
		c.durPolicy = policy
	}
}

// WithCheckpointEvery sets how many durable base updates accumulate
// between automatic checkpoints (default 4096). Smaller values shorten
// recovery replay at the cost of more frequent snapshot writes. Only
// meaningful with WithDurability.
func WithCheckpointEvery(n int) Option {
	return func(c *openConfig) { c.ckptEvery = n }
}

// WithSyncInterval sets the flush period used by the SyncInterval
// policy (default 50ms).
func WithSyncInterval(d time.Duration) Option {
	return func(c *openConfig) { c.durInterval = d }
}

// WithSegmentBytes sets the WAL segment roll size (default 4 MiB).
func WithSegmentBytes(n int64) Option {
	return func(c *openConfig) { c.durSegmentBytes = n }
}

// WithDurabilityMetrics shares a wal.Metrics with the durability layer
// so its counters can be registered on an obs.Registry.
func WithDurabilityMetrics(m *wal.Metrics) Option {
	return func(c *openConfig) { c.durMetrics = m }
}

// WithCrashPoints arms fault-injection crash points on the durability
// layer — test harnesses only.
func WithCrashPoints(cp *faults.CrashPoints) Option {
	return func(c *openConfig) { c.durCrash = cp }
}

// Open returns a database configured by the given options; with none it
// is an empty database with default indexing, serial maintenance and
// screening on. With WithDurability, Open recovers from the durability
// directory and panics if recovery fails — use TryOpen when the
// directory's health is not already trusted.
func Open(opts ...Option) *DB {
	db, err := TryOpen(opts...)
	if err != nil {
		panic(err)
	}
	return db
}

// TryOpen is Open returning recovery errors instead of panicking. For
// non-durable configurations it cannot fail.
func TryOpen(opts ...Option) (*DB, error) {
	var c openConfig
	for _, o := range opts {
		o(&c)
	}
	s := c.store
	if s == nil {
		so := store.DefaultOptions()
		so.RetainVersions = c.retainVersions
		s = store.New(so)
	}
	db := open(s)
	if c.strategy != core.StrategyAuto {
		db.Views.SetDefaultStrategy(c.strategy)
	}
	if c.parallelism > 0 {
		db.Views.SetParallelism(c.parallelism)
	}
	if c.screening != nil {
		db.Views.SetScreening(*c.screening)
	}
	if c.observer != nil {
		db.Views.SetObserver(c.observer)
	}
	if c.batchObs != nil {
		db.Views.SetBatchObserver(c.batchObs)
	}
	if c.durDir != "" {
		return openDurable(&c, db)
	}
	return db, nil
}

// OpenWith wraps an existing store.
//
// Deprecated: use Open(WithStore(s)).
func OpenWith(s *Store) *DB { return Open(WithStore(s)) }
