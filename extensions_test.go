package gsv_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"gsv"
	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/pathexpr"
	"gsv/internal/query"
	"gsv/internal/workload"
)

func TestFacadeAggregate(t *testing.T) {
	db := buildPerson(t)
	if err := db.DefineAggregate("TOTAL", gsv.AggSum,
		"SELECT ROOT.professor X WHERE X.age <= 45", "salary"); err != nil {
		t.Fatal(err)
	}
	v, err := db.AggregateValue("TOTAL")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(gsv.Float(100000)) {
		t.Fatalf("TOTAL = %v", v)
	}
	// P2 joins with a salary; the aggregate follows.
	db.MustPutAtom("A2", "age", gsv.Int(40))
	db.MustPutAtom("S2", "salary", gsv.Int(70000))
	if err := db.Insert("P2", "S2"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("P2", "A2"); err != nil {
		t.Fatal(err)
	}
	v, _ = db.AggregateValue("TOTAL")
	if !v.Equal(gsv.Float(170000)) {
		t.Fatalf("TOTAL after join = %v", v)
	}
	// Errors.
	if err := db.DefineAggregate("TOTAL", gsv.AggSum, "SELECT ROOT.professor X", "salary"); err == nil {
		t.Fatal("duplicate aggregate accepted")
	}
	if err := db.DefineAggregate("W", gsv.AggSum, "SELECT ROOT.* X", "salary"); err == nil {
		t.Fatal("wildcard aggregate base accepted")
	}
	if _, err := db.AggregateValue("NOSUCH"); err == nil {
		t.Fatal("unknown aggregate read")
	}
}

func TestFacadePartial(t *testing.T) {
	db := buildPerson(t)
	p, err := db.DefinePartial("PV", "SELECT ROOT.professor X WHERE X.age <= 45", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.MirroredCount() != 5 { // P1 + 4 children
		t.Fatalf("mirrored = %d", p.MirroredCount())
	}
	// Maintenance flows through Sync.
	if err := db.Modify("N1", gsv.String("Johnny")); err != nil {
		t.Fatal(err)
	}
	d, err := p.Delegate("N1")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Atom.Equal(gsv.String("Johnny")) {
		t.Fatalf("mirrored atom = %v", d.Atom)
	}
	if _, ok := db.Partial("PV"); !ok {
		t.Fatal("Partial lookup failed")
	}
	if _, err := db.DefinePartial("PV", "SELECT ROOT.professor X", 0); err == nil {
		t.Fatal("duplicate partial accepted")
	}
}

func TestFacadeApplyBulk(t *testing.T) {
	db := buildPerson(t)
	if _, err := db.Define("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45"); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineAggregate("AGES", gsv.AggSum, "SELECT ROOT.professor X WHERE X.age <= 45", "age"); err != nil {
		t.Fatal(err)
	}
	bu := gsv.BulkUpdate{
		Selector: core.SimpleDef{
			Entry:    "ROOT",
			SelPath:  pathexpr.MustParsePath("professor"),
			CondPath: pathexpr.MustParsePath("name"),
			Cond:     core.CondTest{Op: query.OpEq, Literal: oem.String_("John")},
		},
		EffectPath: pathexpr.MustParsePath("age"),
	}
	// Raise John's age past the view threshold; the intent touches the
	// view's cond path, so the view must process (not screen) and P1
	// must leave.
	outcomes, err := db.ApplyBulk(bu, func(v gsv.Atom) gsv.Atom { return gsv.Int(v.I + 10) }, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 1 || outcomes[0].Reason != core.Affected {
		t.Fatalf("outcomes = %+v", outcomes)
	}
	members, _ := db.ViewMembers("YP")
	if len(members) != 0 {
		t.Fatalf("YP after bulk = %v", members)
	}
	// The aggregate followed too (member left; sum now empty).
	v, _ := db.AggregateValue("AGES")
	if !v.Equal(gsv.Float(0)) {
		t.Fatalf("AGES = %v", v)
	}
	// And the double-application guard held: the view was maintained once
	// (by ApplyBulk) and the watch buffer skipped those updates — the
	// registry state is consistent with a fresh evaluation.
	fresh, err := db.Query("SELECT ROOT.professor X WHERE X.age <= 45")
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 0 {
		t.Fatalf("fresh = %v", fresh)
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	db := buildPerson(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := gsv.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Query("SELECT ROOT.professor X WHERE X.age > 40")
	if err != nil {
		t.Fatal(err)
	}
	if !oem.SameMembers(got, []gsv.OID{"P1"}) {
		t.Fatalf("restored query = %v", got)
	}
}

func TestFacadeSaveLoadFile(t *testing.T) {
	db := buildPerson(t)
	path := filepath.Join(t.TempDir(), "snap.gsv")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := gsv.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Store.Len() != db.Store.Len() {
		t.Fatalf("restored %d objects, want %d", restored.Store.Len(), db.Store.Len())
	}
	if _, err := gsv.LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestFacadeExtrasSeeOnlyNewUpdates(t *testing.T) {
	// An aggregate defined after a batch of updates must not re-apply
	// history.
	db := gsv.Open()
	workload.PersonDB(db.Store)
	db.Sync()
	if err := db.Modify("A1", gsv.Int(44)); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineAggregate("N", gsv.AggCount, "SELECT ROOT.professor X WHERE X.age <= 45", ""); err != nil {
		t.Fatal(err)
	}
	v, _ := db.AggregateValue("N")
	if !v.Equal(gsv.Int(1)) {
		t.Fatalf("N = %v", v)
	}
	if err := db.Modify("A1", gsv.Int(60)); err != nil {
		t.Fatal(err)
	}
	v, _ = db.AggregateValue("N")
	if !v.Equal(gsv.Int(0)) {
		t.Fatalf("N after exit = %v", v)
	}
}
