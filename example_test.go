package gsv_test

import (
	"fmt"

	"gsv"
	"gsv/internal/workload"
)

// Example reproduces the paper's running example end to end: build the
// PERSON database, define the view YP of Example 5, and watch Algorithm 1
// maintain it through the updates of Examples 5 and 6.
func Example() {
	db := gsv.Open()
	workload.PersonDB(db.Store)
	db.Sync()

	db.Define("define mview YP as: SELECT ROOT.professor X WHERE X.age <= 45")
	show := func() {
		members, _ := db.ViewMembers("YP")
		fmt.Println(members)
	}
	show()

	// Example 5: insert(P2, A2) with <A2, age, 40>.
	db.MustPutAtom("A2", "age", gsv.Int(40))
	db.Insert("P2", "A2")
	show()

	// Example 6: delete(ROOT, P1).
	db.Delete("ROOT", "P1")
	show()
	// Output:
	// [P1]
	// [P1 P2]
	// [P2]
}

// ExampleDB_Query shows the Section 2 query language.
func ExampleDB_Query() {
	db := gsv.Open()
	workload.PersonDB(db.Store)
	db.Sync()

	ans, _ := db.Query("SELECT ROOT.professor X WHERE X.age > 40")
	fmt.Println(ans)
	ans, _ = db.Query("SELECT ROOT.* X WHERE X.name = 'John'")
	fmt.Println(ans)
	// Output:
	// [P1]
	// [P1 P3]
}

// ExampleDB_Define shows virtual views used as query entry points
// (Section 3.1's follow-on queries).
func ExampleDB_Define() {
	db := gsv.Open()
	workload.PersonDB(db.Store)
	db.Sync()

	db.Define("define view VJ as: SELECT ROOT.* X WHERE X.name = 'John' WITHIN PERSON")
	members, _ := db.ViewMembers("VJ")
	fmt.Println(members)

	ages, _ := db.Query("SELECT VJ.?.age X")
	fmt.Println(ages)
	// Output:
	// [P1 P3]
	// [A1 A3]
}

// ExampleDB_DefineAggregate shows a Section 6 aggregate view maintained
// incrementally.
func ExampleDB_DefineAggregate() {
	db := gsv.Open()
	workload.PersonDB(db.Store)
	db.Sync()

	db.DefineAggregate("PAYROLL", gsv.AggSum,
		"SELECT ROOT.professor X WHERE X.age <= 45", "salary")
	v, _ := db.AggregateValue("PAYROLL")
	fmt.Println(v)

	db.Modify("S1", gsv.Int(120000))
	v, _ = db.AggregateValue("PAYROLL")
	fmt.Println(v)
	// Output:
	// 100000
	// 120000
}

// ExampleDB_DefinePartial shows a partially materialized view: one level
// of objects copied, deeper structure left as pointers back to base data.
func ExampleDB_DefinePartial() {
	db := gsv.Open()
	workload.PersonDB(db.Store)
	db.Sync()

	p, _ := db.DefinePartial("PV", "SELECT ROOT.professor X WHERE X.age <= 45", 1)
	member, _ := p.Delegate("P1")
	frontier, _ := p.Delegate("P3")
	fmt.Println(member)
	fmt.Println(frontier)
	// Output:
	// <PV.P1, professor, set, {PV.N1,PV.A1,PV.S1,PV.P3}>
	// <PV.P3, student, set, {N3,A3,M3}>
}
