package gsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"os"

	"gsv/internal/core"
	"gsv/internal/query"
)

// This file implements full-database snapshots: base objects plus view
// definitions. DB.Save (extensions.go) writes only the raw store; SaveDB
// strips the view machinery and records the definitions instead, so
// LoadDB can rebuild the registry and re-materialize every view against
// the restored base — delegates come back fresh rather than fossilized.

const dbSnapshotHeader = "gsv-db-v1"

// viewDef is the serialized form of one registered view, shared by SaveDB
// snapshots and durability checkpoints. Swizzled is only meaningful for
// checkpoints: SaveDB rebuilds views from scratch, while checkpoint
// recovery adopts the stored delegates as-is and must know whether their
// edges are swizzled.
type viewDef struct {
	Name         string `json:"name"`
	Materialized bool   `json:"materialized"`
	Strategy     string `json:"strategy,omitempty"`
	Query        string `json:"query"`
	Swizzled     bool   `json:"swizzled,omitempty"`
}

// statement renders the definition statement and maintenance strategy to
// re-register the view with.
func (vd viewDef) statement() (string, Strategy) {
	kw := "view"
	if vd.Materialized {
		kw = "mview"
	}
	return fmt.Sprintf("define %s %s as: %s", kw, vd.Name, vd.Query), strategyFromString(vd.Strategy)
}

// SaveDB writes the database — base objects and view definitions — to w.
// View objects, delegates and other view machinery are omitted from the
// object section; the definitions section lets LoadDB recreate them.
// Aggregates and partial views (which live in side stores) are not part
// of a snapshot; re-register them after loading.
func (db *DB) SaveDB(w io.Writer) error {
	db.Sync()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, dbSnapshotHeader); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	var encErr error
	db.Store.ForEach(func(o *Object) {
		if encErr != nil || db.Views.IsViewObject(o.OID) {
			return
		}
		if _, _, isDelegate := core.SplitDelegateOID(o.OID); isDelegate {
			return
		}
		encErr = enc.Encode(o)
	})
	if encErr != nil {
		return encErr
	}
	if _, err := fmt.Fprintln(bw, "----views----"); err != nil {
		return err
	}
	for _, name := range db.Views.Names() {
		v, _ := db.Views.Get(name)
		vd := viewDef{Name: name, Materialized: v.Materialized != nil, Query: v.Query.String()}
		if v.Materialized != nil {
			vd.Strategy = v.Strategy.String()
		}
		if err := enc.Encode(vd); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadDB reads a SaveDB snapshot into a fresh DB, re-defining (and
// re-materializing) every recorded view.
func LoadDB(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("gsv: reading snapshot header: %w", err)
	}
	if strings.TrimSpace(header) != dbSnapshotHeader {
		return nil, fmt.Errorf("gsv: bad snapshot header %q", strings.TrimSpace(header))
	}
	db := Open()
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	inViews := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "----views----" {
			inViews = true
			continue
		}
		if !inViews {
			var o Object
			if err := json.Unmarshal([]byte(line), &o); err != nil {
				return nil, fmt.Errorf("gsv: decoding object: %w", err)
			}
			if o.OID == "" {
				return nil, fmt.Errorf("gsv: snapshot object without OID")
			}
			if err := db.Store.Put(&o); err != nil {
				return nil, err
			}
			continue
		}
		var vd viewDef
		if err := json.Unmarshal([]byte(line), &vd); err != nil {
			return nil, fmt.Errorf("gsv: decoding view definition: %w", err)
		}
		if err := db.redefine(vd); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	db.Sync()
	return db, nil
}

// redefine re-registers one view from its serialized definition.
func (db *DB) redefine(vd viewDef) error {
	stmt, strategy := vd.statement()
	vs, err := parseViewStmt(stmt)
	if err != nil {
		return err
	}
	_, err = db.Views.DefineParsed(vs, strategy)
	db.Sync()
	return err
}

// SaveDBFile and LoadDBFile are file-path conveniences over SaveDB/LoadDB.
func (db *DB) SaveDBFile(path string) error {
	f, err := createFile(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := db.SaveDB(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadDBFile opens a SaveDB snapshot from a file.
func LoadDBFile(path string) (*DB, error) {
	f, err := openFile(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDB(f)
}

func parseViewStmt(stmt string) (*query.ViewStmt, error) { return query.ParseView(stmt) }

func createFile(path string) (*os.File, error) { return os.Create(path) }
func openFile(path string) (*os.File, error)   { return os.Open(path) }
