package gsv_test

// Allocation profile of the MVCC hot paths (PR 9; docs/MVCC.md records a
// run). `make bench` reports allocs/op for every benchmark here:
//
//   - pinning a snapshot must be allocation-trivial (a handle, not a
//     copy — the whole point of the persistent maps),
//   - the point-read mix against a snapshot must allocate no more than
//     the same reads against the live store,
//   - copy-on-write mutation and the screened ApplyBatch maintain path
//     bound the per-update path-copying overhead the version ring costs.

import (
	"fmt"
	"testing"

	"gsv/internal/core"
	"gsv/internal/oem"
	"gsv/internal/store"
	"gsv/internal/workload"
)

// BenchmarkSnapshotPin measures the cost of taking and releasing a pin.
func BenchmarkSnapshotPin(b *testing.B) {
	s, _, _ := benchFixture(b, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Snapshot().Close()
	}
}

// BenchmarkSnapshotReadMix measures the warehouse-style point-read mix —
// a tuple and its field values — against a per-read pin versus the live
// store, the two sides of experiment E16 without the maintenance churn.
func BenchmarkSnapshotReadMix(b *testing.B) {
	s, sets, _ := benchFixture(b, 500)
	var tuples []oem.OID
	for _, oid := range sets {
		if o, err := s.Get(oid); err == nil && o.Label == "tuple" {
			tuples = append(tuples, oid)
		}
	}
	readMix := func(rd store.Reader, tuple oem.OID) {
		o, err := rd.Get(tuple)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range o.Set {
			if _, err := rd.Get(c); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("live", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			readMix(s, tuples[i%len(tuples)])
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap := s.Snapshot()
			readMix(snap, tuples[i%len(tuples)])
			snap.Close()
		}
	})
}

// BenchmarkCOWModify measures the copy-on-write Modify path — the
// path-copying allocations each committed version costs — with a pin
// held so no version can be collapsed away.
func BenchmarkCOWModify(b *testing.B) {
	s, _, atoms := benchFixture(b, 500)
	pin := s.Snapshot()
	defer pin.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Modify(atoms[i%len(atoms)], oem.Int(int64(i%100))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaintainScreened profiles the screened ApplyBatch maintain
// path under MVCC: four overlapping views over the benchFixture
// relations, updates group-committed in chunks of 32 — the writer side
// of E16. allocs/op is per batch.
func BenchmarkMaintainScreened(b *testing.B) {
	s, sets, atoms := benchFixture(b, 200)
	reg := core.NewRegistry(s)
	for i, qs := range []string{
		"SELECT REL.r0.tuple X WHERE X.age >= 0",
		"SELECT REL.r0.tuple X WHERE X.age >= 30",
		"SELECT REL.r0.tuple X WHERE X.age >= 60",
		"SELECT REL.r0.tuple X WHERE X.age >= 90",
	} {
		if _, err := reg.Define(fmt.Sprintf("define mview MV%d as: %s", i, qs)); err != nil {
			b.Fatal(err)
		}
	}
	reg.SetScreening(true)
	stream := workload.NewStream(s, workload.StreamConfig{Seed: 9, ValueRange: 100}, sets, atoms)
	const chunk = 32
	var batches [][]store.Update
	for len(batches) < 64 {
		var batch []store.Update
		for len(batch) < chunk {
			us, ok := stream.Next()
			if !ok {
				b.Fatal("stream exhausted")
			}
			batch = append(batch, us...)
		}
		batches = append(batches, batch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.ApplyBatch(batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
	}
}
