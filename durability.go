package gsv

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"gsv/internal/core"
	"gsv/internal/store"
	"gsv/internal/wal"
)

// This file wires the internal/wal durability layer into the facade.
// With WithDurability, every synced base update is appended to a
// checksummed write-ahead log before maintenance runs, and checkpoints
// periodically snapshot the whole store (base objects, view objects and
// delegates, counters) plus the view definitions. Reopening the same
// directory recovers: newest valid checkpoint, adopt the views over the
// restored delegates (no re-materialization), then replay the WAL tail
// through the registry's batch path so Algorithm 1 re-derives exactly
// the maintenance the crash interrupted — O(tail), not O(database).
//
// Aggregates and partial views (extensions.go) live in side stores and
// are not durable; re-register them after opening, as with LoadDB.

// SyncPolicy re-exports the WAL fsync policies for WithDurability.
type SyncPolicy = wal.SyncPolicy

// Fsync policies: SyncAlways never loses an acknowledged update,
// SyncInterval bounds loss to the flush interval, SyncNever leaves
// flushing to the OS (benchmarks and tests).
const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
	SyncNever    = wal.SyncNever
)

// ParseSyncPolicy maps "always", "interval" or "never" to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// defaultCheckpointEvery is how many durable base updates accumulate
// between automatic checkpoints.
const defaultCheckpointEvery = 4096

// checkpoint section names.
const (
	ckptSectionStore = "store"
	ckptSectionViews = "views"
)

// durability is the per-DB durability state.
type durability struct {
	mgr       *wal.Manager
	buf       *store.Buffer // base updates observed since the last flush
	every     int           // checkpoint after this many appended records
	sinceCkpt int
}

// openDurable builds a DB over the durability directory in c: recovery
// if the directory has state, a fresh durable database otherwise.
func openDurable(c *openConfig, db *DB) (*DB, error) {
	metrics := c.durMetrics
	if metrics == nil {
		metrics = wal.NewMetrics()
	}
	start := time.Now()
	mgr, err := wal.Open(c.durDir, wal.Options{
		Policy:       c.durPolicy,
		Interval:     c.durInterval,
		SegmentBytes: c.durSegmentBytes,
		Crash:        c.durCrash,
		Metrics:      metrics,
	})
	if err != nil {
		return nil, err
	}
	ckpt, err := mgr.LatestCheckpoint()
	if err != nil {
		mgr.Close()
		return nil, err
	}
	var replayFrom uint64
	if ckpt != nil {
		if db.Store.Len() != 0 {
			mgr.Close()
			return nil, fmt.Errorf("gsv: durability dir %s has a checkpoint but the store is not empty", c.durDir)
		}
		if err := db.Store.Load(bytes.NewReader(ckpt.Section(ckptSectionStore))); err != nil {
			mgr.Close()
			return nil, fmt.Errorf("gsv: restoring checkpoint: %w", err)
		}
		if err := db.adoptViews(ckpt.Section(ckptSectionViews)); err != nil {
			mgr.Close()
			return nil, err
		}
		replayFrom = ckpt.Seq
	} else if mgr.Log().LastSeq() > 0 && db.Store.Len() != 0 {
		mgr.Close()
		return nil, fmt.Errorf("gsv: durability dir %s has WAL records but no checkpoint and the store is not empty", c.durDir)
	}
	// Discard the Create updates the snapshot load just buffered: they
	// are already reflected in the restored state, not new base work.
	db.Views.SkipThrough(db.Store.Seq())
	db.extraSeq = db.Store.Seq()

	// Replay the tail. Each record is re-applied through the store (so
	// it is re-logged on the recovered timeline) and drained immediately,
	// reproducing the per-mutation commit points of the live facade —
	// within each drain, maintenance still fans out across views on the
	// registry's batch path.
	replayed := 0
	if err := mgr.Log().Replay(replayFrom, func(u store.Update) error {
		if err := db.Store.ApplyUpdate(u); err != nil {
			return fmt.Errorf("gsv: replaying %s: %w", u, err)
		}
		db.Views.Drain()
		replayed++
		return nil
	}); err != nil {
		mgr.Close()
		return nil, err
	}
	// Maintenance errors during replay mean a view diverged mid-crash in
	// a way incremental replay could not reconcile; rebuild those views
	// from the recovered base instead of failing startup.
	if errs := db.Sync(); len(errs) > 0 {
		if err := db.recomputeAll(); err != nil {
			mgr.Close()
			return nil, fmt.Errorf("gsv: recovery recompute: %w", err)
		}
	}
	db.Store.AdvanceSeq(mgr.Log().LastSeq())

	d := &durability{mgr: mgr, every: c.ckptEvery}
	if d.every <= 0 {
		d.every = defaultCheckpointEvery
	}
	db.dur = d
	// Credit the replayed tail toward the checkpoint cadence instead of
	// checkpointing inside Open: replay is deterministic from the
	// checkpoint, so a crash loop repeats the same (bounded) tail, and
	// deferring the collapse keeps recovery O(checkpoint + tail) with no
	// full-store write on the restart path. The first Sync past the
	// threshold folds the tail into a fresh checkpoint.
	d.sinceCkpt = replayed
	d.buf = store.NewBuffer()
	db.Store.Subscribe(d.buf.Observe)
	metrics.Recoveries.Inc()
	metrics.RecoverySeconds.ObserveSince(start)
	return db, nil
}

// adoptViews re-registers checkpointed view definitions over their
// restored objects. A definition whose view object did not survive (a
// torn checkpoint edge) falls back to a fresh materialization — the
// centralized analogue of quarantining a view instead of failing startup.
func (db *DB) adoptViews(section []byte) error {
	sc := json.NewDecoder(bytes.NewReader(section))
	for {
		var vd viewDef
		if err := sc.Decode(&vd); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("gsv: decoding checkpointed view definition: %w", err)
		}
		stmt, strategy := vd.statement()
		vs, err := parseViewStmt(stmt)
		if err != nil {
			return fmt.Errorf("gsv: checkpointed view %s: %w", vd.Name, err)
		}
		v, err := db.Views.AdoptParsed(vs, strategy)
		if err != nil {
			// No adoptable state: re-materialize from the restored base.
			v, err = db.Views.DefineParsed(vs, strategy)
			if err != nil {
				return fmt.Errorf("gsv: restoring view %s: %w", vd.Name, err)
			}
		}
		if v.Materialized != nil {
			v.Materialized.Swizzled = vd.Swizzled
		}
	}
}

// recomputeAll rebuilds every materialized view from the current base.
func (db *DB) recomputeAll() error {
	for _, name := range db.Views.Names() {
		v, _ := db.Views.Get(name)
		if v.Materialized != nil {
			if err := v.Materialized.Recompute(); err != nil {
				return err
			}
		}
	}
	db.Sync()
	return nil
}

// flush appends the base updates observed since the last flush to the
// WAL. View-machinery updates (delegate writes, view-object edits) are
// filtered out: they are re-derived by maintenance during replay, and
// logging them raw would be unsound anyway because delegate removals
// bypass the update log.
func (d *durability) flush(db *DB) error {
	us := d.buf.Take()
	if len(us) == 0 {
		return nil
	}
	base := us[:0]
	for _, u := range us {
		if db.Views.IsViewObject(u.N1) {
			continue
		}
		base = append(base, u)
	}
	if len(base) == 0 {
		return nil
	}
	if err := d.mgr.Log().Append(base...); err != nil {
		return err
	}
	d.sinceCkpt += len(base)
	return nil
}

// checkpoint snapshots the store and view definitions, covering every
// update at or below the store's current sequence number, and prunes the
// WAL behind it.
func (d *durability) checkpoint(db *DB) error {
	var w wal.CheckpointWriter
	w.AddFunc(ckptSectionStore, func(buf *bytes.Buffer) error { return db.Store.Save(buf) })
	w.AddFunc(ckptSectionViews, func(buf *bytes.Buffer) error {
		enc := json.NewEncoder(buf)
		for _, name := range db.Views.Names() {
			v, _ := db.Views.Get(name)
			vd := viewDef{Name: name, Materialized: v.Materialized != nil, Query: v.Query.String()}
			if v.Materialized != nil {
				vd.Strategy = v.Strategy.String()
				vd.Swizzled = v.Materialized.Swizzled
			}
			if err := enc.Encode(vd); err != nil {
				return err
			}
		}
		return nil
	})
	if err := d.mgr.WriteCheckpoint(db.Store.Seq(), &w); err != nil {
		return err
	}
	d.sinceCkpt = 0
	return nil
}

// syncDurability is called from DB.Sync before maintenance drains: the
// WAL append (and, per policy, fsync) makes the batch durable before its
// effects spread, and an automatic checkpoint fires once enough records
// have accumulated since the last one.
func (db *DB) syncDurability() []error {
	d := db.dur
	if d == nil || d.buf == nil {
		return nil
	}
	var errs []error
	if err := d.flush(db); err != nil {
		errs = append(errs, err)
	}
	return errs
}

// maybeCheckpoint runs after maintenance has drained, so the snapshot
// sees a store whose views are consistent with its base.
func (db *DB) maybeCheckpoint() []error {
	d := db.dur
	if d == nil || d.buf == nil || d.sinceCkpt < d.every {
		return nil
	}
	// Pick up machinery updates maintenance just logged, so the WAL's
	// notion of "flushed" stays ahead of the checkpoint.
	if err := d.flush(db); err != nil {
		return []error{err}
	}
	if err := d.checkpoint(db); err != nil {
		return []error{err}
	}
	return nil
}

// Durable reports whether the database was opened with WithDurability.
func (db *DB) Durable() bool { return db.dur != nil }

// Checkpoint forces a checkpoint now: the store, every view's delegates
// and the definitions become the new recovery baseline and the WAL tail
// behind it is pruned. No-op without WithDurability.
func (db *DB) Checkpoint() error {
	if db.dur == nil {
		return nil
	}
	db.Sync()
	if err := db.dur.flush(db); err != nil {
		return err
	}
	return db.dur.checkpoint(db)
}

// Close makes all acknowledged work durable and releases the WAL. A
// closed durable DB must not be mutated further. Without WithDurability,
// Close is a no-op.
func (db *DB) Close() error {
	if db.dur == nil {
		return nil
	}
	err := db.Checkpoint()
	if cerr := db.dur.mgr.Close(); err == nil {
		err = cerr
	}
	return err
}

// strategyFromString maps a serialized strategy name back to a Strategy;
// unknown names resolve to StrategyAuto.
func strategyFromString(s string) Strategy {
	switch s {
	case "simple":
		return core.StrategySimple
	case "general":
		return core.StrategyGeneral
	case "dag":
		return core.StrategyDag
	case "recompute":
		return core.StrategyRecompute
	default:
		return core.StrategyAuto
	}
}
